//! **uindex-oodb** — a complete reproduction of *"A Uniform Indexing Scheme
//! for Object-Oriented Databases"* (Ehud Gudes, ICDE 1996 / Information
//! Systems 22(4), 1997) as a Rust workspace.
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`pagestore`] — paged storage with per-query page-read accounting;
//! * [`btree`] — the variable-length, front-compressed B+-tree;
//! * [`schema`] — OODB schemas and the class-code encoding (the paper's
//!   `COD` relation), including schema evolution and REF-cycle breaking;
//! * [`objstore`] — objects, OIDs, typed values with order-preserving
//!   encodings;
//! * [`uindex`] — the U-index itself: class-hierarchy, path, combined and
//!   multi-path indexes in one B-tree, with forward-scan and the parallel
//!   retrieval algorithm, and the [`uindex::Database`] facade that keeps
//!   indexes consistent under updates;
//! * [`baselines`] — CH-tree, H-tree, CG-tree, nested/path index and NIX;
//! * [`workload`] — the paper's two experimental workloads.
//!
//! Start with [`uindex::Database`]:
//!
//! ```
//! use uindex_oodb::schema::{Schema, AttrType};
//! use uindex_oodb::objstore::Value;
//! use uindex_oodb::uindex::{Database, IndexSpec, Query, ValuePred};
//!
//! let mut s = Schema::new();
//! let employee = s.add_class("Employee").unwrap();
//! s.add_attr(employee, "Age", AttrType::Int).unwrap();
//! let company = s.add_class("Company").unwrap();
//! s.add_attr(company, "President", AttrType::Ref(employee)).unwrap();
//!
//! let mut db = Database::in_memory(s).unwrap();
//! let idx = db
//!     .define_index(IndexSpec::path("ages", company, &["President"], "Age"))
//!     .unwrap();
//! let e = db.create_object(employee).unwrap();
//! db.set_attr(e, "Age", Value::Int(50)).unwrap();
//! let c = db.create_object(company).unwrap();
//! db.set_attr(c, "President", Value::Ref(e)).unwrap();
//!
//! let hits = db
//!     .query(&Query::on(idx).value(ValuePred::eq(Value::Int(50))))
//!     .unwrap();
//! assert_eq!(hits.len(), 1);
//! ```

pub use baselines;
pub use btree;
pub use objstore;
pub use pagestore;
pub use schema;
pub use uindex;
pub use workload;
