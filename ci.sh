#!/usr/bin/env bash
# Full local CI gate: formatting, lints (deny warnings), and every test in
# the workspace. The build is fully offline (see README "Troubleshooting
# offline builds"); --offline makes that explicit.
set -euo pipefail
cd "$(dirname "$0")"

# The concurrency tests exercise real thread interleavings; an inherited
# RUST_TEST_THREADS=1 must not serialize them.
unset RUST_TEST_THREADS

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test (root package, tier-1)"
cargo test -q --offline

echo "== cargo test (workspace)"
cargo test -q --workspace --offline

echo "== cargo bench --no-run (benches compile)"
cargo bench --no-run --offline --workspace

echo "== scanperf --smoke (scan-path invariants on a small database)"
cargo run -q --release --offline -p bench --bin scanperf -- --smoke

echo "== telemetry JSON round-trip (export -> vendored parser -> verify)"
cargo test -q --offline -p telemetry json_round_trip

echo "== explain smoke (CLI EXPLAIN ANALYZE end to end)"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
cat > "$tmpdir/smoke.uschema" <<'EOF'
class Employee { Age: int }
class Company { Name: str, President: ref Employee }
class Vehicle { Color: str, MadeBy: ref Company }
class Automobile < Vehicle {}
index color = hierarchy Vehicle Color
EOF
cat > "$tmpdir/smoke.udata" <<'EOF'
e1 = Employee Age=50
c1 = Company Name='Fiat' President=@e1
v1 = Vehicle Color='Red' MadeBy=@c1
v2 = Automobile Color='Red' MadeBy=@c1
v3 = Automobile Color='Blue' MadeBy=@c1
EOF
cargo run -q --release --offline -p uindex-cli -- \
  new "$tmpdir/db" "$tmpdir/smoke.uschema" "$tmpdir/smoke.udata"
explain_json=$(cargo run -q --release --offline -p uindex-cli -- \
  explain "$tmpdir/db" "explain analyze color: Color = 'Red'" --json)
echo "$explain_json" | grep -q '"plan"' || { echo "explain smoke: no plan in JSON"; exit 1; }
echo "$explain_json" | grep -q '"trace"' || { echo "explain smoke: no trace in JSON"; exit 1; }
echo "$explain_json" | grep -q '"index": "color"' || { echo "explain smoke: empty plan"; exit 1; }
explain_text=$(cargo run -q --release --offline -p uindex-cli -- \
  explain "$tmpdir/db" "color: Color = 'Red'")
echo "$explain_text" | grep -q '^Execution' || { echo "explain smoke: no Execution section"; exit 1; }

echo "== corruption sweep (checksums, scrub, quarantine, salvage)"
cargo test -q --offline -p uindex --test corruption_sweep

echo "== concurrency torture smoke (4 scanners racing 1 mutator, both tiers)"
timeout 300 cargo test -q --offline -p uindex --test concurrent_torture

echo "== scanperf --smoke --threads (parallel executor, per-query hits identical)"
cargo run -q --release --offline -p bench --bin scanperf -- --smoke --threads

echo "== integrity check smoke (CLI check/repair on the smoke db)"
check_out=$(cargo run -q --release --offline -p uindex-cli -- check "$tmpdir/db")
echo "$check_out" | grep -q 'status:  clean' || { echo "check smoke: db not clean"; exit 1; }
repair_out=$(cargo run -q --release --offline -p uindex-cli -- repair "$tmpdir/db")
echo "$repair_out" | grep -q 'rebuilt index' || { echo "repair smoke: no rebuild"; exit 1; }
cargo run -q --release --offline -p uindex-cli -- check "$tmpdir/db" > /dev/null \
  || { echo "repair smoke: post-repair check failed"; exit 1; }

echo "== disk tier smoke (create --disk, SIGKILL a writer mid-commit, reopen, check)"
cargo run -q --release --offline -p uindex-cli -- \
  new "$tmpdir/diskdb" "$tmpdir/smoke.uschema" "$tmpdir/smoke.udata" --disk
cargo run -q --release --offline -p uindex-cli -- check "$tmpdir/diskdb" > /dev/null \
  || { echo "disk smoke: fresh db not clean"; exit 1; }
# Run the binary directly (not via cargo) so the SIGKILL hits the writer
# itself; kill it as soon as commits are flowing, i.e. mid-commit-stream.
churn_bin=target/release/uindex-cli
"$churn_bin" churn "$tmpdir/diskdb" Vehicle Color 100000 > "$tmpdir/churn.log" 2>&1 &
churn_pid=$!
for _ in $(seq 1 200); do
  grep -q "commit 5" "$tmpdir/churn.log" 2>/dev/null && break
  sleep 0.05
done
kill -9 "$churn_pid" 2>/dev/null || true
wait "$churn_pid" 2>/dev/null || true
check_out=$(cargo run -q --release --offline -p uindex-cli -- check "$tmpdir/diskdb")
echo "$check_out" | grep -q 'status:  clean' \
  || { echo "disk smoke: post-SIGKILL check failed"; exit 1; }

echo "== scanperf --smoke --disk (mem vs file tier, identical query streams)"
cargo run -q --release --offline -p bench --bin scanperf -- --smoke --disk

echo "== serve smoke (wire protocol server + oracle-checked load generator)"
cargo run -q --release --offline -p bench --bin loadgen -- --save-db "$tmpdir/servedb" --smoke
serve_bin=target/release/uindex-cli
"$serve_bin" serve "$tmpdir/servedb" --port 0 --shutdown-file "$tmpdir/serve.stop" \
  > "$tmpdir/serve.log" 2> "$tmpdir/serve.err" &
serve_pid=$!
for _ in $(seq 1 100); do
  grep -q "listening on " "$tmpdir/serve.log" 2>/dev/null && break
  sleep 0.1
done
serve_addr=$(sed -n 's/^listening on //p' "$tmpdir/serve.log")
[ -n "$serve_addr" ] || { echo "serve smoke: server did not start"; kill "$serve_pid" 2>/dev/null; exit 1; }
# Drive the load in the background and introspect the live server while
# it runs: `top --once --json` must answer with a parseable stats doc
# showing real traffic (windowed qps > 0). The 60 s window keeps recent
# queries visible even if the smoke-sized run quiesces between polls.
cargo run -q --release --offline -p bench --bin loadgen -- \
  --smoke --addr "$serve_addr" --db "$tmpdir/servedb" > "$tmpdir/loadgen.log" 2>&1 &
loadgen_pid=$!
top_ok=""
for _ in $(seq 1 100); do
  top_json=$("$serve_bin" top "$serve_addr" --window 60 --once --json 2>/dev/null) || { sleep 0.1; continue; }
  qps=$(echo "$top_json" | sed -n 's/.*"qps": \([0-9.][0-9.]*\).*/\1/p' | head -n 1)
  if [ -n "$qps" ] && awk "BEGIN{exit !($qps > 0)}"; then top_ok=1; break; fi
  sleep 0.1
done
[ -n "$top_ok" ] || { echo "serve smoke: top never saw qps > 0"; kill "$serve_pid" "$loadgen_pid" 2>/dev/null; exit 1; }
wait "$loadgen_pid" \
  || { echo "serve smoke: loadgen failed"; cat "$tmpdir/loadgen.log"; kill "$serve_pid" 2>/dev/null; exit 1; }
# The slow-query log (threshold 0 by default: every query competes) must
# have entries, and each dump line must come with its full Trace.
slow_out=$("$serve_bin" slow "$serve_addr")
echo "$slow_out" | grep -q "slow-query log: [1-9]" \
  || { echo "serve smoke: slow-query log empty"; kill "$serve_pid" 2>/dev/null; exit 1; }
echo "$slow_out" | grep -q '"scan_stats"' \
  || { echo "serve smoke: slow dump has no trace"; kill "$serve_pid" 2>/dev/null; exit 1; }
touch "$tmpdir/serve.stop"
wait "$serve_pid" || { echo "serve smoke: server exited non-zero"; exit 1; }
grep -q "^served " "$tmpdir/serve.log" || { echo "serve smoke: no shutdown summary"; exit 1; }

echo "== chaos smoke (fault proxy + storage faults, oracle-checked, both tiers)"
chaos_out=$(timeout 300 cargo run -q --release --offline -p bench --bin loadgen -- --chaos --smoke)
echo "$chaos_out" | grep -q ", 0 mismatches" \
  || { echo "chaos smoke: no oracle verdict"; echo "$chaos_out"; exit 1; }
echo "$chaos_out" | grep -q "degraded-ok" \
  || { echo "chaos smoke: no degraded-path answers"; echo "$chaos_out"; exit 1; }

echo "== SIGTERM drain smoke (signal -> drain -> shutdown summary)"
"$serve_bin" serve "$tmpdir/servedb" --port 0 \
  > "$tmpdir/drain.log" 2> "$tmpdir/drain.err" &
drain_pid=$!
for _ in $(seq 1 100); do
  grep -q "listening on " "$tmpdir/drain.log" 2>/dev/null && break
  sleep 0.1
done
kill -TERM "$drain_pid"
wait "$drain_pid" || { echo "drain smoke: server exited non-zero"; cat "$tmpdir/drain.err"; exit 1; }
grep -q "signal received; draining" "$tmpdir/drain.err" \
  || { echo "drain smoke: no drain log line"; cat "$tmpdir/drain.err"; exit 1; }
grep -q "^served " "$tmpdir/drain.log" \
  || { echo "drain smoke: no shutdown summary"; cat "$tmpdir/drain.log"; exit 1; }

echo "== chaos drill (SIGKILL a real serve process mid-load, restart, repoint)"
drill_out=$(timeout 300 cargo run -q --release --offline -p bench --bin loadgen -- \
  --chaos-drill --cli-bin "$serve_bin")
echo "$drill_out" | grep -q "after restart" \
  || { echo "chaos drill: no restart ledger"; echo "$drill_out"; exit 1; }

echo "== serve protocol battery (malformed sweep + admission + torture)"
timeout 300 cargo test -q --offline -p serve

echo "CI green."
