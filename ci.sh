#!/usr/bin/env bash
# Full local CI gate: formatting, lints (deny warnings), and every test in
# the workspace. The build is fully offline (see README "Troubleshooting
# offline builds"); --offline makes that explicit.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test (root package, tier-1)"
cargo test -q --offline

echo "== cargo test (workspace)"
cargo test -q --workspace --offline

echo "== cargo bench --no-run (benches compile)"
cargo bench --no-run --offline --workspace

echo "== scanperf --smoke (scan-path invariants on a small database)"
cargo run -q --release --offline -p bench --bin scanperf -- --smoke

echo "CI green."
