//! Schema evolution (paper §4.3, Figure 4): adding classes after the
//! encoding exists, without renaming anything — plus REF-cycle breaking.
//!
//! Run with `cargo run --example schema_evolution`.

use std::collections::HashSet;

use uindex_oodb::objstore::Value;
use uindex_oodb::schema::{cycles, AttrType, Encoding, Schema};
use uindex_oodb::uindex::{ClassSel, Database, IndexSpec, Query, ValuePred};

fn main() {
    let mut s = Schema::new();
    let company = s.add_class("Company").unwrap();
    let vehicle = s.add_class("Vehicle").unwrap();
    s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
    s.add_attr(vehicle, "MadeBy", AttrType::Ref(company))
        .unwrap();
    let auto = s.add_subclass("Automobile", vehicle).unwrap();
    let truck = s.add_subclass("Truck", vehicle).unwrap();

    let mut db = Database::in_memory(s).unwrap();
    let idx = db
        .define_index(IndexSpec::class_hierarchy("color", vehicle, "Color"))
        .unwrap();

    let mk = |db: &mut Database, class, color: &str| {
        let v = db.create_object(class).unwrap();
        db.set_attr(v, "Color", Value::Str(color.into())).unwrap();
        v
    };
    mk(&mut db, auto, "Red");
    mk(&mut db, truck, "Red");

    let show = |db: &Database, name: &str, id| {
        println!(
            "  {:<12} -> {}",
            name,
            db.index().encoding().code(id).unwrap()
        );
    };
    println!("codes before evolution:");
    show(&db, "Vehicle", vehicle);
    show(&db, "Automobile", auto);
    show(&db, "Truck", truck);

    // Fig 4a: a new class inside an existing hierarchy. Existing codes are
    // untouched; the new component slots in after its siblings.
    let bus = db.add_subclass("Bus", vehicle).unwrap();
    db.encode_class(bus).unwrap();
    println!("\nafter adding Bus (Fig. 4a):");
    show(&db, "Vehicle", vehicle);
    show(&db, "Automobile", auto);
    show(&db, "Truck", truck);
    show(&db, "Bus", bus);

    // Objects of the new class are indexed like any other, and sub-tree
    // queries over Vehicle now include them.
    mk(&mut db, bus, "Red");
    let q = Query::on(idx)
        .value(ValuePred::eq(Value::Str("Red".into())))
        .class_at(0, ClassSel::SubTree(vehicle));
    println!(
        "\nred vehicles after adding a Bus instance: {}",
        db.query(&q).unwrap().len()
    );

    // Fig 4b: a new hierarchy *between* existing ones. Dealer references
    // Company and is referenced by Vehicle, so its root code must fall
    // between theirs — fractional indexing finds the slot.
    let dealer = db.add_class("Dealer").unwrap();
    db.add_attr(dealer, "Franchise", AttrType::Ref(company))
        .unwrap();
    db.add_attr(vehicle, "SoldBy", AttrType::Ref(dealer))
        .unwrap();
    // Codes are assigned lazily, so the REF attributes above constrain
    // Dealer's position: its code must land between Company and Vehicle.
    db.encode_class(dealer).unwrap();
    println!("\nafter adding the Dealer hierarchy (Fig. 4b):");
    show(&db, "Company", company);
    show(&db, "Dealer", dealer);
    show(&db, "Vehicle", vehicle);

    // §4.3: REF cycles. An OWN/USE pair cannot be encoded at once; the
    // edges are partitioned into acyclic groups, each encodable separately.
    let mut s2 = Schema::new();
    let emp = s2.add_class("Employee").unwrap();
    let veh = s2.add_class("Vehicle").unwrap();
    s2.add_attr(emp, "Own", AttrType::RefSet(veh)).unwrap();
    s2.add_attr(veh, "UsedBy", AttrType::RefSet(emp)).unwrap();
    assert!(cycles::has_ref_cycle(&s2));
    let groups = cycles::partition_acyclic(&s2);
    println!(
        "\nOWN/USE cycle detected; {} acyclic encodings needed:",
        groups.len()
    );
    for (ig, enc_edges) in groups.iter().enumerate() {
        let ignore: HashSet<_> = cycles::ignore_sets(&s2, &groups)[ig].clone();
        let enc = Encoding::generate_ignoring(&s2, &ignore).unwrap();
        println!(
            "  encoding {}: covers {} REF edge(s); Employee={}, Vehicle={}",
            ig + 1,
            enc_edges.len(),
            enc.code(emp).unwrap(),
            enc.code(veh).unwrap()
        );
    }
}
