//! An interactive UQL shell over the paper's example database.
//!
//! Run with `cargo run --example repl`, then try:
//!
//! ```text
//! color: Color = 'Red'
//! color: Color = 'White' and Vehicle in [Automobile*]
//! age: Age >= 46 and Company in [AutoCompany*] distinct Company
//! .schema      .indexes      .codes      .stats      .quit
//! ```
//!
//! Every answer reports the distinct pages the query read, so the effect of
//! class clustering and the parallel algorithm is visible interactively
//! (append `forward` to any query to compare).

use std::io::{BufRead, Write};

use uindex_oodb::objstore::Value;
use uindex_oodb::schema::{AttrType, Schema};
use uindex_oodb::uindex::{Database, IndexSpec};

fn build_demo_db() -> Database {
    let mut s = Schema::new();
    let employee = s.add_class("Employee").unwrap();
    s.add_attr(employee, "Age", AttrType::Int).unwrap();
    let company = s.add_class("Company").unwrap();
    s.add_attr(company, "Name", AttrType::Str).unwrap();
    s.add_attr(company, "President", AttrType::Ref(employee))
        .unwrap();
    let auto_co = s.add_subclass("AutoCompany", company).unwrap();
    let jap_co = s.add_subclass("JapaneseAutoCompany", auto_co).unwrap();
    let vehicle = s.add_class("Vehicle").unwrap();
    s.add_attr(vehicle, "Name", AttrType::Str).unwrap();
    s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
    s.add_attr(vehicle, "ManufacturedBy", AttrType::Ref(company))
        .unwrap();
    let automobile = s.add_subclass("Automobile", vehicle).unwrap();
    let compact = s.add_subclass("CompactAutomobile", automobile).unwrap();

    let mut db = Database::in_memory(s).unwrap();
    db.define_index(IndexSpec::class_hierarchy("color", vehicle, "Color"))
        .unwrap();
    db.define_index(IndexSpec::path(
        "age",
        vehicle,
        &["ManufacturedBy", "President"],
        "Age",
    ))
    .unwrap();

    // The paper's Example 1 instances.
    let mut e = Vec::new();
    for age in [50i64, 60, 45] {
        let o = db.create_object(employee).unwrap();
        db.set_attr(o, "Age", Value::Int(age)).unwrap();
        e.push(o);
    }
    let mut c = Vec::new();
    for (class, name, pres) in [
        (jap_co, "Subaru", 2usize),
        (auto_co, "Fiat", 0),
        (auto_co, "Renault", 1),
    ] {
        let o = db.create_object(class).unwrap();
        db.set_attr(o, "Name", Value::Str(name.into())).unwrap();
        db.set_attr(o, "President", Value::Ref(e[pres])).unwrap();
        c.push(o);
    }
    for (class, name, color, made_by) in [
        (vehicle, "Legacy", "White", 0usize),
        (automobile, "Tipo", "White", 1),
        (automobile, "Panda", "Red", 1),
        (compact, "R5", "Red", 2),
        (compact, "Justy", "Blue", 0),
        (compact, "Uno", "White", 1),
    ] {
        let v = db.create_object(class).unwrap();
        db.set_attr(v, "Name", Value::Str(name.into())).unwrap();
        db.set_attr(v, "Color", Value::Str(color.into())).unwrap();
        db.set_attr(v, "ManufacturedBy", Value::Ref(c[made_by]))
            .unwrap();
    }
    db
}

fn main() {
    let mut db = build_demo_db();
    println!("U-index UQL shell over the paper's Example 1 database.");
    println!("Queries: '<index>: <conditions>'. Commands: .schema .indexes .codes .stats .quit");
    let stdin = std::io::stdin();
    loop {
        print!("uql> ");
        std::io::stdout().flush().unwrap();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        match line {
            "" => continue,
            ".quit" | ".exit" => break,
            ".schema" => {
                for class in db.schema().class_ids() {
                    let parents: Vec<&str> = db
                        .schema()
                        .parents(class)
                        .iter()
                        .map(|&p| db.schema().class_name(p))
                        .collect();
                    let attrs: Vec<String> = db
                        .schema()
                        .own_attrs(class)
                        .map(|(_, n, t)| format!("{n}: {t:?}"))
                        .collect();
                    println!(
                        "  {} {} [{}]",
                        db.schema().class_name(class),
                        if parents.is_empty() {
                            String::new()
                        } else {
                            format!("< {}", parents.join(", "))
                        },
                        attrs.join(", ")
                    );
                }
            }
            ".indexes" => {
                for (i, spec) in db.index().specs().iter().enumerate() {
                    let path: Vec<&str> = spec
                        .positions
                        .iter()
                        .map(|p| db.schema().class_name(p.class))
                        .collect();
                    println!(
                        "  [{i}] {} on {}.{} over path {}",
                        spec.name,
                        db.schema().class_name(spec.attr.0),
                        db.schema().attr_name(spec.attr.0, spec.attr.1),
                        path.join("/")
                    );
                }
            }
            ".codes" => {
                for class in db.schema().class_ids() {
                    if let Some(code) = db.index().encoding().code(class) {
                        println!("  {:<22} {}", db.schema().class_name(class), code);
                    }
                }
            }
            ".stats" => match db.index_mut().verify() {
                Ok(s) => println!(
                    "  {} entries, {} nodes ({} leaves), height {}",
                    s.entries,
                    s.total_nodes(),
                    s.leaf_nodes,
                    s.height
                ),
                Err(e) => println!("  verify failed: {e}"),
            },
            query => match db.query_uql(query) {
                Ok((hits, stats)) => {
                    for h in &hits {
                        let objs: Vec<String> = h
                            .key
                            .path
                            .iter()
                            .map(|e| {
                                let class = db
                                    .index()
                                    .encoding()
                                    .class_by_code(&e.code)
                                    .map(|c| db.schema().class_name(c).to_string())
                                    .unwrap_or_else(|| "?".into());
                                format!("{}={}", class, e.oid)
                            })
                            .collect();
                        println!("  {:?}  {}", h.key.value, objs.join("  "));
                    }
                    println!(
                        "  -- {} hits, {} pages read, {} entries examined, {} seeks",
                        hits.len(),
                        stats.pages_read,
                        stats.entries_examined,
                        stats.seeks
                    );
                }
                Err(e) => println!("  error: {e}"),
            },
        }
    }
}
