//! Compare the U-index against every baseline structure on one workload:
//! page reads for exact-match and range queries, and total storage.
//!
//! Run with `cargo run --release --example index_comparison`.

use uindex_oodb::baselines::{
    CgConfig, CgTree, ChTree, HTree, NestedIndex, Nix, PathIndex, SetId, SetIndex,
};
use uindex_oodb::objstore::Oid;
use uindex_oodb::workload::uniform::{
    generate_postings, key_bytes, KeyCount, UIndexSet, UniformConfig,
};

fn main() {
    let cfg = UniformConfig {
        num_objects: 20_000,
        num_sets: 8,
        keys: KeyCount::Distinct(500),
        seed: 7,
    };
    let postings = generate_postings(&cfg);
    println!(
        "workload: {} postings, {} sets, {} distinct keys\n",
        postings.len(),
        cfg.num_sets,
        500
    );

    let uindex = UIndexSet::build(cfg.num_sets, &postings).unwrap();
    let ch = ChTree::build(1024, 1 << 16, &mut postings.clone()).unwrap();
    let h = HTree::build(1024, 1 << 16, &mut postings.clone()).unwrap();
    let cg = CgTree::build(CgConfig::default(), &mut postings.clone()).unwrap();
    let mut structures: Vec<Box<dyn SetIndex>> =
        vec![Box::new(uindex), Box::new(ch), Box::new(h), Box::new(cg)];

    println!(
        "{:<10} {:>8} {:>16} {:>16} {:>16}",
        "structure", "pages", "exact(1 set)", "exact(8 sets)", "range1%(2 sets)"
    );
    let all: Vec<SetId> = (0..8).map(SetId).collect();
    let key = key_bytes(250);
    let (rlo, rhi) = (key_bytes(100), key_bytes(105));
    for s in structures.iter_mut() {
        let (_, e1) = s.exact(&key, &[SetId(3)]).unwrap();
        let (_, e8) = s.exact(&key, &all).unwrap();
        let (_, r2) = s.range(&rlo, &rhi, &[SetId(1), SetId(2)]).unwrap();
        println!(
            "{:<10} {:>8} {:>16} {:>16} {:>16}",
            s.name(),
            s.total_pages(),
            e1.pages,
            e8.pages,
            r2.pages
        );
    }

    // The path-shaped baselines on a synthetic Vehicle/Company/Employee
    // path: 2000 vehicles over 100 companies over 20 employees.
    println!("\npath-shaped baselines (2000 vehicles / 100 companies / 20 presidents):");
    let mut nested_postings: Vec<(Vec<u8>, Oid)> = Vec::new();
    let mut path_postings: Vec<(Vec<u8>, Vec<Oid>)> = Vec::new();
    let mut nix = Nix::new(1024, 1 << 14).unwrap();
    for v in 0..2000u32 {
        let company = v % 100;
        let emp = company % 20;
        let age = key_bytes(20 + emp % 50);
        nested_postings.push((age.clone(), Oid(v)));
        path_postings.push((
            age.clone(),
            vec![Oid(v), Oid(10_000 + company), Oid(20_000 + emp)],
        ));
        nix.insert(&age, SetId(0), Oid(20_000 + emp), None).unwrap();
        nix.insert(
            &age,
            SetId(1),
            Oid(10_000 + company),
            Some(Oid(20_000 + emp)),
        )
        .unwrap();
        nix.insert(&age, SetId(2), Oid(v), Some(Oid(10_000 + company)))
            .unwrap();
    }
    let mut nested = NestedIndex::build(1024, &mut nested_postings).unwrap();
    let mut path = PathIndex::build(1024, 3, &mut path_postings).unwrap();
    let probe = key_bytes(25);
    let (n_hits, n_cost) = nested.exact(&probe).unwrap();
    println!(
        "  nested index: {:>5} top-class hits, {:>3} pages, {:>4} pages total",
        n_hits.len(),
        n_cost.pages,
        nested.total_pages()
    );
    let (p_hits, p_cost) = path.exact(&probe).unwrap();
    println!(
        "  path index:   {:>5} instantiations, {:>3} pages, {:>4} pages total",
        p_hits.len(),
        p_cost.pages,
        path.total_pages()
    );
    let (x_hits, x_cost) = nix.exact(&probe, &[SetId(0), SetId(1), SetId(2)]).unwrap();
    println!(
        "  NIX:          {:>5} associations,   {:>3} pages, {:>4} pages total (incl. auxiliary)",
        x_hits.len(),
        x_cost.pages,
        nix.total_pages()
    );
}
