//! Quickstart: build a small OODB, define U-indexes, query, and update.
//!
//! Run with `cargo run --example quickstart`.

use uindex_oodb::objstore::Value;
use uindex_oodb::schema::{AttrType, Schema};
use uindex_oodb::uindex::{distinct_oids_at, ClassSel, Database, IndexSpec, Query, ValuePred};

fn main() {
    // 1. Schema: a class hierarchy (Vehicle > Automobile) and a reference
    //    chain Vehicle -> Company -> Employee.
    let mut s = Schema::new();
    let employee = s.add_class("Employee").unwrap();
    s.add_attr(employee, "Age", AttrType::Int).unwrap();
    let company = s.add_class("Company").unwrap();
    s.add_attr(company, "Name", AttrType::Str).unwrap();
    s.add_attr(company, "President", AttrType::Ref(employee))
        .unwrap();
    let vehicle = s.add_class("Vehicle").unwrap();
    s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
    s.add_attr(vehicle, "MadeBy", AttrType::Ref(company))
        .unwrap();
    let automobile = s.add_subclass("Automobile", vehicle).unwrap();

    let mut db = Database::in_memory(s).unwrap();

    // 2. Two indexes, one shared B-tree: a class-hierarchy index on Color
    //    and a combined path index on the president's age.
    let by_color = db
        .define_index(IndexSpec::class_hierarchy("by-color", vehicle, "Color"))
        .unwrap();
    let by_age = db
        .define_index(IndexSpec::path(
            "by-president-age",
            vehicle,
            &["MadeBy", "President"],
            "Age",
        ))
        .unwrap();

    // 3. Data.
    let pres = db.create_object(employee).unwrap();
    db.set_attr(pres, "Age", Value::Int(52)).unwrap();
    let acme = db.create_object(company).unwrap();
    db.set_attr(acme, "Name", Value::Str("Acme".into()))
        .unwrap();
    db.set_attr(acme, "President", Value::Ref(pres)).unwrap();
    for (class, color) in [(vehicle, "Red"), (automobile, "Red"), (automobile, "Blue")] {
        let v = db.create_object(class).unwrap();
        db.set_attr(v, "Color", Value::Str(color.into())).unwrap();
        db.set_attr(v, "MadeBy", Value::Ref(acme)).unwrap();
    }

    // 4. Class-hierarchy query: red vehicles of any class.
    let q = Query::on(by_color).value(ValuePred::eq(Value::Str("Red".into())));
    let (hits, stats) = db.query_with_stats(&q).unwrap();
    println!(
        "red vehicles (whole hierarchy): {} hits, {} pages read",
        hits.len(),
        stats.pages_read
    );

    // ... restricted to the Automobile sub-tree only.
    let q = q.class_at(0, ClassSel::SubTree(automobile));
    println!(
        "red automobiles only:           {} hits",
        db.query(&q).unwrap().len()
    );

    // 5. Path query: vehicles whose manufacturer's president is over 50.
    let q = Query::on(by_age).value(ValuePred::at_least(Value::Int(51)));
    let hits = db.query(&q).unwrap();
    println!(
        "vehicles with president >50:    {} hits (president oids: {:?})",
        hits.len(),
        distinct_oids_at(&hits, 0)
    );

    // 6. Updates keep every index consistent automatically.
    let young = db.create_object(employee).unwrap();
    db.set_attr(young, "Age", Value::Int(35)).unwrap();
    db.set_attr(acme, "President", Value::Ref(young)).unwrap();
    let hits = db.query(&q).unwrap();
    println!("after the president changed:    {} hits", hits.len());
    assert!(hits.is_empty());
}
