//! The paper's running example, end to end: the Figure-1 schema, the
//! Example-1 instance database, and the §3.3 sample queries on all three
//! index variations (class-hierarchy, path, combined).
//!
//! Run with `cargo run --example vehicle_queries`.

use uindex_oodb::objstore::Value;
use uindex_oodb::schema::{AttrType, Schema};
use uindex_oodb::uindex::{
    distinct_oids_at, ClassSel, Database, IndexSpec, OidSel, Query, ValuePred,
};

fn main() {
    // ---- Figure 1 schema (relevant part) --------------------------------
    let mut s = Schema::new();
    let employee = s.add_class("Employee").unwrap();
    s.add_attr(employee, "Age", AttrType::Int).unwrap();
    let company = s.add_class("Company").unwrap();
    s.add_attr(company, "Name", AttrType::Str).unwrap();
    s.add_attr(company, "President", AttrType::Ref(employee))
        .unwrap();
    let auto_co = s.add_subclass("AutoCompany", company).unwrap();
    let jap_co = s.add_subclass("JapaneseAutoCompany", auto_co).unwrap();
    let vehicle = s.add_class("Vehicle").unwrap();
    s.add_attr(vehicle, "Name", AttrType::Str).unwrap();
    s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
    s.add_attr(vehicle, "ManufacturedBy", AttrType::Ref(company))
        .unwrap();
    let automobile = s.add_subclass("Automobile", vehicle).unwrap();
    let compact = s.add_subclass("CompactAutomobile", automobile).unwrap();

    let mut db = Database::in_memory(s).unwrap();

    // The class-code encoding realizes the paper's COD relation: REF
    // targets sort first (Employee < Company < Vehicle), sub-classes extend
    // their parent's code.
    println!("class codes (the paper's COD relation):");
    for (name, id) in [
        ("Employee", employee),
        ("Company", company),
        ("AutoCompany", auto_co),
        ("JapaneseAutoCompany", jap_co),
        ("Vehicle", vehicle),
        ("Automobile", automobile),
        ("CompactAutomobile", compact),
    ] {
        println!("  {:<22} {}", name, db.index().encoding().code(id).unwrap());
    }

    // ---- indexes ---------------------------------------------------------
    let color_idx = db
        .define_index(IndexSpec::class_hierarchy("color", vehicle, "Color"))
        .unwrap();
    let age_idx = db
        .define_index(IndexSpec::path(
            "president-age",
            vehicle,
            &["ManufacturedBy", "President"],
            "Age",
        ))
        .unwrap();

    // ---- Example 1 instances ----------------------------------------------
    let ages = [50i64, 60, 45];
    let mut e = Vec::new();
    for age in ages {
        let o = db.create_object(employee).unwrap();
        db.set_attr(o, "Age", Value::Int(age)).unwrap();
        e.push(o);
    }
    let companies = [
        (jap_co, "Subaru", 2usize),
        (auto_co, "Fiat", 0),
        (auto_co, "Renault", 1),
    ];
    let mut c = Vec::new();
    for (class, name, pres) in companies {
        let o = db.create_object(class).unwrap();
        db.set_attr(o, "Name", Value::Str(name.into())).unwrap();
        db.set_attr(o, "President", Value::Ref(e[pres])).unwrap();
        c.push(o);
    }
    let vehicles = [
        (vehicle, "Legacy", "White", 0usize),
        (automobile, "Tipo", "White", 1),
        (automobile, "Panda", "Red", 1),
        (compact, "R5", "Red", 2),
        (compact, "Justy", "Blue", 0),
        (compact, "Uno", "White", 1),
    ];
    for (class, name, color, made_by) in vehicles {
        let v = db.create_object(class).unwrap();
        db.set_attr(v, "Name", Value::Str(name.into())).unwrap();
        db.set_attr(v, "Color", Value::Str(color.into())).unwrap();
        db.set_attr(v, "ManufacturedBy", Value::Ref(c[made_by]))
            .unwrap();
    }

    let red = || ValuePred::eq(Value::Str("Red".into()));

    // ---- §3.3 class-hierarchy queries -------------------------------------
    println!("\nclass-hierarchy index queries:");
    let q1 = Query::on(color_idx).value(red());
    println!(
        "  1) all vehicles with red color:          {}",
        db.query(&q1).unwrap().len()
    );
    let q2 = q1.clone().class_at(0, ClassSel::SubTree(automobile));
    println!(
        "  2) all automobiles with red color:       {}",
        db.query(&q2).unwrap().len()
    );
    // 4) vehicles which are NOT compact automobiles, red: skip a sub-tree.
    let q4 = Query::on(color_idx).value(red()).class_at(
        0,
        ClassSel::AnyOf(vec![ClassSel::Exact(vehicle), ClassSel::Exact(automobile)]),
    );
    println!(
        "  4) red vehicles excluding compacts:      {}",
        db.query(&q4).unwrap().len()
    );

    // ---- §3.3 path-index queries -------------------------------------------
    println!("\npath index queries (Vehicle/Company/Employee.Age):");
    let p1 = Query::on(age_idx).value(ValuePred::eq(Value::Int(50)));
    let hits = db.query(&p1).unwrap();
    println!(
        "  1) vehicles made by companies whose president is 50: {:?}",
        distinct_oids_at(&hits, 2)
    );
    let p2 = p1.clone().oid_at(1, OidSel::Is(c[1]));
    println!(
        "  2) ... for the particular company Fiat:              {:?}",
        distinct_oids_at(&db.query(&p2).unwrap(), 2)
    );
    let p4 = Query::on(age_idx)
        .value(ValuePred::eq(Value::Int(50)))
        .distinct_through(1);
    println!(
        "  4) companies whose president's age is 50:            {:?}",
        distinct_oids_at(&db.query(&p4).unwrap(), 1)
    );

    // ---- §3.3 combined query ------------------------------------------------
    println!("\ncombined class-hierarchy/path query:");
    let q = Query::on(age_idx)
        .value(ValuePred::at_least(Value::Int(41)))
        .class_at(1, ClassSel::SubTree(jap_co))
        .class_at(2, ClassSel::SubTree(compact));
    let hits = db.query(&q).unwrap();
    println!(
        "  compact automobiles made by Japanese auto companies whose \
         president is over 40: {:?}",
        distinct_oids_at(&hits, 2)
    );
    println!("  (answerable by neither a pure class-hierarchy nor a pure path index — §3.1)");
}
