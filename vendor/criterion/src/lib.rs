//! Minimal offline stand-in for the crates.io `criterion` 0.5 API.
//!
//! The build environment has no network access, so this crate lets the
//! workspace's `[[bench]]` targets compile and run without the real
//! dependency. It measures each benchmark with a plain wall-clock timer over
//! a small adaptive iteration count and prints one line per benchmark — no
//! statistical analysis, no plots, no CLI. Numbers are indicative only; for
//! publishable measurements swap the real criterion back in online.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Stop a measurement loop once this much time has been spent.
const TIME_BUDGET: Duration = Duration::from_millis(100);
const MAX_ITERS: u32 = 200;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one("", &id.into().label, f);
        self
    }
}

pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&self.name, &id.into().label, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one(group: &str, label: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed / b.iters
    } else {
        Duration::ZERO
    };
    let full = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    println!(
        "bench {full}: {per_iter:?}/iter ({} iters, shim timer)",
        b.iters
    );
}

pub struct Bencher {
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        loop {
            black_box(routine());
            self.iters += 1;
            self.elapsed = start.elapsed();
            if self.elapsed >= TIME_BUDGET || self.iters >= MAX_ITERS {
                break;
            }
        }
    }

    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
            if self.elapsed >= TIME_BUDGET || self.iters >= MAX_ITERS {
                break;
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // The libtest harness passes flags like --bench/--test when this
            // target is run under `cargo test`; a shim bench takes no options.
            $($group();)+
        }
    };
}
