//! Minimal offline stand-in for the crates.io `proptest` 1.x API.
//!
//! The build environment has no network access, so this crate provides a
//! seeded, deterministic, **non-shrinking** property-test engine that covers
//! exactly the surface the workspace uses:
//!
//! - the [`Strategy`] trait with `prop_map`, `prop_flat_map`, `prop_filter`
//!   and `boxed`,
//! - strategies for integer ranges, `Just`, `any::<T>()`, tuples, `Vec<S>`
//!   (element-wise), simple `.{lo,hi}`-style string patterns,
//!   [`collection::vec`], [`collection::btree_set`] and [`option::of`],
//! - the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assert_ne!`] macros, and
//!   `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failure reports the test name, case index and seed;
//!   generation is a pure function of (test name, case index), so re-running
//!   the same binary reproduces the failure exactly.
//! - **Deterministic by default.** `PROPTEST_CASES` overrides the case count
//!   (e.g. `PROPTEST_CASES=1000 cargo test`); `PROPTEST_RNG_SALT` perturbs
//!   the seed stream to explore fresh cases.
//! - Anything outside the surface above fails to compile — the desired
//!   signal to extend the shim consciously.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    /// The RNG handed to strategies. A thin wrapper so strategy code does not
    /// depend on the `rand` shim's trait imports.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Deterministic stream for one (test, case) pair.
        pub fn for_case(test_path: &str, case: u32) -> TestRng {
            // FNV-1a over the fully-qualified test name, mixed with the case
            // index and an optional environment salt.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let salt: u64 = std::env::var("PROPTEST_RNG_SALT")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            let seed = h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
            TestRng(StdRng::seed_from_u64(seed))
        }

        pub fn from_seed(seed: u64) -> TestRng {
            TestRng(StdRng::seed_from_u64(seed))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        pub fn gen_usize(&mut self, lo: usize, hi_inclusive: usize) -> usize {
            self.0.gen_range(lo..=hi_inclusive)
        }

        pub fn gen_bool(&mut self, p: f64) -> bool {
            self.0.gen_bool(p)
        }
    }

    /// Subset of proptest's config: only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Case count after the `PROPTEST_CASES` environment override.
    pub fn effective_cases(config: &ProptestConfig) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(config.cases)
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values. Unlike real proptest there is no value
    /// tree and no shrinking: `generate` directly yields a value.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// Type-erased strategy (`.boxed()`).
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "proptest shim: filter '{}' rejected 1000 candidates",
                self.reason
            );
        }
    }

    /// `Just(v)`: always yields a clone of `v`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted union of boxed strategies — the engine behind `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.next_u64() % self.total;
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weight walk exhausted")
        }
    }

    // ---- primitive strategies ---------------------------------------------

    /// Types with a canonical `any::<T>()` strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Bias towards small magnitudes and boundary values:
                    // uniform bit noise almost never produces the collisions
                    // and edge cases that make model tests interesting.
                    match rng.next_u64() % 8 {
                        0 => <$t>::MIN,
                        1 => <$t>::MAX,
                        2 => 0 as $t,
                        3 | 4 => (rng.next_u64() % 16) as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            match rng.next_u64() % 8 {
                0 => 0.0,
                1 => -0.0,
                2 => f64::INFINITY,
                3 => f64::NEG_INFINITY,
                4 => f64::NAN,
                5 => f64::from_bits(rng.next_u64()),
                _ => {
                    // Modest-magnitude finite floats.
                    let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    let scale = [1.0, 1e3, 1e-3, 1e9][rng.next_u64() as usize % 4];
                    let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
                    sign * mantissa * scale
                }
            }
        }
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    // Integer range strategies.
    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % width;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let width = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % width;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // Tuples of strategies generate tuples of values.
    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

    /// A `Vec` of strategies generates element-wise (one value per element).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    /// String patterns: supports the `.{lo,hi}` shape ("between lo and hi
    /// arbitrary non-newline chars") that the workspace uses. Anything else
    /// panics so an unsupported pattern is an explicit extension point, not a
    /// silent mis-generation.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_dot_repeat(self).unwrap_or_else(|| {
                panic!("proptest shim: unsupported string pattern {self:?} (supported: \".{{lo,hi}}\")")
            });
            let len = rng.gen_usize(lo, hi);
            // Mostly printable ASCII with occasional multi-byte chars so the
            // order-preserving encoding sees non-trivial UTF-8.
            const EXOTIC: [char; 6] = [
                '\u{e9}',
                '\u{4e2d}',
                '\u{1F600}',
                '\u{7f}',
                '\u{80}',
                '\u{fffd}',
            ];
            (0..len)
                .map(|_| {
                    if rng.next_u64().is_multiple_of(8) {
                        EXOTIC[rng.next_u64() as usize % EXOTIC.len()]
                    } else {
                        (0x20 + (rng.next_u64() % 0x5f) as u8) as char
                    }
                })
                .collect()
        }
    }

    /// Parse `.{lo,hi}` → `(lo, hi)`.
    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = rest.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Size specifications accepted by the collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_usize(self.size.lo, self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.gen_usize(self.size.lo, self.size.hi_inclusive);
            let mut set = BTreeSet::new();
            // Duplicates shrink the set, so over-generate within a bounded
            // number of attempts (small domains may legitimately fall short).
            let mut attempts = target * 20 + 100;
            while set.len() < target && attempts > 0 {
                set.insert(self.element.generate(rng));
                attempts -= 1;
            }
            set
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    /// `Some` three times out of four, like real proptest's default weight.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run each property as a `#[test]`: generate inputs from the deterministic
/// per-(test, case) stream and execute the body. No shrinking — failures
/// print the case index and reproduce exactly on re-run.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config = $cfg;
                let cases = $crate::test_runner::effective_cases(&config);
                let path = concat!(module_path!(), "::", stringify!($name));
                for case in 0..cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(path, case);
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                    }));
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest shim: {path} failed at case {case}/{cases} \
                             (deterministic: re-running this test reproduces it; \
                             set PROPTEST_RNG_SALT to explore other cases)"
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Weighted (`w => strategy`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

// Without shrinking there is no Err-propagation machinery to feed, so the
// prop_assert family is plain assert: the catch_unwind in `proptest!` turns
// the panic into a per-case report.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        let s = (0u32..10, -5i64..5);
        for _ in 0..1000 {
            let (a, b) = s.generate(&mut rng);
            assert!(a < 10);
            assert!((-5..5).contains(&b));
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let mut rng = TestRng::from_seed(2);
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 800, "expected ~900 trues, got {trues}");
    }

    #[test]
    fn collection_vec_hits_size_bounds() {
        let mut rng = TestRng::from_seed(3);
        let s = crate::collection::vec(any::<u8>(), 1..4);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn string_pattern_generates_in_range() {
        let mut rng = TestRng::from_seed(4);
        let s = ".{0,12}";
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v.chars().count() <= 12);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, multiple params, trailing comma.
        #[test]
        fn macro_smoke(mut xs in crate::collection::vec(0usize..100, 0..10), y in any::<bool>(),) {
            xs.push(1);
            prop_assert!(!xs.is_empty());
            let _ = y;
        }
    }
}
