//! Minimal offline stand-in for the crates.io `rand` 0.8 API.
//!
//! The build environment has no network access and no vendored registry, so
//! this crate re-implements exactly the surface the workspace uses:
//!
//! - [`rngs::StdRng`] — a deterministic 64-bit PRNG (xorshift* seeded via
//!   SplitMix64; statistical quality is ample for test/workload generation,
//!   and determinism per seed is what the harness actually relies on),
//! - [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`],
//! - [`Rng::gen_range`] over integer `Range` / `RangeInclusive` and `f64`,
//!   plus `gen`, `gen_bool`, `fill_bytes`,
//! - [`seq::SliceRandom`] — `shuffle` and `choose`.
//!
//! It is deliberately NOT a drop-in for all of rand; anything outside this
//! surface fails to compile, which is the desired signal to extend the shim
//! consciously rather than silently diverge.

/// Core source of randomness: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut eight = [0u8; 8];
        eight.copy_from_slice(&seed[..8]);
        Self::seed_from_u64(u64::from_le_bytes(eight))
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution in rand).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let width = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % width;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % width;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        lo + f64::sample(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing convenience methods, blanket-implemented for every RngCore.
pub trait Rng: RngCore {
    fn gen_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T {
        range.sample_from(self)
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic PRNG: xorshift64* state, seeded through SplitMix64 so
    /// nearby seeds still produce uncorrelated streams.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One SplitMix64 round turns any seed (including 0) into a
            // well-mixed non-zero state.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            StdRng { state: z | 1 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    /// Alias: the shim's StdRng is already small.
    pub type SmallRng = StdRng;
}

pub mod seq {
    use super::{Rng, RngCore};

    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..15);
            assert!((-5..15).contains(&v));
            let u = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seeded shuffle should move something");
    }
}
