//! Cross-crate integration: a randomized model-based test driving the whole
//! stack (schema → objects → maintained U-indexes → queries) and checking
//! every query against a brute-force evaluation over the object store.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uindex_oodb::objstore::{Oid, Value};
use uindex_oodb::schema::{AttrType, ClassId, Schema};
use uindex_oodb::uindex::{ClassSel, Database, IndexSpec, Query, QueryHit, ValuePred};

struct World {
    db: Database,
    vehicle_classes: Vec<ClassId>,
    company_classes: Vec<ClassId>,
    vehicle: ClassId,
    company: ClassId,
    color_idx: u16,
    age_idx: u16,
    employees: Vec<Oid>,
    companies: Vec<Oid>,
    vehicles: Vec<Oid>,
}

const COLORS: [&str; 5] = ["Blue", "Green", "Red", "White", "Yellow"];

fn build(seed: u64, n_vehicles: usize) -> World {
    let mut s = Schema::new();
    let employee = s.add_class("Employee").unwrap();
    s.add_attr(employee, "Age", AttrType::Int).unwrap();
    let company = s.add_class("Company").unwrap();
    s.add_attr(company, "President", AttrType::Ref(employee))
        .unwrap();
    let auto_co = s.add_subclass("AutoCompany", company).unwrap();
    let truck_co = s.add_subclass("TruckCompany", company).unwrap();
    let vehicle = s.add_class("Vehicle").unwrap();
    s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
    s.add_attr(vehicle, "MadeBy", AttrType::Ref(company))
        .unwrap();
    let auto = s.add_subclass("Automobile", vehicle).unwrap();
    let compact = s.add_subclass("Compact", auto).unwrap();
    let truck = s.add_subclass("Truck", vehicle).unwrap();

    let mut db = Database::in_memory(s).unwrap();
    let color_idx = db
        .define_index(IndexSpec::class_hierarchy("color", vehicle, "Color"))
        .unwrap();
    let age_idx = db
        .define_index(IndexSpec::path(
            "age",
            vehicle,
            &["MadeBy", "President"],
            "Age",
        ))
        .unwrap();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut employees = Vec::new();
    for _ in 0..12 {
        let e = db.create_object(employee).unwrap();
        db.set_attr(e, "Age", Value::Int(rng.gen_range(25..65)))
            .unwrap();
        employees.push(e);
    }
    let company_classes = vec![company, auto_co, truck_co];
    let mut companies = Vec::new();
    for _ in 0..8 {
        let class = company_classes[rng.gen_range(0..3)];
        let c = db.create_object(class).unwrap();
        let pres = employees[rng.gen_range(0..employees.len())];
        db.set_attr(c, "President", Value::Ref(pres)).unwrap();
        companies.push(c);
    }
    let vehicle_classes = vec![vehicle, auto, compact, truck];
    let mut vehicles = Vec::new();
    for _ in 0..n_vehicles {
        let class = vehicle_classes[rng.gen_range(0..4)];
        let v = db.create_object(class).unwrap();
        db.set_attr(v, "Color", Value::Str(COLORS[rng.gen_range(0..5)].into()))
            .unwrap();
        let made_by = companies[rng.gen_range(0..companies.len())];
        db.set_attr(v, "MadeBy", Value::Ref(made_by)).unwrap();
        vehicles.push(v);
    }
    World {
        db,
        vehicle_classes,
        company_classes,
        vehicle,
        company,
        color_idx,
        age_idx,
        employees,
        companies,
        vehicles,
    }
}

/// Brute-force the color query from the object store.
fn brute_color(w: &World, color: &str, class: ClassId) -> Vec<Oid> {
    let mut out: Vec<Oid> = w
        .vehicles
        .iter()
        .copied()
        .filter(|&v| w.db.store().exists(v))
        .filter(|&v| {
            let vc = w.db.store().class_of(v).unwrap();
            w.db.schema().is_subclass_of(vc, class)
                && w.db.store().attr(v, "Color").unwrap() == Some(&Value::Str(color.into()))
        })
        .collect();
    out.sort();
    out
}

/// Brute-force the age path query: vehicles whose company's president has
/// age in [lo, hi].
fn brute_age(w: &World, lo: i64, hi: i64, company_class: ClassId) -> Vec<Oid> {
    let mut out = Vec::new();
    for &v in &w.vehicles {
        if !w.db.store().exists(v) {
            continue;
        }
        let Some(c) = w.db.store().follow_ref(v, "MadeBy").unwrap() else {
            continue;
        };
        if !w.db.store().exists(c) {
            continue;
        }
        let cc = w.db.store().class_of(c).unwrap();
        if !w.db.schema().is_subclass_of(cc, company_class) {
            continue;
        }
        let Some(p) = w.db.store().follow_ref(c, "President").unwrap() else {
            continue;
        };
        match w.db.store().attr(p, "Age").unwrap() {
            Some(Value::Int(a)) if (lo..=hi).contains(a) => out.push(v),
            _ => {}
        }
    }
    out.sort();
    out
}

fn oids_at(hits: &[QueryHit], pos: usize) -> Vec<Oid> {
    let mut v: Vec<Oid> = hits.iter().filter_map(|h| h.oid_at(pos)).collect();
    v.sort();
    v.dedup();
    v
}

#[test]
fn random_world_queries_match_brute_force() {
    let w = build(11, 300);
    for color in COLORS {
        for class in w.vehicle_classes.clone() {
            let q = Query::on(w.color_idx)
                .value(ValuePred::eq(Value::Str(color.into())))
                .class_at(0, ClassSel::SubTree(class));
            let got = oids_at(&w.db.query(&q).unwrap(), 0);
            assert_eq!(got, brute_color(&w, color, class), "{color} {class:?}");
            // Forward scan must agree.
            let fwd = oids_at(&w.db.query(&q.forward_scan()).unwrap(), 0);
            assert_eq!(fwd, brute_color(&w, color, class));
        }
    }
    for (lo, hi) in [(25, 64), (30, 40), (50, 50), (60, 64)] {
        for cc in w.company_classes.clone() {
            let q = Query::on(w.age_idx)
                .value(ValuePred::between(Value::Int(lo), Value::Int(hi)))
                .class_at(1, ClassSel::SubTree(cc));
            let got = oids_at(&w.db.query(&q).unwrap(), 2);
            assert_eq!(got, brute_age(&w, lo, hi, cc), "ages {lo}..{hi} {cc:?}");
        }
    }
}

#[test]
fn random_mutations_keep_indexes_consistent() {
    let mut w = build(23, 150);
    let mut rng = StdRng::seed_from_u64(99);
    for step in 0..400 {
        match rng.gen_range(0..100) {
            // Repaint a vehicle.
            0..=34 => {
                let v = w.vehicles[rng.gen_range(0..w.vehicles.len())];
                if w.db.store().exists(v) {
                    let color = COLORS[rng.gen_range(0..5)];
                    w.db.set_attr(v, "Color", Value::Str(color.into())).unwrap();
                }
            }
            // Re-point a vehicle to another company.
            35..=54 => {
                let v = w.vehicles[rng.gen_range(0..w.vehicles.len())];
                let c = w.companies[rng.gen_range(0..w.companies.len())];
                if w.db.store().exists(v) && w.db.store().exists(c) {
                    w.db.set_attr(v, "MadeBy", Value::Ref(c)).unwrap();
                }
            }
            // A president switches age.
            55..=69 => {
                let e = w.employees[rng.gen_range(0..w.employees.len())];
                w.db.set_attr(e, "Age", Value::Int(rng.gen_range(25..65)))
                    .unwrap();
            }
            // A company replaces its president (the paper's case).
            70..=84 => {
                let c = w.companies[rng.gen_range(0..w.companies.len())];
                let e = w.employees[rng.gen_range(0..w.employees.len())];
                if w.db.store().exists(c) {
                    w.db.set_attr(c, "President", Value::Ref(e)).unwrap();
                }
            }
            // Delete a vehicle.
            85..=94 => {
                let v = w.vehicles[rng.gen_range(0..w.vehicles.len())];
                if w.db.store().exists(v) {
                    w.db.delete_object(v, false).unwrap();
                }
            }
            // Create a new vehicle.
            _ => {
                let class = w.vehicle_classes[rng.gen_range(0..4)];
                let v = w.db.create_object(class).unwrap();
                w.db.set_attr(v, "Color", Value::Str(COLORS[rng.gen_range(0..5)].into()))
                    .unwrap();
                let c = w.companies[rng.gen_range(0..w.companies.len())];
                w.db.set_attr(v, "MadeBy", Value::Ref(c)).unwrap();
                w.vehicles.push(v);
            }
        }
        if step % 80 == 0 {
            w.db.index_mut().verify().unwrap();
        }
    }
    w.db.index_mut().verify().unwrap();
    // Final full cross-check.
    for color in COLORS {
        let q = Query::on(w.color_idx).value(ValuePred::eq(Value::Str(color.into())));
        let got = oids_at(&w.db.query(&q).unwrap(), 0);
        assert_eq!(got, brute_color(&w, color, w.vehicle));
    }
    let q = Query::on(w.age_idx).value(ValuePred::between(Value::Int(25), Value::Int(64)));
    assert_eq!(
        oids_at(&w.db.query(&q).unwrap(), 2),
        brute_age(&w, 25, 64, w.company)
    );
}

#[test]
fn query_costs_scale_sanely() {
    let w = build(31, 2000);
    // Exact match on a narrow sub-tree reads far fewer pages than a full
    // forward scan of the whole color index.
    let q = Query::on(w.color_idx)
        .value(ValuePred::eq(Value::Str("Red".into())))
        .class_at(0, ClassSel::SubTree(w.vehicle_classes[2]));
    let (_, par) = w.db.query_with_stats(&q).unwrap();
    let (_, fwd) = w.db.query_with_stats(&q.clone().forward_scan()).unwrap();
    assert!(par.pages_read <= fwd.pages_read);
    // distinct_through at the company position prunes the scan.
    let q_all = Query::on(w.age_idx).value(ValuePred::between(Value::Int(25), Value::Int(64)));
    let (hits_all, cost_all) = w.db.query_with_stats(&q_all).unwrap();
    let q_distinct = q_all.clone().distinct_through(1);
    let (hits_d, cost_d) = w.db.query_with_stats(&q_distinct).unwrap();
    assert!(hits_d.len() < hits_all.len());
    assert!(cost_d.pages_read <= cost_all.pages_read);
    // Every distinct company is still represented.
    assert_eq!(
        oids_at(&hits_d, 1),
        oids_at(&hits_all, 1),
        "distinct_through must not lose combinations"
    );
}
