//! The correctness harness, wired into the tier-1 suite:
//!
//! 1. Differential oracle — 50 seeded random schema/database/query trials
//!    asserting parallel scan ≡ forward scan ≡ brute-force oracle and that
//!    the parallel scan never reads more pages (see `uindex::oracle`).
//! 2. WAL recovery torture at the B-tree level — crash the store at every
//!    commit boundary of a random workload and assert the reopened tree
//!    passes `verify()` and matches a shadow `BTreeMap` of the last commit.
//! 3. Fault propagation — injected read errors surface as `Err` from tree
//!    lookups, never as panics, and clear once the fault is gone.

use std::collections::BTreeMap;
use std::path::PathBuf;

use btree::{BTree, BTreeConfig};
use pagestore::{BufferPool, Fault, FaultStore, MemStore, WalStore};

#[test]
fn differential_oracle_50_trials() {
    let sum = uindex::oracle::run_trials(0xFEED_FACE_CAFE, 50);
    assert_eq!(sum.trials, 50);
    assert!(sum.queries >= 200, "too few queries: {sum:?}");
    assert!(sum.hits > 0, "no query ever matched: {sum:?}");
    assert!(
        sum.distinct_checks > 0,
        "distinct path never exercised: {sum:?}"
    );
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("harness_{}_{}", std::process::id(), name));
    p
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn key(n: u64) -> Vec<u8> {
    format!("key{:05}", n % 400).into_bytes()
}

/// Insert/delete workload with a commit every three operations; crash at
/// every commit boundary and recover the tree from the WAL.
#[test]
fn btree_over_wal_crashes_at_every_commit_boundary() {
    const OPS: usize = 90;
    const COMMIT_EVERY: usize = 3;
    let boundaries = OPS / COMMIT_EVERY;
    for crash_after in 0..=boundaries {
        let path = tmp(&format!("btwal{crash_after}"));
        let _ = std::fs::remove_file(&path);
        let wal = WalStore::create(MemStore::new(256), &path).unwrap();
        let pool = BufferPool::new(wal, 1 << 12);
        let mut tree = BTree::create(pool, BTreeConfig::default()).unwrap();
        let mut rng = 0x7EA5_EED0u64;
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        // State captured at the most recent commit.
        let mut committed = (model.clone(), tree.root(), tree.len());
        // The creation wrote the empty root page; make it durable so the
        // "crash before any commit" case has a tree to reopen.
        tree.pool().flush_to_store_only().unwrap();
        tree.pool().store_lock().commit().unwrap();
        let mut commits_done = 0;
        'outer: for op in 0..OPS {
            let k = key(splitmix(&mut rng));
            if splitmix(&mut rng).is_multiple_of(4) {
                tree.delete(&k).unwrap();
                model.remove(&k);
            } else {
                let v = splitmix(&mut rng).to_le_bytes().to_vec();
                tree.insert(&k, &v).unwrap();
                model.insert(k, v);
            }
            if (op + 1) % COMMIT_EVERY == 0 {
                tree.pool().flush_to_store_only().unwrap();
                tree.pool().store_lock().commit().unwrap();
                committed = (model.clone(), tree.root(), tree.len());
                commits_done += 1;
                if commits_done == crash_after {
                    break 'outer;
                }
            }
        }
        // Crash: drop dirty frames and the WAL overlay without committing.
        let inner = tree.into_pool().into_store().into_inner();
        let recovered = WalStore::open(inner, &path)
            .unwrap_or_else(|e| panic!("reopen after {crash_after} commits failed: {e}"));
        let (model_c, root_c, len_c) = committed;
        let tree = BTree::open(
            BufferPool::new(recovered, 1 << 12),
            BTreeConfig::default(),
            root_c,
            len_c,
        );
        let stats = tree
            .verify()
            .unwrap_or_else(|e| panic!("verify failed after {crash_after} commits: {e}"));
        assert_eq!(
            stats.entries as usize,
            model_c.len(),
            "entry count diverges after {crash_after} commits"
        );
        let got: Vec<(Vec<u8>, Vec<u8>)> = tree.scan_all().unwrap();
        let want: Vec<(Vec<u8>, Vec<u8>)> = model_c
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        assert_eq!(
            got, want,
            "recovered tree diverges from shadow model after {crash_after} commits"
        );
        std::fs::remove_file(&path).ok();
    }
}

/// Read faults surface as `Err`, not panics, and reads succeed again once
/// the fault schedule is exhausted.
#[test]
fn read_faults_propagate_as_errors() {
    let pool = BufferPool::new(FaultStore::new(MemStore::new(256)), 4);
    let mut tree = BTree::create(pool, BTreeConfig::default()).unwrap();
    for i in 0..200u32 {
        let k = i.to_be_bytes();
        tree.insert(&k, &k).unwrap();
    }
    // A tiny pool guarantees lookups must read from the store; fault the
    // next several reads.
    let base = tree.pool().store_lock().ops();
    for j in 0..8 {
        tree.pool().store_lock().inject(base + j, Fault::IoError);
    }
    let mut saw_error = false;
    for i in 0..200u32 {
        let k = i.to_be_bytes();
        match tree.get(&k) {
            Ok(Some(v)) => assert_eq!(v, k),
            Ok(None) => panic!("inserted key {i} vanished"),
            Err(_) => saw_error = true,
        }
    }
    assert!(saw_error, "faulted reads must surface as errors");
    assert_eq!(tree.pool().store_lock().pending_faults(), 0);
    // With the schedule drained, every key is readable again.
    for i in 0..200u32 {
        let k = i.to_be_bytes();
        assert_eq!(tree.get(&k).unwrap().as_deref(), Some(k.as_slice()));
    }
    tree.verify().unwrap();
}
