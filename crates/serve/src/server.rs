//! Blocking TCP server: one acceptor, one IO thread per connection, and a
//! fixed worker pool of [`DatabaseReader`] handles executing queries.
//!
//! The split keeps the expensive resource — query execution over the
//! buffer pool — bounded by `workers` regardless of how many clients
//! connect, while admission control bounds how many requests may *wait*
//! for those workers. A connection thread only parses frames, consults
//! the plan cache, and shuttles results; it holds no snapshot and no
//! pages, so thousands of idle connections cost only their threads.
//!
//! Each query executes against a fresh snapshot pinned for just that
//! query, so a long-lived server never pins old writer epochs (see the
//! reader-lifetime tests in `uindex` and `btree`).
//!
//! Shutdown protocol: set the stop flag; the acceptor (non-blocking
//! accept + poll) exits, connection threads notice via their read
//! timeouts and close, then workers drain the job queue and exit. Every
//! thread's telemetry registry is merged into one [`telemetry::Snapshot`]
//! handed back in the final [`ServeReport`], so counters add up exactly
//! as if the whole run were single-threaded.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pagestore::PageStore;
use telemetry::Span;
use uindex::DatabaseReader;

use crate::admission::{AdmissionGate, Permit};
use crate::cache::{CachedPlan, PlanCache};
use crate::proto::{
    self, DoneInfo, ErrorCode, Frame, ProtoError, WireRow, DEFAULT_MAX_PAYLOAD, HEADER_LEN,
};
use crate::slowlog::{SlowLog, SlowQueryEntry};
use crate::stats::{self, LiveStats, SamplerState, WorkerSlot};

/// Rows per [`Frame::RowBatch`]; large results span several batches.
const BATCH_ROWS: usize = 512;

/// Type-erased UQL parser bound to the served reader's metadata.
type ParseFn = Box<dyn Fn(&str) -> Result<uindex::Query, String> + Send + Sync>;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing queries (each owns a reader clone).
    pub workers: usize,
    /// Admission bound: queries in flight (executing or queued) before
    /// requests are shed with `Overloaded`.
    pub max_inflight: usize,
    /// Per-frame payload cap; oversized frames are rejected before any
    /// allocation.
    pub max_payload: u32,
    /// Bound on the prepared-plan cache (insertion-order eviction).
    pub plan_cache_capacity: usize,
    /// How often blocked accept/read loops re-check the stop flag.
    pub poll_interval: Duration,
    /// Per-frame read deadline for untrusted clients: once the first byte
    /// of a frame arrives, the rest must follow within this budget or the
    /// connection is closed with a typed fatal error (counted as
    /// `serve.conn.deadline_closed`). `None` disables the deadline; a
    /// fully idle connection (no bytes of the next header yet) is never
    /// subject to it.
    pub read_deadline: Option<Duration>,
    /// Latency threshold for the slow-query log: only queries at or above
    /// this many microseconds compete for a slot. 0 means every query
    /// competes (the log still retains only the worst N).
    pub slow_query_us: u64,
    /// Worst-N retention of the slow-query log; 0 disables slow-query
    /// capture entirely (no per-query registry snapshots are taken).
    pub slow_log_capacity: usize,
    /// Sampling interval for the rolling stats window — how often worker
    /// registries are folded into one interval delta.
    pub sample_interval: Duration,
    /// Intervals retained by the rolling window (e.g. 60 × 1s).
    pub window_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            max_inflight: 64,
            max_payload: DEFAULT_MAX_PAYLOAD,
            plan_cache_capacity: 1024,
            poll_interval: Duration::from_millis(25),
            read_deadline: Some(Duration::from_secs(5)),
            slow_query_us: 0,
            slow_log_capacity: 32,
            sample_interval: Duration::from_secs(1),
            window_capacity: 60,
        }
    }
}

/// Monotonic counters describing a server's lifetime, readable live via
/// [`Server::stats`] and returned finally in [`ServeReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted.
    pub connections: u64,
    /// Request frames handled (queries, prepares, pings).
    pub requests: u64,
    /// Queries executed to completion (success or exec error).
    pub queries: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Protocol violations observed (fatal and recoverable).
    pub proto_errors: u64,
    /// Result rows written to clients.
    pub rows_sent: u64,
    /// Connections that ended with a transport error (abrupt disconnect),
    /// as opposed to a clean close at a frame boundary.
    pub disconnects: u64,
    /// Plan-cache hits.
    pub plan_cache_hits: u64,
    /// Plan-cache misses (statements parsed).
    pub plan_cache_misses: u64,
    /// Connections closed for exceeding the per-frame read deadline.
    pub deadline_closed: u64,
    /// Queries answered from the degraded fallback path (object-store
    /// evaluation) instead of the index — still correct answers, flagged
    /// per-response in [`DoneInfo::degraded`].
    pub degraded_answers: u64,
    /// Whether the served reader's index is currently quarantined —
    /// every query is answering degraded until a clean `check()`.
    pub degraded: bool,
}

#[derive(Default)]
struct StatCells {
    connections: AtomicU64,
    requests: AtomicU64,
    queries: AtomicU64,
    proto_errors: AtomicU64,
    rows_sent: AtomicU64,
    disconnects: AtomicU64,
    deadline_closed: AtomicU64,
    degraded_answers: AtomicU64,
}

/// Final accounting handed back by [`Server::shutdown`].
pub struct ServeReport {
    /// Lifetime counters.
    pub stats: ServeStats,
    /// Telemetry merged from every server thread (`serve.*` counters,
    /// query latency/row histograms, execution spans).
    pub metrics: telemetry::Snapshot,
}

/// What a worker hands back for one query: the rows plus execution
/// footprint, or a typed error for the wire.
type QueryOutcome = Result<(Vec<WireRow>, DoneInfo), (ErrorCode, String)>;

/// One admitted query on its way to the worker pool. The admission
/// [`Permit`] rides inside and is released when the worker finishes — or
/// when the job is dropped unexecuted during shutdown.
struct Job {
    plan: Arc<CachedPlan>,
    cached: bool,
    permit: Permit,
    reply: mpsc::Sender<QueryOutcome>,
}

struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    cv: Condvar,
}

/// Outcome of one bounded wait on the job queue.
enum Pop {
    /// A job to execute.
    Job(Job),
    /// The wait timed out with no work — the worker gets control back so
    /// it can publish its telemetry snapshot for the sampler.
    Idle,
    /// Stop is set and the queue is drained (admitted queries are always
    /// answered before workers exit).
    Stopped,
}

impl JobQueue {
    fn push(&self, job: Job) {
        self.jobs.lock().unwrap().push_back(job);
        self.cv.notify_one();
    }

    /// Pop a job, waiting at most one `poll` interval. Unlike a blocking
    /// pop, this hands control back to the worker on every timeout so the
    /// worker can service the sampler between jobs.
    fn pop_timeout(&self, stop: &AtomicBool, poll: Duration) -> Pop {
        let mut jobs = self.jobs.lock().unwrap();
        if let Some(job) = jobs.pop_front() {
            return Pop::Job(job);
        }
        if stop.load(Ordering::Acquire) {
            return Pop::Stopped;
        }
        let (mut jobs, _) = self.cv.wait_timeout(jobs, poll).unwrap();
        if let Some(job) = jobs.pop_front() {
            return Pop::Job(job);
        }
        if stop.load(Ordering::Acquire) {
            return Pop::Stopped;
        }
        Pop::Idle
    }
}

struct Shared {
    stop: AtomicBool,
    /// Set only after every connection thread has been joined, so a late
    /// job enqueued by a draining connection always finds a live worker.
    stop_workers: AtomicBool,
    stats: StatCells,
    gate: Arc<AdmissionGate>,
    cache: PlanCache,
    queue: JobQueue,
    /// Parses UQL against the served reader's captured metadata. Boxed so
    /// `Shared` stays monomorphic over page stores.
    parse: ParseFn,
    /// Probes the served reader's shared quarantine flag — `true` while
    /// the index is quarantined and every answer is degraded. Always
    /// `false` for readers without a fallback source.
    degraded_probe: Box<dyn Fn() -> bool + Send + Sync>,
    /// Telemetry folded in by every server thread as it exits.
    metrics: Mutex<telemetry::Snapshot>,
    options: ServeOptions,
    /// Monotonic query ids, assigned by workers at execution.
    query_ids: AtomicU64,
    /// Worst-N slow-query log (see [`crate::slowlog`]).
    slow_log: Mutex<SlowLog>,
    /// Rolling-window sampler state; written by the sampler thread once
    /// per interval, read by Stats handlers. Never held together with
    /// `slow_log` or a worker slot lock (strict lock ordering: slots →
    /// sampler, slow_log alone).
    sampler: Mutex<SamplerState>,
    /// Bumped by the sampler each tick; workers publish their registry
    /// snapshot into their slot when they see a new epoch.
    sample_epoch: AtomicU64,
    /// One publication slot per worker.
    worker_slots: Vec<WorkerSlot>,
}

impl Shared {
    /// Fold this thread's telemetry registry into the server-wide merge.
    /// Called exactly once, as each server thread exits.
    fn fold_telemetry(&self) {
        let snap = telemetry::snapshot();
        self.metrics.lock().unwrap().merge(&snap);
    }
}

/// A running UQL server. Dropping it without [`Server::shutdown`] leaks
/// the background threads; call `shutdown` to stop and join everything.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    sampler: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind, spawn the worker pool and acceptor, and start serving
    /// `reader`'s database. Returns once the listener is live.
    pub fn start<P>(reader: DatabaseReader<P>, options: ServeOptions) -> std::io::Result<Server>
    where
        P: PageStore + Send + Sync + 'static,
    {
        let listener =
            TcpListener::bind(options.addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(ErrorKind::InvalidInput, "unresolvable addr")
            })?)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let parse_reader = reader.clone();
        let probe_reader = reader.clone();
        let worker_count = options.workers.max(1);
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            stop_workers: AtomicBool::new(false),
            stats: StatCells::default(),
            gate: AdmissionGate::new(options.max_inflight),
            cache: PlanCache::new(options.plan_cache_capacity),
            queue: JobQueue {
                jobs: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            },
            parse: Box::new(move |text| parse_reader.parse_uql(text).map_err(|e| e.to_string())),
            degraded_probe: Box::new(move || probe_reader.quarantined()),
            metrics: Mutex::new(telemetry::Snapshot::default()),
            query_ids: AtomicU64::new(0),
            slow_log: Mutex::new(SlowLog::new(options.slow_log_capacity)),
            sampler: Mutex::new(SamplerState::new(
                options.window_capacity,
                options.sample_interval,
            )),
            sample_epoch: AtomicU64::new(0),
            worker_slots: (0..worker_count).map(|_| WorkerSlot::default()).collect(),
            options: options.clone(),
        });

        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let shared = Arc::clone(&shared);
            let reader = reader.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(reader, shared, i))?,
            );
        }

        let sampler = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-sampler".into())
                .spawn(move || sampler_loop(shared))?
        };

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("serve-acceptor".into())
                .spawn(move || accept_loop(listener, shared, conns))?
        };

        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
            sampler: Some(sampler),
            conns,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The admission gate, exposed so tests and embedders can observe —
    /// or externally occupy — the in-flight bound.
    pub fn gate(&self) -> Arc<AdmissionGate> {
        Arc::clone(&self.shared.gate)
    }

    /// Live lifetime counters (monotonic; safe to poll while serving).
    pub fn stats(&self) -> ServeStats {
        let s = &self.shared.stats;
        let (plan_cache_hits, plan_cache_misses) = self.shared.cache.stats();
        ServeStats {
            connections: s.connections.load(Ordering::Relaxed),
            requests: s.requests.load(Ordering::Relaxed),
            queries: s.queries.load(Ordering::Relaxed),
            shed: self.shared.gate.shed(),
            proto_errors: s.proto_errors.load(Ordering::Relaxed),
            rows_sent: s.rows_sent.load(Ordering::Relaxed),
            disconnects: s.disconnects.load(Ordering::Relaxed),
            plan_cache_hits,
            plan_cache_misses,
            deadline_closed: s.deadline_closed.load(Ordering::Relaxed),
            degraded_answers: s.degraded_answers.load(Ordering::Relaxed),
            degraded: (self.shared.degraded_probe)(),
        }
    }

    /// Whether the served reader is currently quarantined (every answer
    /// degraded until a clean `check()` on the owning database).
    pub fn degraded(&self) -> bool {
        (self.shared.degraded_probe)()
    }

    /// Queries currently admitted and not yet finished.
    pub fn inflight(&self) -> usize {
        self.shared.gate.inflight()
    }

    /// Stop accepting, drain in-flight work, join every thread, and
    /// return the final counters plus merged telemetry.
    pub fn shutdown(mut self) -> ServeReport {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Connection threads observe the stop flag via their read
        // timeouts; the acceptor has stopped adding new ones.
        let conns = std::mem::take(&mut *self.conns.lock().unwrap());
        for handle in conns {
            let _ = handle.join();
        }
        // With no connection threads left, no new jobs can arrive;
        // workers drain whatever remains, then exit.
        self.shared.stop_workers.store(true, Ordering::Release);
        self.shared.queue.cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(sampler) = self.sampler.take() {
            let _ = sampler.join();
        }
        let stats = self.stats();
        let metrics = self.shared.metrics.lock().unwrap().clone();
        ServeReport { stats, metrics }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, conns: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    let mut next_conn = 0u64;
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                telemetry::counter("serve.connections").inc();
                let shared_conn = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name(format!("serve-conn-{next_conn}"))
                    .spawn(move || connection_loop(stream, shared_conn));
                next_conn += 1;
                match handle {
                    Ok(h) => conns.lock().unwrap().push(h),
                    Err(_) => {
                        shared.stats.disconnects.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(shared.options.poll_interval);
            }
            Err(_) => std::thread::sleep(shared.options.poll_interval),
        }
    }
    shared.fold_telemetry();
}

/// Read exactly `buf.len()` bytes, re-checking the stop flag on every
/// read timeout. `idle` distinguishes "waiting for the next frame" (EOF
/// and stop are clean) from "mid-frame" (EOF is truncation; stop still
/// aborts, reported as `Closed` so the caller drops the connection).
///
/// `deadline` bounds how long a *partially received* frame may stall: for
/// idle reads the clock starts at the first byte (a quiet connection that
/// has sent nothing is never killed), for payload reads at entry — the
/// header already arrived, so the connection is mid-frame by definition.
fn read_exact_polling(
    stream: &mut TcpStream,
    buf: &mut [u8],
    idle: bool,
    stop: &AtomicBool,
    deadline: Option<Duration>,
) -> Result<(), ProtoError> {
    let mut got = 0;
    let mut started: Option<Instant> = if idle { None } else { Some(Instant::now()) };
    while got < buf.len() {
        if let (Some(limit), Some(t0)) = (deadline, started) {
            if t0.elapsed() > limit {
                return Err(ProtoError::ReadDeadline);
            }
        }
        match stream.read(&mut buf[got..]) {
            Ok(0) if got == 0 && idle => return Err(ProtoError::Closed),
            Ok(0) => return Err(ProtoError::Truncated),
            Ok(n) => {
                got += n;
                started.get_or_insert_with(Instant::now);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop.load(Ordering::Acquire) {
                    return Err(ProtoError::Closed);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(())
}

fn connection_loop(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(shared.options.poll_interval));
    let _ = stream.set_nodelay(true);
    let max_payload = shared.options.max_payload;
    let deadline = shared.options.read_deadline;

    loop {
        // Header first (idle: a close here is clean), then payload.
        let mut header = [0u8; HEADER_LEN];
        let read = read_exact_polling(&mut stream, &mut header, true, &shared.stop, deadline)
            .and_then(|()| proto::parse_header(&header, max_payload))
            .and_then(|(ty, len, crc)| {
                let mut payload = vec![0u8; len as usize];
                read_exact_polling(&mut stream, &mut payload, false, &shared.stop, deadline)?;
                proto::verify_crc(crc, &payload)?;
                proto::parse_payload(ty, &payload)
            });

        let frame = match read {
            Ok(frame) => frame,
            Err(ProtoError::Closed) => break,
            Err(ProtoError::Io(_)) => {
                shared.stats.disconnects.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(err) => {
                // Framing violation: answer with a typed error. Fatal
                // errors (unframeable stream) then close; recoverable
                // ones keep serving this connection.
                if matches!(err, ProtoError::ReadDeadline) {
                    shared.stats.deadline_closed.fetch_add(1, Ordering::Relaxed);
                    telemetry::counter("serve.conn.deadline_closed").inc();
                }
                shared.stats.proto_errors.fetch_add(1, Ordering::Relaxed);
                telemetry::counter("serve.proto_errors").inc();
                let reply = Frame::Error {
                    code: ErrorCode::Proto,
                    message: err.to_string(),
                };
                if proto::write_frame(&mut stream, &reply).is_err() {
                    shared.stats.disconnects.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                if err.is_fatal() {
                    break;
                }
                continue;
            }
        };

        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        telemetry::counter("serve.requests").inc();
        if !handle_request(&mut stream, frame, &shared) {
            break;
        }
    }
    shared.fold_telemetry();
}

/// Handle one request frame; returns `false` when the connection must
/// close (transport failure writing the response).
fn handle_request(stream: &mut TcpStream, frame: Frame, shared: &Shared) -> bool {
    let reply_and_continue = |stream: &mut TcpStream, frame: &Frame| {
        if proto::write_frame(stream, frame).is_err() {
            shared.stats.disconnects.fetch_add(1, Ordering::Relaxed);
            false
        } else {
            true
        }
    };

    match frame {
        Frame::Ping => reply_and_continue(stream, &Frame::Pong),
        Frame::Prepare { uql } => {
            match shared
                .cache
                .lookup_or_parse(&uql, |text| parse_plan(shared, text))
            {
                Ok((id, _, hit)) => {
                    record_cache_outcome(hit);
                    reply_and_continue(stream, &Frame::Prepared { id })
                }
                Err(msg) => reply_and_continue(
                    stream,
                    &Frame::Error {
                        code: ErrorCode::Parse,
                        message: msg,
                    },
                ),
            }
        }
        Frame::Query { uql } => {
            match shared
                .cache
                .lookup_or_parse(&uql, |text| parse_plan(shared, text))
            {
                Ok((_, plan, hit)) => {
                    record_cache_outcome(hit);
                    dispatch_query(stream, plan, hit, shared)
                }
                Err(msg) => reply_and_continue(
                    stream,
                    &Frame::Error {
                        code: ErrorCode::Parse,
                        message: msg,
                    },
                ),
            }
        }
        Frame::Execute { id } => match shared.cache.by_id(id) {
            Some(plan) => dispatch_query(stream, plan, true, shared),
            None => reply_and_continue(
                stream,
                &Frame::Error {
                    code: ErrorCode::UnknownStatement,
                    message: format!("prepared statement {id} is unknown or evicted"),
                },
            ),
        },
        // Answered inline on the connection thread: no admission permit,
        // no worker dispatch, no snapshot, no buffer-pool traffic. An
        // overloaded server — even one configured with max_inflight = 0 —
        // must still answer Stats; that is the whole point of the frame.
        Frame::Stats { window_s } => {
            let json = build_stats_reply(shared, window_s);
            reply_and_continue(stream, &Frame::StatsReply { json })
        }
        Frame::Trace { id } => {
            let entry = shared.slow_log.lock().unwrap().get(id);
            match entry {
                Some(e) => reply_and_continue(stream, &Frame::TraceReply { json: e.to_json() }),
                None => reply_and_continue(
                    stream,
                    &Frame::Error {
                        code: ErrorCode::NotFound,
                        message: format!("query {id} is not in the slow-query log"),
                    },
                ),
            }
        }
        // A client sending response-typed frames is violating the
        // protocol, but the frame boundary is intact: recoverable.
        other @ (Frame::RowBatch { .. }
        | Frame::Done(_)
        | Frame::Error { .. }
        | Frame::Pong
        | Frame::Prepared { .. }
        | Frame::StatsReply { .. }
        | Frame::TraceReply { .. }) => {
            shared.stats.proto_errors.fetch_add(1, Ordering::Relaxed);
            telemetry::counter("serve.proto_errors").inc();
            reply_and_continue(
                stream,
                &Frame::Error {
                    code: ErrorCode::Proto,
                    message: format!("unexpected response frame 0x{:02x} from client", {
                        // Mirror of Frame::tag, which is private by design.
                        match other {
                            Frame::RowBatch { .. } => 0x81u8,
                            Frame::Done(_) => 0x82,
                            Frame::Error { .. } => 0x83,
                            Frame::Pong => 0x84,
                            Frame::Prepared { .. } => 0x85,
                            Frame::StatsReply { .. } => 0x86,
                            _ => 0x87,
                        }
                    }),
                },
            )
        }
    }
}

/// Gather every input for a `StatsReply` without touching the admission
/// gate, the worker pool, or the buffer pool, and build the document.
fn build_stats_reply(shared: &Shared, window_s: u32) -> String {
    let s = &shared.stats;
    let (plan_cache_hits, plan_cache_misses) = shared.cache.stats();
    let live = LiveStats {
        connections: s.connections.load(Ordering::Relaxed),
        requests: s.requests.load(Ordering::Relaxed),
        queries: s.queries.load(Ordering::Relaxed),
        shed: shared.gate.shed(),
        proto_errors: s.proto_errors.load(Ordering::Relaxed),
        rows_sent: s.rows_sent.load(Ordering::Relaxed),
        disconnects: s.disconnects.load(Ordering::Relaxed),
        deadline_closed: s.deadline_closed.load(Ordering::Relaxed),
        plan_cache_hits,
        plan_cache_misses,
        inflight: shared.gate.inflight(),
        queued: shared.queue.jobs.lock().unwrap().len(),
        max_inflight: shared.gate.limit(),
        workers: shared.worker_slots.len(),
        degraded_answers: s.degraded_answers.load(Ordering::Relaxed),
        degraded: (shared.degraded_probe)(),
    };
    let workers: Vec<(u64, u64)> = shared
        .worker_slots
        .iter()
        .map(|w| {
            (
                w.queries.load(Ordering::Relaxed),
                w.busy_us.load(Ordering::Relaxed),
            )
        })
        .collect();
    let slow = shared.slow_log.lock().unwrap().entries();
    let sampler = shared.sampler.lock().unwrap();
    stats::build_stats_json(&sampler, window_s, &live, &workers, &slow)
}

/// Admit, enqueue, await the worker's result, and stream it back.
/// Returns `false` when the connection must close.
fn dispatch_query(
    stream: &mut TcpStream,
    plan: Arc<CachedPlan>,
    cached: bool,
    shared: &Shared,
) -> bool {
    // Admission first: a shed request must cost nothing downstream — no
    // worker dispatch, no snapshot, no buffer-pool traffic.
    let Some(permit) = shared.gate.try_admit() else {
        telemetry::counter("serve.shed").inc();
        let reply = Frame::Error {
            code: ErrorCode::Overloaded,
            message: format!(
                "server at max in-flight queries ({}); retry",
                shared.gate.limit()
            ),
        };
        if proto::write_frame(stream, &reply).is_err() {
            shared.stats.disconnects.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        return true;
    };

    telemetry::counter("serve.queries").inc();
    let (tx, rx) = mpsc::channel();
    shared.queue.push(Job {
        plan,
        cached,
        permit,
        reply: tx,
    });

    // The worker always sends exactly one reply (or drops the sender on
    // shutdown, surfacing as RecvError → a retryable Unavailable).
    let result = rx
        .recv()
        .unwrap_or_else(|_| Err((ErrorCode::Unavailable, "server shutting down".to_string())));

    match result {
        Ok((rows, done)) => {
            shared
                .stats
                .rows_sent
                .fetch_add(done.rows, Ordering::Relaxed);
            for chunk in rows.chunks(BATCH_ROWS.max(1)) {
                let frame = Frame::RowBatch {
                    rows: chunk.to_vec(),
                };
                if proto::write_frame(stream, &frame).is_err() {
                    shared.stats.disconnects.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
            }
            if proto::write_frame(stream, &Frame::Done(done)).is_err() {
                shared.stats.disconnects.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            true
        }
        Err((code, message)) => {
            let reply = Frame::Error { code, message };
            if proto::write_frame(stream, &reply).is_err() {
                shared.stats.disconnects.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            true
        }
    }
}

fn record_cache_outcome(hit: bool) {
    if hit {
        telemetry::counter("serve.plan_cache.hits").inc();
    } else {
        telemetry::counter("serve.plan_cache.misses").inc();
    }
}

/// Worker loop: each worker owns a reader clone and executes queries
/// against a fresh snapshot pinned only for the duration of one query.
///
/// Between jobs the worker services the sampler: when the sample epoch
/// advances, it publishes its full thread-local registry snapshot into
/// its [`WorkerSlot`]. Publication is opportunistic — a worker stuck in
/// a long query publishes late and the sampler merges its previous
/// snapshot meanwhile, which under-reports but never over-reports.
fn worker_loop<P: PageStore + Send + Sync>(
    reader: DatabaseReader<P>,
    shared: Arc<Shared>,
    index: usize,
) {
    let slot = &shared.worker_slots[index];
    let mut last_epoch = 0u64;
    loop {
        let epoch = shared.sample_epoch.load(Ordering::Acquire);
        if epoch != last_epoch {
            *slot.snap.lock().unwrap() = telemetry::snapshot();
            slot.published.store(epoch, Ordering::Release);
            last_epoch = epoch;
        }

        let job = match shared
            .queue
            .pop_timeout(&shared.stop_workers, shared.options.poll_interval)
        {
            Pop::Job(job) => job,
            Pop::Idle => continue,
            Pop::Stopped => break,
        };
        let Job {
            plan,
            cached,
            permit,
            reply,
        } = job;

        let id = shared.query_ids.fetch_add(1, Ordering::Relaxed) + 1;
        // Slow-query capture needs a registry snapshot *before* execution
        // so the entry can carry the per-query delta; skip the cost
        // entirely when the log is disabled.
        let slow_enabled = shared.options.slow_log_capacity > 0;
        let before = slow_enabled.then(telemetry::snapshot);

        let snap = reader.snapshot();
        let snapshot_epoch = snap.epoch();
        let started = Instant::now();
        // Guarded execution behind a panic boundary: a storage fault
        // degrades or maps to a typed `Unavailable`, and a worker never
        // dies mid-job — the permit is released and the client gets a
        // typed error either way.
        let result = {
            let _span = Span::enter("serve.execute");
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                reader.query_guarded_at(&snap, &plan.query)
            }))
        };
        let micros = started.elapsed().as_micros() as u64;
        shared.stats.queries.fetch_add(1, Ordering::Relaxed);
        telemetry::histogram("serve.query_us").record(micros);
        slot.queries.fetch_add(1, Ordering::Relaxed);
        slot.busy_us.fetch_add(micros, Ordering::Relaxed);

        let mut executed = None; // (rows, ScanStats) on success
        let outcome = match result {
            Err(panic) => {
                telemetry::counter("serve.worker.panics").inc();
                Err((
                    ErrorCode::Exec,
                    format!("query execution panicked: {}", panic_message(&*panic)),
                ))
            }
            Ok(Err(e)) => Err((error_code_for(&e), e.to_string())),
            Ok(Ok((hits, stats, degraded))) => {
                if degraded {
                    shared
                        .stats
                        .degraded_answers
                        .fetch_add(1, Ordering::Relaxed);
                    telemetry::counter("serve.degraded_answers").inc();
                }
                executed = Some((hits.len() as u64, stats));
                let mut rows = Vec::with_capacity(hits.len());
                let mut encode_err = None;
                for hit in &hits {
                    match WireRow::from_hit(hit) {
                        Ok(row) => rows.push(row),
                        Err(e) => {
                            encode_err = Some((ErrorCode::Exec, e.to_string()));
                            break;
                        }
                    }
                }
                match encode_err {
                    Some(err) => Err(err),
                    None => {
                        telemetry::histogram("serve.rows").record(rows.len() as u64);
                        Ok((
                            rows,
                            DoneInfo {
                                rows: hits.len() as u64,
                                pages_read: stats.pages_read,
                                entries_examined: stats.entries_examined,
                                seeks: stats.seeks,
                                micros,
                                cached_plan: cached,
                                degraded,
                            },
                        ))
                    }
                }
            }
        };

        if micros >= shared.options.slow_query_us {
            if let (Some(before), Some((rows, stats))) = (before, executed) {
                let delta = telemetry::snapshot().delta(&before);
                shared.slow_log.lock().unwrap().offer(SlowQueryEntry {
                    id,
                    uql: plan.text.clone(),
                    micros,
                    rows,
                    cached_plan: cached,
                    snapshot_epoch,
                    stats,
                    delta,
                });
            }
        }

        // The connection may have vanished mid-query; a dead receiver
        // just means nobody wants the answer. The permit drops either
        // way, so abandoned queries never leak admission slots.
        let _ = reply.send(outcome);
        drop(permit);
    }
    shared.fold_telemetry();
}

/// Sampler loop: once per `sample_interval`, bump the epoch, give the
/// workers a bounded head start to publish, then fold their latest
/// snapshots into the rolling window. The wall clock lives only here —
/// the window itself (and everything Stats computes from it) is a pure
/// function of the pushed intervals.
fn sampler_loop(shared: Arc<Shared>) {
    let interval = shared.options.sample_interval.max(Duration::from_millis(1));
    let poll = shared.options.poll_interval.max(Duration::from_millis(1));
    let mut epoch = 0u64;
    loop {
        // Sleep one interval in poll-size chunks so shutdown is prompt.
        let wake = Instant::now() + interval;
        loop {
            let now = Instant::now();
            if now >= wake || shared.stop_workers.load(Ordering::Acquire) {
                break;
            }
            std::thread::sleep(poll.min(wake - now));
        }
        if shared.stop_workers.load(Ordering::Acquire) {
            break;
        }

        epoch += 1;
        shared.sample_epoch.store(epoch, Ordering::Release);
        // Nudge idle workers out of their queue wait so they publish
        // promptly even with long poll intervals.
        shared.queue.cv.notify_all();
        let deadline = Instant::now() + poll * 4;
        while Instant::now() < deadline {
            let all_published = shared
                .worker_slots
                .iter()
                .all(|s| s.published.load(Ordering::Acquire) >= epoch);
            if all_published {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }

        let mut merged = telemetry::Snapshot::default();
        for slot in &shared.worker_slots {
            merged.merge(&slot.snap.lock().unwrap());
        }
        shared.sampler.lock().unwrap().advance(merged);
    }
    shared.fold_telemetry();
}

fn parse_plan(shared: &Shared, text: &str) -> Result<uindex::Query, String> {
    (shared.parse)(text)
}

/// Map an engine error to the wire code. Storage trouble — pages or the
/// object store — is [`ErrorCode::Unavailable`]: the data is intact, the
/// request is retryable. Everything else (planning, bad queries) is a
/// deterministic [`ErrorCode::Exec`].
fn error_code_for(e: &uindex::Error) -> ErrorCode {
    match e {
        uindex::Error::Page(_) | uindex::Error::Store(_) => ErrorCode::Unavailable,
        _ => ErrorCode::Exec,
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    panic
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| panic.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}
