//! Length-prefixed binary wire protocol for the UQL serving layer.
//!
//! Every frame is `MAGIC (4) | VERSION (1) | TYPE (1) | LEN (4, BE) |
//! CRC32 (4, BE) | PAYLOAD (LEN bytes)`. Requests carry UQL text or a
//! prepared-statement id; responses carry row batches, execution
//! telemetry, or typed errors. The CRC covers the payload bytes
//! (`pagestore::crc32`), so a network that flips a bit *inside* a
//! well-framed payload produces a typed [`ProtoError::BadCrc`] instead
//! of silently decoding into wrong rows — the wire analog of the page
//! checksum trailers.
//!
//! Decoding is defensive in a fixed order — magic, version, declared
//! length against the payload cap, then type, then payload (CRC checked
//! once the payload bytes are in hand) — so an oversized length prefix
//! is rejected *before* any allocation and garbage input can never make
//! the decoder panic. Errors are classified as fatal (the stream can no
//! longer be framed: close after reporting) or recoverable (the frame
//! boundary is intact: report and keep the connection).

use std::fmt;
use std::io::{Read, Write};

use pagestore::crc32;

/// First four bytes of every frame: "UQLW" (UQL wire).
pub const MAGIC: [u8; 4] = *b"UQLW";
/// Protocol revision; bumped on any incompatible frame change.
/// v2 added the payload CRC32 header field and the `Done` degraded flag.
pub const VERSION: u8 = 2;
/// Fixed prefix size: magic + version + type + payload length + CRC32.
pub const HEADER_LEN: usize = 14;
/// Default cap on a single frame's payload (1 MiB).
pub const DEFAULT_MAX_PAYLOAD: u32 = 1 << 20;

/// Sentinel encoding `None` in a [`WireRow`] assignment slot.
const NO_ASSIGNMENT: u32 = u32::MAX;

/// Frame type tags. Requests are < 0x80, responses >= 0x80.
mod tag {
    pub const QUERY: u8 = 0x01;
    pub const PREPARE: u8 = 0x02;
    pub const EXECUTE: u8 = 0x03;
    pub const PING: u8 = 0x04;
    pub const STATS: u8 = 0x05;
    pub const TRACE: u8 = 0x06;
    pub const ROW_BATCH: u8 = 0x81;
    pub const DONE: u8 = 0x82;
    pub const ERROR: u8 = 0x83;
    pub const PONG: u8 = 0x84;
    pub const PREPARED: u8 = 0x85;
    pub const STATS_REPLY: u8 = 0x86;
    pub const TRACE_REPLY: u8 = 0x87;
}

/// Typed error codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// UQL text failed to parse or plan.
    Parse = 1,
    /// The query planned but execution failed.
    Exec = 2,
    /// Admission control shed the request; retry later.
    Overloaded = 3,
    /// The peer sent bytes that violate the framing rules.
    Proto = 4,
    /// `Execute` named a prepared-statement id the server no longer holds.
    UnknownStatement = 5,
    /// `Trace` named a query id the slow-query log does not hold (never
    /// logged, below the threshold, or already evicted by a worse query).
    NotFound = 6,
    /// A storage fault prevented answering and no degraded path was
    /// available; the data is intact, retry later.
    Unavailable = 7,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        match v {
            1 => Some(ErrorCode::Parse),
            2 => Some(ErrorCode::Exec),
            3 => Some(ErrorCode::Overloaded),
            4 => Some(ErrorCode::Proto),
            5 => Some(ErrorCode::UnknownStatement),
            6 => Some(ErrorCode::NotFound),
            7 => Some(ErrorCode::Unavailable),
            _ => None,
        }
    }
}

/// One query-result row: the entry's canonical key bytes
/// ([`uindex::EntryKey::encode`]) plus the position assignment. Byte-for-
/// byte comparable against an in-process oracle's encoding of the same
/// hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRow {
    /// `EntryKey::encode()` of the hit.
    pub key: Vec<u8>,
    /// Per-spec-position path-element index; `None` encoded as
    /// `0xFFFF_FFFF` on the wire.
    pub assignment: Vec<Option<u32>>,
}

impl WireRow {
    /// Encode a [`uindex::QueryHit`] for the wire (or for oracle-side
    /// comparison — both sides must go through this one function).
    pub fn from_hit(hit: &uindex::QueryHit) -> Result<WireRow, uindex::Error> {
        Ok(WireRow {
            key: hit.key.encode()?,
            assignment: hit.assignment.iter().map(|a| a.map(|i| i as u32)).collect(),
        })
    }
}

/// Execution summary closing every successful response stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DoneInfo {
    /// Total rows sent in the preceding [`Frame::RowBatch`] frames.
    pub rows: u64,
    /// Scan cost: distinct pages touched.
    pub pages_read: u64,
    /// Scan cost: entries the matcher examined.
    pub entries_examined: u64,
    /// Scan cost: skip-seeks performed.
    pub seeks: u64,
    /// Server-side execution time in microseconds.
    pub micros: u64,
    /// Whether the plan came from the prepared-plan cache.
    pub cached_plan: bool,
    /// Whether the answer came from the degraded object-store scan path
    /// (index quarantined or faulting) rather than the index. Degraded
    /// answers are still exact — just slower.
    pub degraded: bool,
}

/// Every frame the protocol can carry, request and response alike.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Parse-and-run one UQL query.
    Query { uql: String },
    /// Parse and cache a plan; the reply names it with [`Frame::Prepared`].
    Prepare { uql: String },
    /// Run a previously prepared plan by id.
    Execute { id: u64 },
    /// Liveness probe.
    Ping,
    /// Live introspection: counters, rates and percentiles over the most
    /// recent `window_s` seconds. Answered on the connection thread,
    /// *bypassing* admission control — an overloaded server must still
    /// answer Stats.
    Stats { window_s: u32 },
    /// Fetch the slow-query log entry for one query id (ids are listed in
    /// the `StatsReply` payload) — an after-the-fact EXPLAIN ANALYZE.
    Trace { id: u64 },
    /// A chunk of result rows (large results span several batches).
    RowBatch { rows: Vec<WireRow> },
    /// End of a successful response stream, with execution telemetry.
    Done(DoneInfo),
    /// Typed failure; terminates the response stream for one request.
    Error { code: ErrorCode, message: String },
    /// Reply to [`Frame::Ping`].
    Pong,
    /// Reply to [`Frame::Prepare`]: the id to pass to [`Frame::Execute`].
    Prepared { id: u64 },
    /// Reply to [`Frame::Stats`]: a JSON document (schema in DESIGN.md
    /// §14). JSON rather than binary fields so the payload can grow
    /// without a protocol revision; it is introspection, not the hot path.
    StatsReply { json: String },
    /// Reply to [`Frame::Trace`]: the slow-log entry as JSON.
    TraceReply { json: String },
}

impl Frame {
    fn tag(&self) -> u8 {
        match self {
            Frame::Query { .. } => tag::QUERY,
            Frame::Prepare { .. } => tag::PREPARE,
            Frame::Execute { .. } => tag::EXECUTE,
            Frame::Ping => tag::PING,
            Frame::Stats { .. } => tag::STATS,
            Frame::Trace { .. } => tag::TRACE,
            Frame::RowBatch { .. } => tag::ROW_BATCH,
            Frame::Done(_) => tag::DONE,
            Frame::Error { .. } => tag::ERROR,
            Frame::Pong => tag::PONG,
            Frame::Prepared { .. } => tag::PREPARED,
            Frame::StatsReply { .. } => tag::STATS_REPLY,
            Frame::TraceReply { .. } => tag::TRACE_REPLY,
        }
    }
}

/// Framing and payload failures, split into fatal (stream unframeable)
/// and recoverable (frame boundary intact) by [`ProtoError::is_fatal`].
#[derive(Debug)]
pub enum ProtoError {
    /// Underlying transport failure.
    Io(std::io::Error),
    /// The peer closed the stream at a frame boundary (clean EOF).
    Closed,
    /// Frame did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported protocol revision.
    BadVersion(u8),
    /// Type byte outside the known frame set.
    UnknownType(u8),
    /// Declared payload length exceeds the cap; rejected pre-allocation.
    Oversized { len: u32, max: u32 },
    /// Stream ended mid-frame.
    Truncated,
    /// Well-framed payload bytes that do not decode as the declared type.
    BadPayload(String),
    /// The peer left a frame half-written past the server's read
    /// deadline; the connection is closed rather than holding its IO
    /// thread's buffer forever.
    ReadDeadline,
    /// The payload bytes do not match the header's CRC32 — the frame was
    /// damaged in transit. Fatal: the stream can no longer be trusted.
    BadCrc {
        /// CRC declared in the header.
        expected: u32,
        /// CRC of the payload bytes actually received.
        actual: u32,
    },
}

impl ProtoError {
    /// Whether the connection can continue after this error. A bad magic,
    /// version, or length means we no longer know where frames begin;
    /// a bad payload or unknown type inside a valid frame does not.
    pub fn is_fatal(&self) -> bool {
        !matches!(self, ProtoError::UnknownType(_) | ProtoError::BadPayload(_))
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "io: {e}"),
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::UnknownType(t) => write!(f, "unknown frame type 0x{t:02x}"),
            ProtoError::Oversized { len, max } => {
                write!(f, "declared payload {len} bytes exceeds cap {max}")
            }
            ProtoError::Truncated => write!(f, "stream ended mid-frame"),
            ProtoError::BadPayload(m) => write!(f, "bad payload: {m}"),
            ProtoError::ReadDeadline => write!(f, "read deadline exceeded mid-frame"),
            ProtoError::BadCrc { expected, actual } => {
                write!(
                    f,
                    "payload crc mismatch: header {expected:08x}, received bytes {actual:08x}"
                )
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Payload primitives
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| ProtoError::BadPayload("payload shorter than declared".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A length-prefixed byte string whose declared length is validated
    /// against the bytes actually present before any allocation.
    fn bytes(&mut self) -> Result<&'a [u8], ProtoError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| ProtoError::BadPayload("string is not UTF-8".into()))
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::BadPayload(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut p = Vec::new();
    match frame {
        Frame::Query { uql } | Frame::Prepare { uql } => put_bytes(&mut p, uql.as_bytes()),
        Frame::Execute { id } | Frame::Prepared { id } | Frame::Trace { id } => {
            put_u64(&mut p, *id)
        }
        Frame::Ping | Frame::Pong => {}
        Frame::Stats { window_s } => put_u32(&mut p, *window_s),
        Frame::StatsReply { json } | Frame::TraceReply { json } => {
            put_bytes(&mut p, json.as_bytes())
        }
        Frame::RowBatch { rows } => {
            put_u32(&mut p, rows.len() as u32);
            for row in rows {
                put_bytes(&mut p, &row.key);
                put_u32(&mut p, row.assignment.len() as u32);
                for a in &row.assignment {
                    put_u32(&mut p, a.unwrap_or(NO_ASSIGNMENT));
                }
            }
        }
        Frame::Done(d) => {
            put_u64(&mut p, d.rows);
            put_u64(&mut p, d.pages_read);
            put_u64(&mut p, d.entries_examined);
            put_u64(&mut p, d.seeks);
            put_u64(&mut p, d.micros);
            p.push(d.cached_plan as u8);
            p.push(d.degraded as u8);
        }
        Frame::Error { code, message } => {
            p.push(*code as u8);
            put_bytes(&mut p, message.as_bytes());
        }
    }
    p
}

fn decode_payload(ty: u8, payload: &[u8]) -> Result<Frame, ProtoError> {
    let mut c = Cursor::new(payload);
    let frame = match ty {
        tag::QUERY => Frame::Query { uql: c.string()? },
        tag::PREPARE => Frame::Prepare { uql: c.string()? },
        tag::EXECUTE => Frame::Execute { id: c.u64()? },
        tag::PING => Frame::Ping,
        tag::STATS => Frame::Stats { window_s: c.u32()? },
        tag::TRACE => Frame::Trace { id: c.u64()? },
        tag::PONG => Frame::Pong,
        tag::PREPARED => Frame::Prepared { id: c.u64()? },
        tag::STATS_REPLY => Frame::StatsReply { json: c.string()? },
        tag::TRACE_REPLY => Frame::TraceReply { json: c.string()? },
        tag::ROW_BATCH => {
            let n = c.u32()? as usize;
            // The count is validated implicitly: each row consumes bytes
            // from the cursor, so an inflated count fails on `take`, never
            // on a speculative allocation.
            let mut rows = Vec::new();
            for _ in 0..n {
                let key = c.bytes()?.to_vec();
                let slots = c.u32()? as usize;
                let mut assignment = Vec::new();
                for _ in 0..slots {
                    let v = c.u32()?;
                    assignment.push((v != NO_ASSIGNMENT).then_some(v));
                }
                rows.push(WireRow { key, assignment });
            }
            Frame::RowBatch { rows }
        }
        tag::DONE => Frame::Done(DoneInfo {
            rows: c.u64()?,
            pages_read: c.u64()?,
            entries_examined: c.u64()?,
            seeks: c.u64()?,
            micros: c.u64()?,
            cached_plan: match c.u8()? {
                0 => false,
                1 => true,
                b => {
                    return Err(ProtoError::BadPayload(format!(
                        "cached_plan flag must be 0/1, got {b}"
                    )))
                }
            },
            degraded: match c.u8()? {
                0 => false,
                1 => true,
                b => {
                    return Err(ProtoError::BadPayload(format!(
                        "degraded flag must be 0/1, got {b}"
                    )))
                }
            },
        }),
        tag::ERROR => {
            let raw = c.u8()?;
            let code = ErrorCode::from_u8(raw)
                .ok_or_else(|| ProtoError::BadPayload(format!("unknown error code {raw}")))?;
            Frame::Error {
                code,
                message: c.string()?,
            }
        }
        other => return Err(ProtoError::UnknownType(other)),
    };
    c.finish()?;
    Ok(frame)
}

// ---------------------------------------------------------------------------
// Frame-level encode/decode
// ---------------------------------------------------------------------------

/// Serialize one frame (header + payload) into a fresh buffer.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload = encode_payload(frame);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(frame.tag());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Validate a 14-byte header, returning `(type, payload_len, payload_crc)`.
/// The declared length is checked against `max_payload` *here*, before the
/// caller allocates a payload buffer; the CRC is checked by
/// [`verify_crc`] once the payload bytes are in hand.
pub fn parse_header(
    header: &[u8; HEADER_LEN],
    max_payload: u32,
) -> Result<(u8, u32, u32), ProtoError> {
    if header[..4] != MAGIC {
        return Err(ProtoError::BadMagic(header[..4].try_into().unwrap()));
    }
    if header[4] != VERSION {
        return Err(ProtoError::BadVersion(header[4]));
    }
    let len = u32::from_be_bytes(header[6..10].try_into().unwrap());
    if len > max_payload {
        return Err(ProtoError::Oversized {
            len,
            max: max_payload,
        });
    }
    let crc = u32::from_be_bytes(header[10..14].try_into().unwrap());
    Ok((header[5], len, crc))
}

/// Check received payload bytes against the header's declared CRC.
pub fn verify_crc(expected: u32, payload: &[u8]) -> Result<(), ProtoError> {
    let actual = crc32(payload);
    if actual == expected {
        Ok(())
    } else {
        Err(ProtoError::BadCrc { expected, actual })
    }
}

/// Decode a well-framed payload body for frame type `ty`.
pub fn parse_payload(ty: u8, payload: &[u8]) -> Result<Frame, ProtoError> {
    decode_payload(ty, payload)
}

/// Decode one frame from the front of `buf`, returning it and the number
/// of bytes consumed. Short input yields [`ProtoError::Truncated`].
pub fn decode_frame(buf: &[u8], max_payload: u32) -> Result<(Frame, usize), ProtoError> {
    if buf.len() < HEADER_LEN {
        return Err(ProtoError::Truncated);
    }
    let header: &[u8; HEADER_LEN] = buf[..HEADER_LEN].try_into().unwrap();
    let (ty, len, crc) = parse_header(header, max_payload)?;
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Err(ProtoError::Truncated);
    }
    verify_crc(crc, &buf[HEADER_LEN..total])?;
    let frame = decode_payload(ty, &buf[HEADER_LEN..total])?;
    Ok((frame, total))
}

/// Blocking read of exactly one frame from `r`. EOF at a frame boundary
/// is [`ProtoError::Closed`]; EOF mid-frame is [`ProtoError::Truncated`].
pub fn read_frame(r: &mut impl Read, max_payload: u32) -> Result<Frame, ProtoError> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0;
    while got < HEADER_LEN {
        match r.read(&mut header[got..])? {
            0 if got == 0 => return Err(ProtoError::Closed),
            0 => return Err(ProtoError::Truncated),
            n => got += n,
        }
    }
    let (ty, len, crc) = parse_header(&header, max_payload)?;
    let mut payload = vec![0u8; len as usize];
    let mut got = 0;
    while got < payload.len() {
        match r.read(&mut payload[got..])? {
            0 => return Err(ProtoError::Truncated),
            n => got += n,
        }
    }
    verify_crc(crc, &payload)?;
    decode_payload(ty, &payload)
}

/// Blocking write of one frame to `w`.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&encode_frame(frame))
}
