//! Server-side slow-query log: a bounded ring of the N *worst* queries by
//! latency, each entry carrying everything an after-the-fact EXPLAIN
//! ANALYZE needs — the monotonically-assigned query id, the normalized
//! UQL text, the snapshot epoch it ran against, the [`ScanStats`] cost
//! counters, and the per-query telemetry registry delta.
//!
//! Eviction policy: entries are kept sorted worst-first; a new entry that
//! beats the current floor evicts the cheapest logged query. Ties on
//! latency keep the *older* entry (first observed wins), so a steady
//! stream of equal-cost queries cannot churn the log. Only queries at or
//! above the configured threshold (`ServeOptions::slow_query_us`) are
//! considered at all.

use std::fmt::Write as _;
use std::sync::Arc;

use telemetry::json;
use uindex::ScanStats;

/// One logged query, immutable once inserted (shared with concurrent
/// `Trace` readers via `Arc`).
#[derive(Debug, Clone)]
pub struct SlowQueryEntry {
    /// Monotonic query id, assigned at dispatch across all workers.
    pub id: u64,
    /// The normalized UQL the plan was parsed from.
    pub uql: String,
    /// Server-side execution latency in microseconds.
    pub micros: u64,
    /// Rows the query produced.
    pub rows: u64,
    /// Whether the plan came from the prepared-plan cache.
    pub cached_plan: bool,
    /// The writer epoch of the snapshot the query executed against.
    pub snapshot_epoch: u64,
    /// Scan cost counters, exactly as returned to the client in `Done`.
    pub stats: ScanStats,
    /// Telemetry registry delta over the execution — the counters a live
    /// `EXPLAIN ANALYZE` of this query would have reported.
    pub delta: telemetry::Snapshot,
}

impl SlowQueryEntry {
    /// One-line summary for the `StatsReply` slow list.
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"id\": {}, \"micros\": {}, \"rows\": {}, \"cached_plan\": {}, \"uql\": \"{}\"}}",
            self.id,
            self.micros,
            self.rows,
            self.cached_plan,
            json::escape(&self.uql)
        )
    }

    /// Full entry for the `TraceReply` payload.
    pub fn to_json(&self) -> String {
        let s = &self.stats;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"id\": {},\n  \"uql\": \"{}\",\n  \"micros\": {},\n  \"rows\": {},\n  \
             \"cached_plan\": {},\n  \"snapshot_epoch\": {},\n",
            self.id,
            json::escape(&self.uql),
            self.micros,
            self.rows,
            self.cached_plan,
            self.snapshot_epoch
        );
        let _ = writeln!(
            out,
            "  \"scan_stats\": {{\"pages_read\": {}, \"node_visits\": {}, \
             \"entries_examined\": {}, \"matches\": {}, \"seeks\": {}, \"descents\": {}, \
             \"reseek_depth_total\": {}}},",
            s.pages_read,
            s.node_visits,
            s.entries_examined,
            s.matches,
            s.seeks,
            s.descents,
            s.reseek_depth_total
        );
        let _ = write!(out, "  \"delta\": {}\n}}", self.delta.to_json());
        out
    }
}

/// Bounded worst-N log. All mutation happens under the server's mutex;
/// the structure itself is single-threaded.
pub struct SlowLog {
    /// Sorted worst-first (descending `micros`, ascending `id` on ties).
    entries: Vec<Arc<SlowQueryEntry>>,
    capacity: usize,
}

impl SlowLog {
    /// A log retaining the `capacity` worst queries; 0 disables logging.
    pub fn new(capacity: usize) -> SlowLog {
        SlowLog {
            entries: Vec::with_capacity(capacity.min(1024)),
            capacity,
        }
    }

    /// Offer a finished query. Returns whether it was retained.
    pub fn offer(&mut self, entry: SlowQueryEntry) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if self.entries.len() >= self.capacity
            && entry.micros <= self.entries.last().map_or(0, |e| e.micros)
        {
            return false; // not worse than the current floor
        }
        let at = self.entries.partition_point(|e| {
            (e.micros, std::cmp::Reverse(e.id)) >= (entry.micros, std::cmp::Reverse(entry.id))
        });
        self.entries.insert(at, Arc::new(entry));
        self.entries.truncate(self.capacity);
        true
    }

    /// Look up a logged entry by query id.
    pub fn get(&self, id: u64) -> Option<Arc<SlowQueryEntry>> {
        self.entries.iter().find(|e| e.id == id).map(Arc::clone)
    }

    /// All retained entries, worst-first.
    pub fn entries(&self) -> Vec<Arc<SlowQueryEntry>> {
        self.entries.clone()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, micros: u64) -> SlowQueryEntry {
        SlowQueryEntry {
            id,
            uql: format!("q{id}"),
            micros,
            rows: id,
            cached_plan: false,
            snapshot_epoch: 1,
            stats: ScanStats::default(),
            delta: telemetry::Snapshot::default(),
        }
    }

    #[test]
    fn keeps_worst_n_sorted() {
        let mut log = SlowLog::new(3);
        for (id, us) in [(1, 50), (2, 500), (3, 10), (4, 300), (5, 40)] {
            log.offer(entry(id, us));
        }
        let ids: Vec<u64> = log.entries().iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![2, 4, 1], "worst three, worst-first");
        assert!(log.get(2).is_some());
        assert!(log.get(3).is_none(), "evicted / never retained");
    }

    #[test]
    fn ties_keep_the_older_entry() {
        let mut log = SlowLog::new(2);
        assert!(log.offer(entry(1, 100)));
        assert!(log.offer(entry(2, 100)));
        assert!(!log.offer(entry(3, 100)), "equal cost must not churn");
        let ids: Vec<u64> = log.entries().iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut log = SlowLog::new(0);
        assert!(!log.offer(entry(1, 1_000_000)));
        assert!(log.is_empty());
    }

    #[test]
    fn entry_json_parses() {
        let e = entry(7, 1234);
        let parsed = json::parse(&e.to_json()).expect("trace JSON parses");
        assert_eq!(parsed.get("id").and_then(|v| v.as_u64()), Some(7));
        assert_eq!(parsed.get("micros").and_then(|v| v.as_u64()), Some(1234));
        assert!(parsed.get("scan_stats").is_some());
        assert!(parsed.get("delta").is_some());
        let sum = json::parse(&e.summary_json()).expect("summary JSON parses");
        assert_eq!(sum.get("uql").and_then(|v| v.as_str()), Some("q7"));
    }
}
