//! UQL serving layer for the uniform index.
//!
//! Four pieces, each its own module:
//!
//! - [`proto`] — the length-prefixed binary wire protocol (frame format,
//!   defensive decoding, typed error codes).
//! - [`admission`] — a counting gate bounding in-flight queries; excess
//!   load is shed with a typed `Overloaded` error before touching the
//!   engine.
//! - [`cache`] — the prepared-plan cache keyed on normalized UQL text.
//! - [`server`] / [`client`] — a blocking TCP server multiplexing N
//!   client connections over a fixed worker pool of
//!   [`uindex::DatabaseReader`] handles, and the reference client.
//! - [`retry`] — client-side fault survival: bounded, deterministic
//!   retry/backoff and a reconnecting client that re-prepares statements
//!   before any `Execute` retry.
//! - [`stats`] / [`slowlog`] — live introspection: the rolling-window
//!   sampler state behind the `Stats` frame and the worst-N slow-query
//!   log behind `Trace` (see DESIGN.md §14).
//!
//! The design contract threaded through all of it: responses are built
//! from [`uindex::EntryKey::encode`] bytes, so any in-process execution
//! of the same query over the same data is byte-comparable to what a
//! client receives — the differential-oracle hook the test battery and
//! load generator rely on.

pub mod admission;
pub mod cache;
pub mod client;
pub mod proto;
pub mod retry;
pub mod server;
pub mod slowlog;
pub mod stats;

pub use admission::{AdmissionGate, Permit};
pub use cache::{normalize, PlanCache};
pub use client::{Client, QueryReply, ServeError};
pub use proto::{DoneInfo, ErrorCode, Frame, ProtoError, WireRow};
pub use retry::{RetryClient, RetryPolicy, Stmt};
pub use server::{ServeOptions, ServeReport, ServeStats, Server};
pub use slowlog::{SlowLog, SlowQueryEntry};
