//! Admission control: a fixed bound on in-flight queries. Requests that
//! would exceed the bound are shed with a typed `Overloaded` error before
//! they touch the planner, the worker pool, or the buffer pool — shedding
//! must stay cheap precisely when the server is busiest.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Counting gate bounding concurrent query execution.
pub struct AdmissionGate {
    limit: usize,
    inflight: AtomicUsize,
    admitted: AtomicU64,
    shed: AtomicU64,
}

impl AdmissionGate {
    /// A gate admitting at most `limit` concurrent queries. `limit == 0`
    /// sheds everything — useful for drain/maintenance modes and tests.
    pub fn new(limit: usize) -> Arc<AdmissionGate> {
        Arc::new(AdmissionGate {
            limit,
            inflight: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        })
    }

    /// Try to admit one query. `None` means the caller must shed the
    /// request; `Some(permit)` holds a slot until the permit drops.
    pub fn try_admit(self: &Arc<AdmissionGate>) -> Option<Permit> {
        let mut cur = self.inflight.load(Ordering::Relaxed);
        loop {
            if cur >= self.limit {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.admitted.fetch_add(1, Ordering::Relaxed);
                    return Some(Permit {
                        gate: Arc::clone(self),
                    });
                }
                Err(now) => cur = now,
            }
        }
    }

    /// The configured concurrency bound.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Queries currently holding a permit.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// Total queries ever admitted.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Total requests shed at the gate.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

/// RAII admission slot: dropping it releases the slot, whether the query
/// finished, failed, or its connection vanished mid-response.
pub struct Permit {
    gate: Arc<AdmissionGate>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.gate.inflight.fetch_sub(1, Ordering::Release);
    }
}
