//! Prepared-plan cache keyed on normalized UQL text.
//!
//! `Prepare` parses once and hands back an id; `Execute` replays the plan
//! without re-parsing. Plain `Query` requests also consult the cache, so
//! a hot query stream pays the parser once per distinct statement. The
//! cache is bounded: insertion-order eviction, and an evicted prepared id
//! answers `Execute` with `UnknownStatement` rather than a stale plan.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use uindex::Query;

/// A parsed, planned statement shared between the cache and in-flight
/// executions (eviction never invalidates a running query).
pub struct CachedPlan {
    /// The normalized statement text this plan was parsed from.
    pub text: String,
    /// The parsed query, ready for `DatabaseReader::query_at`.
    pub query: Query,
}

struct CacheInner {
    by_text: HashMap<String, u64>,
    plans: HashMap<u64, Arc<CachedPlan>>,
    order: VecDeque<u64>,
    next_id: u64,
    hits: u64,
    misses: u64,
}

/// Bounded map from normalized UQL text to parsed plans, each addressable
/// by a stable prepared-statement id.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

/// Canonical form used as the cache key: whitespace runs outside single-
/// quoted strings collapse to one space, leading/trailing whitespace is
/// trimmed. No case folding — UQL identifiers are case-sensitive, so
/// folding would alias distinct statements.
pub fn normalize(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let mut in_quote = false;
    let mut pending_space = false;
    for ch in input.chars() {
        if in_quote {
            out.push(ch);
            if ch == '\'' {
                in_quote = false;
            }
        } else if ch.is_whitespace() {
            pending_space = true;
        } else {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            out.push(ch);
            if ch == '\'' {
                in_quote = true;
            }
        }
    }
    out
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner {
                by_text: HashMap::new(),
                plans: HashMap::new(),
                order: VecDeque::new(),
                next_id: 1,
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// Resolve `input` to a plan, parsing with `parse` on a miss. Returns
    /// the id, the plan, and whether it was a cache hit. Parse failures
    /// are returned verbatim and never cached (a later identical statement
    /// re-parses — the statement may become valid after a schema change).
    pub fn lookup_or_parse<E>(
        &self,
        input: &str,
        parse: impl FnOnce(&str) -> Result<Query, E>,
    ) -> Result<(u64, Arc<CachedPlan>, bool), E> {
        let text = normalize(input);
        {
            let mut inner = self.inner.lock().unwrap();
            if let Some(&id) = inner.by_text.get(&text) {
                let plan = Arc::clone(&inner.plans[&id]);
                inner.hits += 1;
                return Ok((id, plan, true));
            }
        }
        // Parse outside the lock: a slow parse must not serialize every
        // other connection's cache lookups.
        let query = parse(&text)?;
        let plan = Arc::new(CachedPlan {
            text: text.clone(),
            query,
        });
        let mut inner = self.inner.lock().unwrap();
        if let Some(&id) = inner.by_text.get(&text) {
            // Raced with another connection preparing the same statement;
            // keep the incumbent so its id stays valid.
            let plan = Arc::clone(&inner.plans[&id]);
            inner.hits += 1;
            return Ok((id, plan, true));
        }
        inner.misses += 1;
        while inner.order.len() >= self.capacity {
            if let Some(evicted) = inner.order.pop_front() {
                if let Some(old) = inner.plans.remove(&evicted) {
                    inner.by_text.remove(&old.text);
                }
            }
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.by_text.insert(text, id);
        inner.plans.insert(id, Arc::clone(&plan));
        inner.order.push_back(id);
        Ok((id, plan, false))
    }

    /// Fetch a prepared plan by id; `None` means never issued or evicted.
    pub fn by_id(&self, id: u64) -> Option<Arc<CachedPlan>> {
        self.inner.lock().unwrap().plans.get(&id).map(Arc::clone)
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().unwrap();
        (inner.hits, inner.misses)
    }

    /// Number of plans currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().plans.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
