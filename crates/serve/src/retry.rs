//! Client-side fault survival: a bounded, deterministic retry/backoff
//! policy ([`RetryPolicy`]) and a reconnecting wrapper around [`Client`]
//! ([`RetryClient`]).
//!
//! The contract, shared with the chaos harness that proves it:
//!
//! * retries happen **only** where they cannot change observable state —
//!   [`ServeError::is_retryable`] gates every attempt, and every request
//!   this client issues is a read (`Query`/`Execute`/`Ping`/`Stats`);
//! * `Execute` after a reconnect is only retried **after re-`Prepare`** —
//!   prepared-statement ids are per-connection, so the client keeps the
//!   UQL text and re-earns a fresh id on the new stream;
//! * attempts are bounded ([`RetryPolicy::max_attempts`]), backoff is
//!   exponential, capped, and jittered from a seeded generator so a run
//!   is reproducible byte-for-byte;
//! * an optional per-request deadline bounds the total time burned before
//!   giving up, whatever the attempt budget says.
//!
//! Telemetry: `serve.client.retries` (sleeps taken), `serve.client.gaveup`
//! (retryable errors surrendered to the caller), and
//! `serve.client.reconnects` (successful re-establishments after a
//! connection was torn down).

use std::net::ToSocketAddrs;
use std::time::{Duration, Instant};

use crate::client::{Client, QueryReply, ServeError};
use crate::proto::{ErrorCode, ProtoError};

/// Bounded exponential backoff with deterministic jitter.
///
/// Retry `n` (1-based) sleeps `min(max_backoff, base·2ⁿ⁻¹ + jitter)`
/// where `jitter ∈ [0, base·2ⁿ⁻¹/4]` comes from a SplitMix64 stream
/// seeded by `jitter_seed` — the same seed always yields the same sleep
/// sequence, and the sequence is monotone non-decreasing (the jitter is
/// strictly smaller than one doubling).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` disables retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, pre-jitter.
    pub base_backoff: Duration,
    /// Hard cap on any single sleep.
    pub max_backoff: Duration,
    /// Optional wall-clock budget per request: once the next sleep would
    /// cross it, the client gives up instead.
    pub deadline: Option<Duration>,
    /// Per-read socket timeout on every connection this client opens. A
    /// reply that never arrives — dropped by the network, or stalled
    /// because a corrupted length header left the peer waiting — becomes
    /// a timed-out I/O error instead of an eternal block; the error is
    /// fatal, so the connection is torn down and the request retried on
    /// a fresh one. `None` restores unbounded blocking reads.
    pub read_timeout: Option<Duration>,
    /// Seed for the jitter stream; same seed ⇒ same sleeps.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            deadline: None,
            read_timeout: Some(Duration::from_secs(2)),
            jitter_seed: 0x5eed_1e55_u64,
        }
    }
}

/// SplitMix64 — tiny, seedable, and already the repo's idiom for
/// deterministic test randomness.
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no sleeps).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The sleep before retry `retry` (1-based). Deterministic in
    /// `(jitter_seed, retry)`; monotone non-decreasing in `retry`;
    /// never exceeds `max_backoff`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let retry = retry.max(1);
        let raw = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(retry - 1).unwrap_or(u32::MAX));
        let mut state = self.jitter_seed ^ (u64::from(retry)).wrapping_mul(0xa076_1d64_78bd_642f);
        splitmix64(&mut state);
        let quarter = (raw / 4).as_nanos() as u64;
        let jitter = Duration::from_nanos(if quarter == 0 {
            0
        } else {
            mix(state) % (quarter + 1)
        });
        self.max_backoff.min(raw.saturating_add(jitter))
    }
}

/// A [`Client`] wrapper that survives connection loss, admission sheds,
/// and transient server unavailability by retrying under a
/// [`RetryPolicy`]. Connections are established lazily and re-established
/// transparently; prepared statements are tracked by UQL text so they can
/// be re-prepared on a fresh connection before any `Execute` retry.
pub struct RetryClient {
    addr: String,
    policy: RetryPolicy,
    conn: Option<Client>,
    ever_connected: bool,
    /// Statement texts by local handle; `server_ids[i]` is the id on the
    /// *current* connection, cleared wholesale on reconnect.
    prepared: Vec<String>,
    server_ids: Vec<Option<u64>>,
}

/// A local prepared-statement handle, stable across reconnects (unlike
/// the server-side id, which is per-connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stmt(usize);

impl RetryClient {
    /// Wrap an address (not yet connected — the first request connects).
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> RetryClient {
        RetryClient {
            addr: addr.into(),
            policy,
            conn: None,
            ever_connected: false,
            prepared: Vec::new(),
            server_ids: Vec::new(),
        }
    }

    /// Whether a live connection is currently held.
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    fn ensure_conn(&mut self) -> Result<(), ServeError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let addr = self
            .addr
            .to_socket_addrs()
            .ok()
            .and_then(|mut a| a.next())
            .ok_or(ServeError::Unexpected("unresolvable server address"))?;
        let mut client = Client::connect(addr).map_err(|e| ServeError::Proto(ProtoError::Io(e)))?;
        client
            .set_read_timeout(self.policy.read_timeout)
            .map_err(|e| ServeError::Proto(ProtoError::Io(e)))?;
        if self.ever_connected {
            telemetry::counter("serve.client.reconnects").inc();
        }
        self.ever_connected = true;
        // Server-side statement ids died with the old stream.
        self.server_ids.iter_mut().for_each(|id| *id = None);
        self.conn = Some(client);
        Ok(())
    }

    /// The retry engine. `op` runs one attempt against a connected self;
    /// a fatal error tears the connection down so the next attempt
    /// reconnects. All requests this client issues are idempotent reads,
    /// so `is_retryable(true)` gates every retry.
    fn run<T>(
        &mut self,
        mut op: impl FnMut(&mut RetryClient) -> Result<T, ServeError>,
    ) -> Result<T, ServeError> {
        let started = Instant::now();
        let mut retry = 0u32;
        loop {
            let attempt = match self.ensure_conn() {
                Ok(()) => op(self),
                Err(e) => Err(e),
            };
            let err = match attempt {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            if err.is_fatal() {
                self.conn = None;
            }
            retry += 1;
            if !err.is_retryable(true) {
                return Err(err);
            }
            if retry >= self.policy.max_attempts {
                telemetry::counter("serve.client.gaveup").inc();
                return Err(err);
            }
            let sleep = self.policy.backoff(retry);
            if let Some(budget) = self.policy.deadline {
                if started.elapsed().saturating_add(sleep) > budget {
                    telemetry::counter("serve.client.gaveup").inc();
                    return Err(err);
                }
            }
            telemetry::counter("serve.client.retries").inc();
            std::thread::sleep(sleep);
        }
    }

    /// Liveness round-trip, retried.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.run(|c| c.conn.as_mut().expect("connected").ping())
    }

    /// Parse-and-run one UQL statement, retried.
    pub fn query(&mut self, uql: &str) -> Result<QueryReply, ServeError> {
        self.run(|c| c.conn.as_mut().expect("connected").query(uql))
    }

    /// Register a statement locally. No wire traffic happens here — the
    /// server-side prepare is lazy, per-connection, and re-done after any
    /// reconnect, which is exactly what makes `execute` retry-safe.
    pub fn prepare(&mut self, uql: &str) -> Stmt {
        self.prepared.push(uql.to_string());
        self.server_ids.push(None);
        Stmt(self.prepared.len() - 1)
    }

    /// Run a prepared statement, retried; re-prepares on the current
    /// connection whenever the server-side id is missing (fresh
    /// connection) or rejected (plan-cache eviction).
    pub fn execute(&mut self, stmt: Stmt) -> Result<QueryReply, ServeError> {
        self.run(|c| {
            let text = c.prepared[stmt.0].clone();
            let conn = c.conn.as_mut().expect("connected");
            let id = match c.server_ids[stmt.0] {
                Some(id) => id,
                None => {
                    let id = conn.prepare(&text)?;
                    c.server_ids[stmt.0] = Some(id);
                    id
                }
            };
            match conn.execute(id) {
                Err(ServeError::Server {
                    code: ErrorCode::UnknownStatement,
                    ..
                }) => {
                    // Evicted server-side: re-prepare once, same attempt.
                    let id = conn.prepare(&text)?;
                    c.server_ids[stmt.0] = Some(id);
                    conn.execute(id)
                }
                other => other,
            }
        })
    }

    /// Fetch the live stats document, retried.
    pub fn stats(&mut self, window_s: u32) -> Result<String, ServeError> {
        self.run(|c| c.conn.as_mut().expect("connected").stats(window_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let p = RetryPolicy::default();
        let q = RetryPolicy::default();
        for n in 1..=10 {
            assert_eq!(p.backoff(n), q.backoff(n));
        }
        let other = RetryPolicy {
            jitter_seed: 7,
            ..RetryPolicy::default()
        };
        // Different seeds diverge somewhere below the cap.
        assert!((1..=4).any(|n| p.backoff(n) != other.backoff(n)));
    }

    #[test]
    fn backoff_is_monotone_and_capped() {
        let p = RetryPolicy::default();
        let mut prev = Duration::ZERO;
        for n in 1..=32 {
            let b = p.backoff(n);
            assert!(b >= prev, "retry {n}: {b:?} < {prev:?}");
            assert!(b <= p.max_backoff);
            prev = b;
        }
        assert_eq!(p.backoff(32), p.max_backoff);
    }

    #[test]
    fn backoff_jitter_stays_under_one_doubling() {
        let p = RetryPolicy {
            max_backoff: Duration::from_secs(3600),
            ..RetryPolicy::default()
        };
        for n in 1..=8 {
            let raw = p.base_backoff * 2u32.pow(n - 1);
            assert!(p.backoff(n) >= raw);
            assert!(p.backoff(n) <= raw + raw / 4);
        }
    }

    #[test]
    fn none_policy_has_single_attempt() {
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }
}
