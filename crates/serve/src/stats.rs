//! Live-stats plumbing: per-worker snapshot slots the sampler polls, the
//! rolling-window sampler state, and the `StatsReply` JSON builder.
//!
//! Division of labor with `server.rs`: the server owns the threads (the
//! sampler loop, the workers publishing into their slots) and gathers the
//! live atomic counters; this module owns the *data* — how interval
//! deltas are derived from cumulative worker snapshots, how windows are
//! folded, and how the reply document is laid out. Everything here is
//! clock-free and deterministic, so the window math is testable with
//! synthetic snapshots.

use std::fmt::Write as _;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use telemetry::{json, RollingWindow, Snapshot};

use crate::slowlog::SlowQueryEntry;

/// Histogram names the window math consumes.
const QUERY_US: &str = "serve.query_us";
const ROWS: &str = "serve.rows";
const POOL_HITS: &str = "pagestore.pool.hits";
const POOL_MISSES: &str = "pagestore.pool.misses";

/// One worker's publication slot. The worker overwrites `snap` with its
/// full (cumulative) thread-local registry snapshot whenever the sampler
/// bumps the epoch; the sampler merges whatever was last published, so a
/// worker stuck in a long query simply contributes its previous snapshot
/// until it surfaces.
#[derive(Default)]
pub struct WorkerSlot {
    /// Latest cumulative registry snapshot published by this worker.
    pub snap: Mutex<Snapshot>,
    /// The sample epoch `snap` was published for (lags during long queries).
    pub published: AtomicU64,
    /// Queries this worker has finished (live atomic, not sampled).
    pub queries: AtomicU64,
    /// Microseconds this worker has spent executing (live atomic).
    pub busy_us: AtomicU64,
}

/// Sampler-owned state: the rolling window of interval deltas plus the
/// cumulative merge the deltas are computed against. Guarded by one mutex
/// in `Shared`; the sampler writes once per interval, Stats handlers read.
pub struct SamplerState {
    window: RollingWindow,
    /// Merge of the most recent published snapshot from every worker.
    /// Monotone because each worker's registry is monotone.
    cumulative: Snapshot,
    interval: Duration,
}

impl SamplerState {
    pub fn new(window_capacity: usize, interval: Duration) -> SamplerState {
        SamplerState {
            window: RollingWindow::new(window_capacity),
            cumulative: Snapshot::default(),
            interval,
        }
    }

    /// Fold one sampling tick: `merged` is the merge of every worker's
    /// latest published snapshot. The interval delta (vs the previous
    /// cumulative) goes into the window; `merged` becomes the new basis.
    pub fn advance(&mut self, merged: Snapshot) {
        let delta = merged.delta(&self.cumulative);
        self.window.push(delta);
        self.cumulative = merged;
    }

    pub fn window(&self) -> &RollingWindow {
        &self.window
    }

    pub fn cumulative(&self) -> &Snapshot {
        &self.cumulative
    }

    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Ticks sampled so far (the id of the newest interval).
    pub fn tick(&self) -> u64 {
        self.window.ticks()
    }
}

/// Live (un-sampled) counter values the server reads straight from its
/// atomics at Stats time. Always current, unlike the sampled window.
#[derive(Debug, Clone, Default)]
pub struct LiveStats {
    pub connections: u64,
    pub requests: u64,
    pub queries: u64,
    pub shed: u64,
    pub proto_errors: u64,
    pub rows_sent: u64,
    pub disconnects: u64,
    pub deadline_closed: u64,
    pub plan_cache_hits: u64,
    pub plan_cache_misses: u64,
    pub inflight: usize,
    pub queued: usize,
    pub max_inflight: usize,
    pub workers: usize,
    /// Queries answered from the degraded fallback path so far.
    pub degraded_answers: u64,
    /// Whether the served index is currently quarantined (every answer
    /// degraded until a clean check).
    pub degraded: bool,
}

fn hist_count(s: &Snapshot, name: &str) -> u64 {
    s.histograms.get(name).map_or(0, |h| h.count)
}

fn hist_sum(s: &Snapshot, name: &str) -> u64 {
    s.histograms.get(name).map_or(0, |h| h.sum)
}

fn counter(s: &Snapshot, name: &str) -> u64 {
    s.counters.get(name).copied().unwrap_or(0)
}

fn rate(n: u64, seconds: f64) -> f64 {
    if seconds > 0.0 {
        n as f64 / seconds
    } else {
        0.0
    }
}

fn ratio(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total > 0 {
        hits as f64 / total as f64
    } else {
        0.0
    }
}

/// Assemble the `StatsReply` JSON document. Pure function of its inputs;
/// the caller (connection thread) gathers them without touching the
/// buffer pool or the admission gate.
pub fn build_stats_json(
    sampler: &SamplerState,
    window_s: u32,
    live: &LiveStats,
    workers: &[(u64, u64)],
    slow: &[Arc<SlowQueryEntry>],
) -> String {
    let interval_ms = sampler.interval().as_millis().max(1) as u64;
    // How many sampled intervals cover the requested wall-clock window
    // (at least one, so `Stats { window_s: 0 }` means "newest interval").
    let want = ((window_s as u64 * 1000).div_ceil(interval_ms)).max(1) as usize;
    let (win, covered) = sampler.window().merged(want);
    let seconds = covered as f64 * interval_ms as f64 / 1000.0;

    let qcount = hist_count(&win, QUERY_US);
    let qsum = hist_sum(&win, QUERY_US);
    let empty = telemetry::HistogramSnapshot::default();
    let qh = win.histograms.get(QUERY_US).unwrap_or(&empty);
    let mean_us = qsum.checked_div(qcount).unwrap_or(0);
    let pool_hits = counter(&win, POOL_HITS);
    let pool_misses = counter(&win, POOL_MISSES);

    let cum = sampler.cumulative();

    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\n  \"tick\": {},\n  \"interval_ms\": {},\n",
        sampler.tick(),
        interval_ms
    );
    let _ = writeln!(
        out,
        "  \"window\": {{\"requested_s\": {window_s}, \"ticks\": {covered}, \"seconds\": {seconds}, \
         \"qps\": {:.3}, \"rows_per_s\": {:.3}, \
         \"query_us\": {{\"count\": {qcount}, \"mean_us\": {mean_us}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}}}, \
         \"pool\": {{\"hits\": {pool_hits}, \"misses\": {pool_misses}, \"hit_rate\": {:.4}}}}},",
        rate(qcount, seconds),
        rate(hist_sum(&win, ROWS), seconds),
        qh.percentile(0.50),
        qh.percentile(0.99),
        qh.percentile(0.999),
        ratio(pool_hits, pool_misses),
    );
    let _ = writeln!(
        out,
        "  \"cumulative\": {{\"queries\": {}, \"rows\": {}, \"query_us_sum\": {}, \
         \"pool_hits\": {}, \"pool_misses\": {}}},",
        hist_count(cum, QUERY_US),
        hist_sum(cum, ROWS),
        hist_sum(cum, QUERY_US),
        counter(cum, POOL_HITS),
        counter(cum, POOL_MISSES),
    );
    let _ = writeln!(
        out,
        "  \"live\": {{\"connections\": {}, \"requests\": {}, \"queries\": {}, \"shed\": {}, \
         \"proto_errors\": {}, \"rows_sent\": {}, \"disconnects\": {}, \"deadline_closed\": {}, \
         \"plan_cache_hits\": {}, \"plan_cache_misses\": {}, \"plan_cache_hit_rate\": {:.4}, \
         \"inflight\": {}, \"queued\": {}, \"max_inflight\": {}, \"workers\": {}, \
         \"degraded_answers\": {}, \"degraded\": {}}},",
        live.connections,
        live.requests,
        live.queries,
        live.shed,
        live.proto_errors,
        live.rows_sent,
        live.disconnects,
        live.deadline_closed,
        live.plan_cache_hits,
        live.plan_cache_misses,
        ratio(live.plan_cache_hits, live.plan_cache_misses),
        live.inflight,
        live.queued,
        live.max_inflight,
        live.workers,
        live.degraded_answers,
        live.degraded,
    );
    out.push_str("  \"workers\": [");
    for (i, (queries, busy_us)) in workers.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{{\"queries\": {queries}, \"busy_us\": {busy_us}}}");
    }
    out.push_str("],\n  \"slow\": [");
    for (i, entry) in slow.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&entry.summary_json());
    }
    out.push_str("]\n}");
    debug_assert!(json::parse(&out).is_ok(), "StatsReply JSON must parse");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::HistogramSnapshot;

    /// A cumulative snapshot with `n` queries of `us` µs each and matching
    /// pool traffic.
    fn cumulative(n: u64, us: u64, pool_hits: u64) -> Snapshot {
        let mut s = Snapshot::default();
        let bucket_hi = us.next_power_of_two().max(1);
        s.histograms.insert(
            QUERY_US.into(),
            HistogramSnapshot {
                count: n,
                sum: n * us,
                buckets: vec![(bucket_hi / 2 + 1, bucket_hi, n)],
            },
        );
        s.histograms.insert(
            ROWS.into(),
            HistogramSnapshot {
                count: n,
                sum: n * 3,
                buckets: vec![(2, 3, n)],
            },
        );
        s.counters.insert(POOL_HITS.into(), pool_hits);
        s.counters.insert(POOL_MISSES.into(), pool_hits / 4);
        s
    }

    #[test]
    fn windowed_rates_from_interval_deltas() {
        let mut st = SamplerState::new(60, Duration::from_secs(1));
        // Three 1s ticks: 10, then 30, then 60 cumulative queries.
        for (n, hits) in [(10, 40), (30, 120), (60, 240)] {
            st.advance(cumulative(n, 100, hits));
        }
        assert_eq!(st.tick(), 3);
        assert_eq!(hist_count(st.cumulative(), QUERY_US), 60);

        // Last 2 seconds saw 60 - 10 = 50 queries → 25 qps.
        let doc = build_stats_json(&st, 2, &LiveStats::default(), &[], &[]);
        let v = json::parse(&doc).expect("stats JSON parses");
        let win = v.get("window").unwrap();
        assert_eq!(win.get("ticks").and_then(|t| t.as_u64()), Some(2));
        let qps = win.get("qps").and_then(|q| q.as_f64()).unwrap();
        assert!((qps - 25.0).abs() < 1e-9, "qps {qps} != 25");
        assert_eq!(
            win.get("query_us")
                .and_then(|q| q.get("count"))
                .and_then(|c| c.as_u64()),
            Some(50)
        );
        assert_eq!(
            v.get("cumulative")
                .and_then(|c| c.get("queries"))
                .and_then(|q| q.as_u64()),
            Some(60)
        );
        // Pool hit rate: window saw 200 hits, 50 misses.
        let pool = win.get("pool").unwrap();
        assert_eq!(pool.get("hits").and_then(|h| h.as_u64()), Some(200));
        let rate = pool.get("hit_rate").and_then(|r| r.as_f64()).unwrap();
        assert!((rate - 0.8).abs() < 1e-9);
    }

    #[test]
    fn zero_window_means_newest_interval() {
        let mut st = SamplerState::new(8, Duration::from_millis(100));
        st.advance(cumulative(5, 50, 0));
        st.advance(cumulative(9, 50, 0));
        let doc = build_stats_json(&st, 0, &LiveStats::default(), &[], &[]);
        let v = json::parse(&doc).unwrap();
        let win = v.get("window").unwrap();
        assert_eq!(win.get("ticks").and_then(|t| t.as_u64()), Some(1));
        assert_eq!(
            win.get("query_us")
                .and_then(|q| q.get("count"))
                .and_then(|c| c.as_u64()),
            Some(4),
            "newest 100ms interval saw 9 - 5 = 4 queries"
        );
    }

    #[test]
    fn empty_sampler_yields_parseable_zeros() {
        let st = SamplerState::new(60, Duration::from_secs(1));
        let live = LiveStats {
            shed: 7,
            max_inflight: 0,
            ..LiveStats::default()
        };
        let doc = build_stats_json(&st, 60, &live, &[(0, 0)], &[]);
        let v = json::parse(&doc).expect("empty-window stats must still parse");
        let live = v.get("live").unwrap();
        assert_eq!(live.get("shed").and_then(|s| s.as_u64()), Some(7));
        let win = v.get("window").unwrap();
        assert_eq!(win.get("qps").and_then(|q| q.as_f64()), Some(0.0));
    }
}
