//! Minimal blocking client for the UQL wire protocol: used by the load
//! generator, the test battery, and as the reference for how a foreign
//! client should drive the server.

use std::fmt;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{self, DoneInfo, ErrorCode, Frame, ProtoError, WireRow, DEFAULT_MAX_PAYLOAD};

/// A failure surfaced to the client caller, keeping server-side typed
/// errors (notably `Overloaded`) distinguishable from transport issues.
#[derive(Debug)]
pub enum ServeError {
    /// Framing/transport failure on this side of the wire.
    Proto(ProtoError),
    /// The server answered with a typed error frame.
    Server { code: ErrorCode, message: String },
    /// The server sent a well-formed frame the client did not expect in
    /// this state (e.g. a `Pong` to a `Query`).
    Unexpected(&'static str),
}

impl ServeError {
    /// Whether this is an admission-control shed (retryable).
    pub fn is_overloaded(&self) -> bool {
        matches!(
            self,
            ServeError::Server {
                code: ErrorCode::Overloaded,
                ..
            }
        )
    }

    /// Whether a retry can possibly succeed **and** cannot change
    /// observable state, given whether the request was `idempotent`.
    ///
    /// The table, pinned by unit tests below:
    ///
    /// * typed `Overloaded` / `Unavailable` — the server explicitly said
    ///   "retry later"; always retryable.
    /// * any other typed server error (`Parse`, `Exec`, `Proto`,
    ///   `UnknownStatement`, `NotFound`) — deterministic; retrying
    ///   re-earns the same answer, so never retryable.
    /// * framing/transport loss (`Io`, `Closed`, `Truncated`, `BadMagic`,
    ///   `BadVersion`, `Oversized`, `BadCrc`, `ReadDeadline`) — the
    ///   request may or may not have executed, so retryable **only** for
    ///   idempotent requests (reads). All UQL statements are reads today,
    ///   but the split keeps the client honest if that ever changes.
    /// * a well-framed-but-wrong frame (`UnknownType`, `BadPayload`,
    ///   [`ServeError::Unexpected`]) — the peers disagree about the
    ///   protocol; retrying cannot fix that.
    pub fn is_retryable(&self, idempotent: bool) -> bool {
        match self {
            ServeError::Server { code, .. } => {
                matches!(code, ErrorCode::Overloaded | ErrorCode::Unavailable)
            }
            ServeError::Proto(ProtoError::UnknownType(_) | ProtoError::BadPayload(_)) => false,
            ServeError::Proto(_) => idempotent,
            ServeError::Unexpected(_) => false,
        }
    }

    /// Whether the connection is unusable after this error — the same
    /// fatal/recoverable split the server applies to client input. An
    /// unknown-but-well-framed response tag ([`ProtoError::UnknownType`])
    /// and a typed server error both leave the stream at a frame
    /// boundary, so the connection can keep being used; anything that
    /// loses framing (truncation, bad magic, IO failure) cannot.
    pub fn is_fatal(&self) -> bool {
        match self {
            ServeError::Proto(e) => e.is_fatal(),
            ServeError::Server { .. } => false,
            // The frame parsed; it just arrived in the wrong state. The
            // stream is still framed.
            ServeError::Unexpected(_) => false,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Proto(e) => write!(f, "protocol: {e}"),
            ServeError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
            ServeError::Unexpected(what) => write!(f, "unexpected frame: {what}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ProtoError> for ServeError {
    fn from(e: ProtoError) -> Self {
        ServeError::Proto(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Proto(ProtoError::Io(e))
    }
}

/// A complete successful query response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReply {
    /// All rows, concatenated across row batches in arrival order.
    pub rows: Vec<WireRow>,
    /// The closing execution summary.
    pub done: DoneInfo,
}

/// One blocking connection to a UQL server.
pub struct Client {
    stream: TcpStream,
    max_payload: u32,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            max_payload: DEFAULT_MAX_PAYLOAD,
        })
    }

    /// Bound every blocking read on this connection. Without one, a lost
    /// or garbled reply (e.g. a corrupted length header making the peer
    /// wait for bytes that never come) blocks the caller forever; with
    /// one, the read fails with a timed-out I/O error, which
    /// [`ServeError::is_fatal`] marks as connection-poisoning — exactly
    /// what a retrying caller needs to tear down and reconnect.
    pub fn set_read_timeout(
        &mut self,
        timeout: Option<std::time::Duration>,
    ) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Liveness round-trip.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        proto::write_frame(&mut self.stream, &Frame::Ping)?;
        match self.read_reply()? {
            Frame::Pong => Ok(()),
            _ => Err(ServeError::Unexpected("wanted Pong")),
        }
    }

    /// Parse-and-cache a statement server-side; the returned id drives
    /// [`Client::execute`].
    pub fn prepare(&mut self, uql: &str) -> Result<u64, ServeError> {
        proto::write_frame(&mut self.stream, &Frame::Prepare { uql: uql.into() })?;
        match self.read_reply()? {
            Frame::Prepared { id } => Ok(id),
            _ => Err(ServeError::Unexpected("wanted Prepared")),
        }
    }

    /// Run a previously prepared statement.
    pub fn execute(&mut self, id: u64) -> Result<QueryReply, ServeError> {
        proto::write_frame(&mut self.stream, &Frame::Execute { id })?;
        self.collect_rows()
    }

    /// Parse-and-run one UQL statement.
    pub fn query(&mut self, uql: &str) -> Result<QueryReply, ServeError> {
        proto::write_frame(&mut self.stream, &Frame::Query { uql: uql.into() })?;
        self.collect_rows()
    }

    /// Fetch the server's live stats document for the last `window_s`
    /// seconds. Answered even by a saturated server — Stats bypasses
    /// admission control.
    pub fn stats(&mut self, window_s: u32) -> Result<String, ServeError> {
        proto::write_frame(&mut self.stream, &Frame::Stats { window_s })?;
        match self.read_reply()? {
            Frame::StatsReply { json } => Ok(json),
            Frame::Error { code, message } => Err(ServeError::Server { code, message }),
            _ => Err(ServeError::Unexpected("wanted StatsReply")),
        }
    }

    /// Fetch the slow-query log entry for query `id` (an id previously
    /// reported in a `StatsReply` slow list). `NotFound` means the entry
    /// was evicted or never logged.
    pub fn trace(&mut self, id: u64) -> Result<String, ServeError> {
        proto::write_frame(&mut self.stream, &Frame::Trace { id })?;
        match self.read_reply()? {
            Frame::TraceReply { json } => Ok(json),
            Frame::Error { code, message } => Err(ServeError::Server { code, message }),
            _ => Err(ServeError::Unexpected("wanted TraceReply")),
        }
    }

    /// Send raw bytes as-is — the malformed-input tests' entry point.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Read one frame off the wire (for driving the protocol manually).
    pub fn read_reply(&mut self) -> Result<Frame, ProtoError> {
        proto::read_frame(&mut self.stream, self.max_payload)
    }

    fn collect_rows(&mut self) -> Result<QueryReply, ServeError> {
        let mut rows = Vec::new();
        loop {
            match self.read_reply()? {
                Frame::RowBatch { rows: batch } => rows.extend(batch),
                Frame::Done(done) => return Ok(QueryReply { rows, done }),
                Frame::Error { code, message } => return Err(ServeError::Server { code, message }),
                _ => return Err(ServeError::Unexpected("wanted RowBatch/Done/Error")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(code: ErrorCode) -> ServeError {
        ServeError::Server {
            code,
            message: "x".into(),
        }
    }

    #[test]
    fn overloaded_and_unavailable_always_retry() {
        for code in [ErrorCode::Overloaded, ErrorCode::Unavailable] {
            assert!(server(code).is_retryable(true));
            assert!(server(code).is_retryable(false));
        }
    }

    #[test]
    fn deterministic_server_errors_never_retry() {
        for code in [
            ErrorCode::Parse,
            ErrorCode::Exec,
            ErrorCode::Proto,
            ErrorCode::UnknownStatement,
            ErrorCode::NotFound,
        ] {
            assert!(!server(code).is_retryable(true), "{code:?}");
            assert!(!server(code).is_retryable(false), "{code:?}");
        }
    }

    #[test]
    fn framing_loss_retries_only_idempotent_requests() {
        let losses = [
            ServeError::Proto(ProtoError::Io(std::io::Error::other("boom"))),
            ServeError::Proto(ProtoError::Closed),
            ServeError::Proto(ProtoError::Truncated),
            ServeError::Proto(ProtoError::BadMagic(*b"nope")),
            ServeError::Proto(ProtoError::BadVersion(9)),
            ServeError::Proto(ProtoError::Oversized { len: 9, max: 1 }),
            ServeError::Proto(ProtoError::ReadDeadline),
            ServeError::Proto(ProtoError::BadCrc {
                expected: 1,
                actual: 2,
            }),
        ];
        for e in losses {
            assert!(e.is_retryable(true), "{e}");
            assert!(!e.is_retryable(false), "{e}");
        }
    }

    #[test]
    fn protocol_disagreement_never_retries() {
        let disagreements = [
            ServeError::Proto(ProtoError::UnknownType(0x7f)),
            ServeError::Proto(ProtoError::BadPayload("bad".into())),
            ServeError::Unexpected("wanted Pong"),
        ];
        for e in disagreements {
            assert!(!e.is_retryable(true), "{e}");
            assert!(!e.is_retryable(false), "{e}");
        }
    }
}
