//! Live-introspection battery: Stats/Trace against a running server.
//!
//! - Torture: concurrent Stats pollers riding along a mixed query stream —
//!   every reply parses, counters are monotone across replies, and the
//!   sampled cumulative tally never runs ahead of the live atomic.
//! - Stats under saturation: with the whole admission bound held
//!   externally, Stats still answers (the bypass contract).
//! - Slow-query log: entries appear, Trace returns the full document,
//!   unknown ids get a typed `NotFound`.
//! - Read deadline: a half-written frame header closes the connection
//!   with a typed fatal error, counted in `deadline_closed`.
//! - Client-side fatal/recoverable split: an unknown response tag is
//!   recoverable, truncation is fatal.

use std::io::Write as _;
use std::time::Duration;

use serve::proto::{self, ErrorCode, Frame, ProtoError, HEADER_LEN, MAGIC, VERSION};
use serve::{Client, ServeError, ServeOptions, Server};
use telemetry::json;

fn server_with(options: ServeOptions) -> (uindex::Database, Server) {
    let (schema, classes) = workload::serve::schema();
    let mut db = uindex::Database::with_page_size(schema, 1024, 4096).unwrap();
    workload::serve::populate(&mut db, &classes, 23, 100).unwrap();
    let reader = db.reader();
    let server = Server::start(reader, options).unwrap();
    (db, server)
}

fn fast_sampling() -> ServeOptions {
    ServeOptions {
        workers: 2,
        sample_interval: Duration::from_millis(50),
        ..ServeOptions::default()
    }
}

const UQL: &str = "color: Color = 'Red'";

fn ju64(v: &json::Json, path: &[&str]) -> u64 {
    let mut cur = v;
    for key in path {
        cur = match cur.get(key) {
            Some(x) => x,
            None => return 0,
        };
    }
    cur.as_u64().unwrap_or(0)
}

#[test]
fn concurrent_stats_pollers_with_mixed_queries() {
    let (_db, server) = server_with(fast_sampling());
    let addr = server.local_addr();
    let statements = workload::serve::uql_families();

    std::thread::scope(|scope| {
        // Query stream: 3 clients, 40 mixed requests each.
        let mut workers = Vec::new();
        for t in 0..3usize {
            let statements = statements.clone();
            workers.push(scope.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let prepared: Vec<u64> = statements.iter().map(|s| c.prepare(s).unwrap()).collect();
                for i in 0..40 {
                    let which = (t + i) % statements.len();
                    let reply = if i % 2 == 0 {
                        c.execute(prepared[which]).unwrap()
                    } else {
                        c.query(statements[which]).unwrap()
                    };
                    assert_eq!(reply.done.rows, reply.rows.len() as u64);
                }
            }));
        }
        // Stats pollers: 2 concurrent, hammering without sleeping.
        let mut pollers = Vec::new();
        for _ in 0..2 {
            pollers.push(scope.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let (mut last_cum, mut last_live, mut last_tick) = (0u64, 0u64, 0u64);
                for _ in 0..60 {
                    let doc = c.stats(5).expect("Stats reply");
                    let v = json::parse(&doc).expect("every Stats reply must parse");
                    let cum = ju64(&v, &["cumulative", "queries"]);
                    let live = ju64(&v, &["live", "queries"]);
                    let tick = ju64(&v, &["tick"]);
                    assert!(cum >= last_cum, "cumulative went backwards");
                    assert!(live >= last_live, "live counter went backwards");
                    assert!(tick >= last_tick, "tick went backwards");
                    assert!(cum <= live, "sampled tally ran ahead of live atomic");
                    last_cum = cum;
                    last_live = live;
                    last_tick = tick;
                }
            }));
        }
        for h in workers.into_iter().chain(pollers) {
            h.join().unwrap();
        }
    });

    // Quiesce: within a few sample intervals the cumulative tally
    // converges on the live total exactly.
    let mut c = Client::connect(addr).unwrap();
    let total = 3 * 40u64;
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let v = json::parse(&c.stats(0).unwrap()).unwrap();
        let cum = ju64(&v, &["cumulative", "queries"]);
        let live = ju64(&v, &["live", "queries"]);
        assert_eq!(live, total, "live counter must be exact at quiesce");
        if cum == total {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "sampled tally never converged: {cum} != {total}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(c);
    let report = server.shutdown();
    assert_eq!(report.stats.queries, total);
}

#[test]
fn stats_succeeds_while_gate_is_saturated() {
    let (_db, server) = server_with(ServeOptions {
        workers: 2,
        max_inflight: 2,
        sample_interval: Duration::from_millis(50),
        ..ServeOptions::default()
    });
    let gate = server.gate();
    let held: Vec<_> = (0..2).map(|_| gate.try_admit().unwrap()).collect();

    let mut c = Client::connect(server.local_addr()).unwrap();
    for _ in 0..3 {
        match c.query(UQL) {
            Err(e) if e.is_overloaded() => {}
            other => panic!("saturated server must shed, got {other:?}"),
        }
    }
    // Stats answers on the spot, reporting full occupancy and the sheds.
    let v = json::parse(&c.stats(10).expect("Stats must bypass the gate")).unwrap();
    assert_eq!(ju64(&v, &["live", "inflight"]), 2);
    assert_eq!(ju64(&v, &["live", "shed"]), 3);
    drop(held);
    let reply = c.query(UQL).unwrap();
    assert!(reply.done.rows > 0);
    drop(c);
    server.shutdown();
}

#[test]
fn slow_log_records_and_trace_replays() {
    let (_db, server) = server_with(fast_sampling());
    let mut c = Client::connect(server.local_addr()).unwrap();

    // With the default threshold of 0 every query competes for the log.
    for _ in 0..5 {
        c.query(UQL).unwrap();
    }
    let v = json::parse(&c.stats(10).unwrap()).unwrap();
    let slow = v.get("slow").and_then(|s| s.as_arr()).expect("slow list");
    assert!(!slow.is_empty(), "queries must land in the slow log");

    let id = ju64(&slow[0], &["id"]);
    assert!(id > 0, "query ids are monotonically assigned from 1");
    let trace = c.trace(id).expect("trace of a logged id");
    let t = json::parse(&trace).expect("TraceReply parses");
    assert_eq!(ju64(&t, &["id"]), id);
    assert_eq!(
        t.get("uql").and_then(|u| u.as_str()),
        Some(UQL),
        "entry carries the normalized statement"
    );
    assert!(t.get("scan_stats").is_some());
    assert!(
        t.get("delta").and_then(|d| d.get("histograms")).is_some(),
        "entry carries the per-query registry delta"
    );
    assert!(ju64(&t, &["snapshot_epoch"]) > 0);

    // Unknown id: typed NotFound, connection stays healthy.
    match c.trace(u64::MAX) {
        Err(ServeError::Server { code, .. }) => assert_eq!(code, ErrorCode::NotFound),
        other => panic!("wanted NotFound, got {other:?}"),
    }
    c.ping().unwrap();
    drop(c);
    server.shutdown();
}

#[test]
fn slow_log_threshold_filters_fast_queries() {
    let (_db, server) = server_with(ServeOptions {
        workers: 2,
        slow_query_us: u64::MAX, // nothing is ever this slow
        ..ServeOptions::default()
    });
    let mut c = Client::connect(server.local_addr()).unwrap();
    for _ in 0..5 {
        c.query(UQL).unwrap();
    }
    let v = json::parse(&c.stats(10).unwrap()).unwrap();
    let slow = v.get("slow").and_then(|s| s.as_arr()).expect("slow list");
    assert!(
        slow.is_empty(),
        "under-threshold queries must not be logged"
    );
    drop(c);
    server.shutdown();
}

#[test]
fn half_written_header_hits_the_read_deadline() {
    let (_db, server) = server_with(ServeOptions {
        workers: 1,
        read_deadline: Some(Duration::from_millis(200)),
        ..ServeOptions::default()
    });
    let addr = server.local_addr();

    // An idle connection that never sends a byte is NOT subject to the
    // deadline: it must still answer long after the budget.
    let mut idle = Client::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(400));
    idle.ping()
        .expect("idle connection must survive the deadline");

    // A connection stalling mid-header is closed with a typed error.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.write_all(&MAGIC[..2]).unwrap(); // 2 of 10 header bytes
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    match proto::read_frame(&mut stream, proto::DEFAULT_MAX_PAYLOAD) {
        Ok(Frame::Error { code, message }) => {
            assert_eq!(code, ErrorCode::Proto);
            assert!(
                message.contains("deadline"),
                "error must name the deadline, got {message:?}"
            );
        }
        other => panic!("wanted a typed deadline error, got {other:?}"),
    }
    // ...and then actually closed (fatal, not recoverable).
    match proto::read_frame(&mut stream, proto::DEFAULT_MAX_PAYLOAD) {
        Err(ProtoError::Closed) | Err(ProtoError::Io(_)) => {}
        other => panic!("connection must be closed after the deadline, got {other:?}"),
    }

    // The counter recorded it, and Stats exposes it.
    let v = json::parse(&idle.stats(10).unwrap()).unwrap();
    assert_eq!(ju64(&v, &["live", "deadline_closed"]), 1);
    drop(idle);
    drop(stream);

    let report = server.shutdown();
    assert_eq!(report.stats.deadline_closed, 1);
    assert_eq!(
        report.metrics.counters.get("serve.conn.deadline_closed"),
        Some(&1)
    );
}

#[test]
fn client_splits_fatal_from_recoverable_responses() {
    // A fake "server" speaking raw TCP lets us inject responses the real
    // server would never send.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().unwrap();
        // 1: a well-framed frame with an unknown response tag.
        let mut unknown = Vec::new();
        unknown.extend_from_slice(&MAGIC);
        unknown.push(VERSION);
        unknown.push(0xEE);
        unknown.extend_from_slice(&0u32.to_be_bytes());
        unknown.extend_from_slice(&pagestore::crc32(&[]).to_be_bytes());
        sock.write_all(&unknown).unwrap();
        // 2: a valid Pong — proves the stream stayed usable.
        sock.write_all(&proto::encode_frame(&Frame::Pong)).unwrap();
        // 3: a truncated header, then close — framing is lost for good.
        sock.write_all(&MAGIC[..3]).unwrap();
    });

    let mut client = Client::connect(addr).unwrap();
    client.send_raw(&proto::encode_frame(&Frame::Ping)).unwrap();

    // Unknown response tag: typed, recoverable — the stream is still at
    // a frame boundary and the next frame parses fine.
    let err = ServeError::from(client.read_reply().expect_err("unknown tag must error"));
    assert!(
        !err.is_fatal(),
        "well-framed unknown response must be recoverable: {err}"
    );
    match client.read_reply() {
        Ok(Frame::Pong) => {}
        other => panic!("stream must still be framed after UnknownType, got {other:?}"),
    }

    // Truncation: fatal — the connection cannot be trusted further.
    let err = ServeError::from(
        client
            .read_reply()
            .expect_err("truncated header must error"),
    );
    assert!(err.is_fatal(), "lost framing must be fatal: {err}");
    // Typed server errors stay recoverable; transport errors stay fatal.
    assert!(!ServeError::Server {
        code: ErrorCode::Overloaded,
        message: String::new()
    }
    .is_fatal());
    assert!(ServeError::from(ProtoError::BadMagic(*b"XXXX")).is_fatal());
    fake.join().unwrap();
}

#[test]
fn stats_and_trace_roundtrip_over_live_wire() {
    // Belt-and-braces for the new frames over a real connection: the
    // encode path in the client and the decode path in the server (and
    // back) agree, including multi-kilobyte JSON replies.
    let (_db, server) = server_with(fast_sampling());
    let mut c = Client::connect(server.local_addr()).unwrap();
    for _ in 0..3 {
        c.query(UQL).unwrap();
    }
    let doc = c.stats(60).unwrap();
    assert!(doc.len() > 200, "stats doc should be substantial");
    let v = json::parse(&doc).unwrap();
    assert!(v.get("window").is_some() && v.get("live").is_some());
    // Zero-length header frames still round-trip.
    assert_eq!(HEADER_LEN, 14);
    drop(c);
    server.shutdown();
}
