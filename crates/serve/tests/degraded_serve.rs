//! The live server under storage faults: corruption mid-query degrades
//! the service (right answers from the fallback path, `degraded` flagged
//! on the wire and in Stats) instead of killing workers or connections;
//! exhausted transient I/O on a reader without a fallback maps to a typed
//! retryable `Unavailable`; and a [`serve::RetryClient`] rides straight
//! through it. A clean `check()` on the owning database restores the
//! index path for the running server — no restart.

use std::time::Duration;

use pagestore::Fault;
use serve::{Client, ErrorCode, RetryClient, RetryPolicy, ServeError, ServeOptions, Server};
use uindex::Database;

const SEED: u64 = 42;
const STMT: &str = "color: Color = 'Red'";

type MemDb = Database<uindex::DbStore>;

fn build_db(n_vehicles: usize) -> MemDb {
    let (schema, classes) = workload::serve::schema();
    let mut db = Database::with_page_size(schema, 1024, 1 << 14).unwrap();
    workload::serve::populate(&mut db, &classes, SEED, n_vehicles).unwrap();
    db
}

fn options() -> ServeOptions {
    ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    }
}

/// Flush the pool's cache so the next scan reads through the fault layer.
fn expose_store(db: &MemDb) {
    let pool = db.index().tree().pool();
    pool.flush().unwrap();
    pool.invalidate_cache().unwrap();
}

#[test]
fn corruption_degrades_the_live_service_and_check_heals_it() {
    let mut db = build_db(200);
    let reader = db.reader_with_fallback();
    let server = Server::start(reader, options()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let healthy = client.query(STMT).unwrap();
    assert!(!healthy.rows.is_empty());
    assert!(!healthy.done.degraded);
    assert!(!server.stats().degraded);

    // Silent single-bit damage under the cache: the next scan detects
    // corruption mid-query, on a worker thread.
    expose_store(&db);
    let h = db.fault_handle();
    h.inject(h.ops(), Fault::BitFlip { bit: 6 });

    let degraded = client.query(STMT).unwrap();
    assert!(
        degraded.done.degraded,
        "the answer must be flagged degraded"
    );
    assert_eq!(
        degraded.rows, healthy.rows,
        "degraded answers must match healthy ones byte-for-byte"
    );

    // The quarantine latched (shared flag): subsequent queries stay
    // degraded — and still right — until a clean check.
    let again = client.query(STMT).unwrap();
    assert!(again.done.degraded);
    assert_eq!(again.rows, healthy.rows);

    let stats = server.stats();
    assert!(stats.degraded, "the server must report the quarantine");
    assert!(stats.degraded_answers >= 2);
    let json = client.stats(0).unwrap();
    assert!(
        json.contains("\"degraded\": true"),
        "Stats JSON must surface degraded mode: {json}"
    );

    // The damage was transient (one poisoned read); a clean check lifts
    // the quarantine for the running server — no restart, no reconnect.
    let report = db.check().unwrap();
    assert!(report.clean());
    let healed = client.query(STMT).unwrap();
    assert!(
        !healed.done.degraded,
        "a clean check restores the index path"
    );
    assert_eq!(healed.rows, healthy.rows);
    assert!(!server.stats().degraded);

    let report = server.shutdown();
    assert!(report.stats.degraded_answers >= 2);
    assert_eq!(
        report
            .metrics
            .counters
            .get("serve.worker.panics")
            .copied()
            .unwrap_or(0),
        0,
        "no worker may die under storage faults"
    );
}

#[test]
fn exhausted_io_without_fallback_is_a_typed_unavailable() {
    let mut db = build_db(200);
    let reader = db.reader(); // no fallback source
    let server = Server::start(reader, options()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let healthy = client.query(STMT).unwrap();

    // Three consecutive I/O failures exhaust the pool's bounded retries.
    expose_store(&db);
    let h = db.fault_handle();
    h.inject_burst(h.ops(), 3, Fault::IoError);

    let err = client
        .query(STMT)
        .expect_err("no fallback: the query fails");
    match &err {
        ServeError::Server { code, .. } => assert_eq!(*code, ErrorCode::Unavailable),
        other => panic!("wanted a typed server error, got {other}"),
    }
    assert!(
        err.is_retryable(true),
        "Unavailable must invite the client to retry"
    );
    assert!(!err.is_fatal(), "the connection survives");
    assert!(!db.quarantined(), "transient I/O never quarantines");

    // The burst is consumed; the same connection, same statement, works.
    let recovered = client.query(STMT).unwrap();
    assert_eq!(recovered.rows, healthy.rows);
    assert!(!recovered.done.degraded);
    let report = server.shutdown();
    assert_eq!(report.stats.degraded_answers, 0);
}

#[test]
fn retry_client_rides_through_transient_unavailability() {
    let mut db = build_db(200);
    let server = Server::start(db.reader(), options()).unwrap();
    let mut healthy_client = Client::connect(server.local_addr()).unwrap();
    let healthy = healthy_client.query(STMT).unwrap();

    expose_store(&db);
    let h = db.fault_handle();
    h.inject_burst(h.ops(), 3, Fault::IoError);

    let retries0 = telemetry::counter_value("serve.client.retries");
    let mut client = RetryClient::new(
        server.local_addr().to_string(),
        RetryPolicy {
            base_backoff: Duration::from_millis(1),
            ..RetryPolicy::default()
        },
    );
    let reply = client
        .query(STMT)
        .expect("the retry client must absorb the fault window");
    assert_eq!(reply.rows, healthy.rows);
    assert!(!reply.done.degraded);
    assert!(
        telemetry::counter_value("serve.client.retries") > retries0,
        "success required at least one retry"
    );
    server.shutdown();
}
