//! Wire-protocol battery: encode≡decode round-trips for every frame type
//! under proptest, then a deterministic malformed-input sweep — first
//! against the decoder as a pure function, then against a live server.
//! The contract: garbage in yields a typed error plus either a healthy
//! connection (recoverable) or a clean close (fatal), and never a panic.

use proptest::prelude::*;
use serve::proto::{
    self, DoneInfo, ErrorCode, Frame, ProtoError, WireRow, DEFAULT_MAX_PAYLOAD, HEADER_LEN, MAGIC,
    VERSION,
};
use serve::{Client, ServeOptions, Server};

// ---------------------------------------------------------------------------
// Round-trip property: decode(encode(f)) == f for every frame type
// ---------------------------------------------------------------------------

fn arb_row() -> impl Strategy<Value = WireRow> {
    (
        proptest::collection::vec(any::<u8>(), 0..40),
        proptest::collection::vec(prop_oneof![Just(None), (0u32..1000).prop_map(Some)], 0..5),
    )
        .prop_map(|(key, assignment)| WireRow { key, assignment })
}

fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('a'),
            Just('Z'),
            Just(' '),
            Just('\''),
            Just(':'),
            Just('é'),
            Just('\u{1F600}'),
        ],
        0..30,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        arb_string().prop_map(|uql| Frame::Query { uql }),
        arb_string().prop_map(|uql| Frame::Prepare { uql }),
        any::<u64>().prop_map(|id| Frame::Execute { id }),
        Just(Frame::Ping),
        Just(Frame::Pong),
        any::<u64>().prop_map(|id| Frame::Prepared { id }),
        proptest::collection::vec(arb_row(), 0..8).prop_map(|rows| Frame::RowBatch { rows }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<bool>(),
            any::<bool>()
        )
            .prop_map(
                |(rows, pages_read, entries_examined, seeks, micros, cached_plan, degraded)| {
                    Frame::Done(DoneInfo {
                        rows,
                        pages_read,
                        entries_examined,
                        seeks,
                        micros,
                        cached_plan,
                        degraded,
                    })
                }
            ),
        (
            prop_oneof![
                Just(ErrorCode::Parse),
                Just(ErrorCode::Exec),
                Just(ErrorCode::Overloaded),
                Just(ErrorCode::Proto),
                Just(ErrorCode::UnknownStatement),
                Just(ErrorCode::NotFound),
                Just(ErrorCode::Unavailable),
            ],
            arb_string()
        )
            .prop_map(|(code, message)| Frame::Error { code, message }),
        any::<u32>().prop_map(|window_s| Frame::Stats { window_s }),
        any::<u64>().prop_map(|id| Frame::Trace { id }),
        arb_string().prop_map(|json| Frame::StatsReply { json }),
        arb_string().prop_map(|json| Frame::TraceReply { json }),
    ]
}

proptest! {
    #[test]
    fn frame_roundtrip(frame in arb_frame()) {
        let buf = proto::encode_frame(&frame);
        let (decoded, consumed) = proto::decode_frame(&buf, DEFAULT_MAX_PAYLOAD).unwrap();
        prop_assert_eq!(&decoded, &frame);
        prop_assert_eq!(consumed, buf.len());

        // The streaming reader agrees with the buffer decoder.
        let mut cursor = std::io::Cursor::new(buf.clone());
        let streamed = proto::read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD).unwrap();
        prop_assert_eq!(&streamed, &frame);

        // With trailing bytes appended, exactly one frame is consumed.
        let mut padded = buf.clone();
        padded.extend_from_slice(&[0xAA; 7]);
        let (redecoded, consumed) = proto::decode_frame(&padded, DEFAULT_MAX_PAYLOAD).unwrap();
        prop_assert_eq!(&redecoded, &frame);
        prop_assert_eq!(consumed, buf.len());
    }

    #[test]
    fn truncation_never_panics(frame in arb_frame(), cut in 0usize..64) {
        // Every proper prefix either decodes as Truncated or (if the cut
        // lands beyond the frame) succeeds; no prefix may panic.
        let buf = proto::encode_frame(&frame);
        let cut = cut.min(buf.len().saturating_sub(1));
        match proto::decode_frame(&buf[..cut], DEFAULT_MAX_PAYLOAD) {
            Err(ProtoError::Truncated) => {}
            other => prop_assert!(false, "prefix of len {cut} gave {other:?}"),
        }
    }

    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..80)) {
        // Arbitrary bytes: any typed error is fine, panics are not.
        let _ = proto::decode_frame(&bytes, DEFAULT_MAX_PAYLOAD);
    }
}

// ---------------------------------------------------------------------------
// Deterministic malformed-input sweep: decoder level
// ---------------------------------------------------------------------------

/// A v2 header declaring `len` payload bytes and carrying `crc`. For a
/// zero-length payload the CRC of the empty slice is correct; headers
/// whose declared length is rejected before any payload is read never
/// have their CRC checked, so the empty-slice CRC is fine there too.
fn header(ty: u8, len: u32) -> Vec<u8> {
    let mut h = Vec::with_capacity(HEADER_LEN);
    h.extend_from_slice(&MAGIC);
    h.push(VERSION);
    h.push(ty);
    h.extend_from_slice(&len.to_be_bytes());
    h.extend_from_slice(&pagestore::crc32(&[]).to_be_bytes());
    h
}

/// A complete well-framed v2 frame around a hand-crafted payload: header
/// with the payload's true length and CRC, then the payload bytes.
fn frame_bytes(ty: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(ty);
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(&pagestore::crc32(payload).to_be_bytes());
    buf.extend_from_slice(payload);
    buf
}

#[test]
fn malformed_sweep_decoder() {
    // Bad magic.
    let mut buf = proto::encode_frame(&Frame::Ping);
    buf[0] = b'X';
    assert!(matches!(
        proto::decode_frame(&buf, DEFAULT_MAX_PAYLOAD),
        Err(ProtoError::BadMagic(_))
    ));

    // Bad version.
    let mut buf = proto::encode_frame(&Frame::Ping);
    buf[4] = VERSION + 1;
    assert!(matches!(
        proto::decode_frame(&buf, DEFAULT_MAX_PAYLOAD),
        Err(ProtoError::BadVersion(_))
    ));

    // Oversized declared length: rejected from the header alone, before
    // any payload bytes exist to allocate for.
    let buf = header(0x01, u32::MAX);
    match proto::decode_frame(&buf, DEFAULT_MAX_PAYLOAD) {
        Err(ProtoError::Oversized { len, max }) => {
            assert_eq!(len, u32::MAX);
            assert_eq!(max, DEFAULT_MAX_PAYLOAD);
        }
        other => panic!("oversized prefix gave {other:?}"),
    }

    // Unknown frame type (well-framed): recoverable.
    let buf = header(0x7F, 0);
    match proto::decode_frame(&buf, DEFAULT_MAX_PAYLOAD) {
        Err(e @ ProtoError::UnknownType(0x7F)) => assert!(!e.is_fatal()),
        other => panic!("unknown type gave {other:?}"),
    }

    // Garbage payloads, each well-framed: recoverable BadPayload.
    let cases: Vec<(u8, Vec<u8>)> = vec![
        // Query whose inner string claims more bytes than the payload has.
        (0x01, {
            let mut p = 100u32.to_be_bytes().to_vec();
            p.extend_from_slice(b"abcd");
            p
        }),
        // Query whose string is not UTF-8.
        (0x01, {
            let mut p = 2u32.to_be_bytes().to_vec();
            p.extend_from_slice(&[0xFF, 0xFE]);
            p
        }),
        // Execute with a short id.
        (0x03, vec![1, 2, 3]),
        // Ping with trailing junk.
        (0x04, vec![9]),
        // Done with an out-of-range cached_plan flag.
        (0x82, {
            let mut p = Vec::new();
            for _ in 0..5 {
                p.extend_from_slice(&0u64.to_be_bytes());
            }
            p.push(7);
            p.push(0);
            p
        }),
        // Done with an out-of-range degraded flag.
        (0x82, {
            let mut p = Vec::new();
            for _ in 0..5 {
                p.extend_from_slice(&0u64.to_be_bytes());
            }
            p.push(1);
            p.push(7);
            p
        }),
        // Error frame with an unknown error code.
        (0x83, {
            let mut p = vec![99u8];
            p.extend_from_slice(&0u32.to_be_bytes());
            p
        }),
        // RowBatch whose row count promises more rows than exist.
        (0x81, 1000u32.to_be_bytes().to_vec()),
        // Stats with a short window (u32 needs 4 bytes).
        (0x05, vec![0, 1]),
        // Stats with trailing junk after the window.
        (0x05, vec![0, 0, 0, 1, 0xEE]),
        // Trace with a short id.
        (0x06, vec![1, 2, 3]),
        // StatsReply whose JSON string is not UTF-8.
        (0x86, {
            let mut p = 2u32.to_be_bytes().to_vec();
            p.extend_from_slice(&[0xFF, 0xFE]);
            p
        }),
        // TraceReply whose string claims more bytes than the payload has.
        (0x87, {
            let mut p = 100u32.to_be_bytes().to_vec();
            p.extend_from_slice(b"{}");
            p
        }),
    ];
    for (ty, payload) in cases {
        let buf = frame_bytes(ty, &payload);
        match proto::decode_frame(&buf, DEFAULT_MAX_PAYLOAD) {
            Err(e @ ProtoError::BadPayload(_)) => assert!(!e.is_fatal()),
            other => panic!("garbage payload for type {ty:#x} gave {other:?}"),
        }
    }

    // A bit flipped inside a well-framed payload: typed BadCrc, fatal —
    // corrupted bytes must never decode into a (wrong) frame.
    let mut buf = proto::encode_frame(&Frame::Query {
        uql: "color: Color = 'Red'".into(),
    });
    let target = HEADER_LEN + 6;
    buf[target] ^= 0x10;
    match proto::decode_frame(&buf, DEFAULT_MAX_PAYLOAD) {
        Err(e @ ProtoError::BadCrc { .. }) => assert!(e.is_fatal()),
        other => panic!("corrupted payload gave {other:?}"),
    }
    // The streaming reader agrees.
    let mut cursor = std::io::Cursor::new(buf);
    match proto::read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD) {
        Err(ProtoError::BadCrc { .. }) => {}
        other => panic!("corrupted payload streamed gave {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Deterministic malformed-input sweep: live server
// ---------------------------------------------------------------------------

fn tiny_server() -> (uindex::Database, Server) {
    let (schema, classes) = workload::serve::schema();
    let mut db = uindex::Database::with_page_size(schema, 1024, 4096).unwrap();
    workload::serve::populate(&mut db, &classes, 7, 60).unwrap();
    let reader = db.reader();
    let server = Server::start(
        reader,
        ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    (db, server)
}

const VALID_UQL: &str = "color: Color = 'Red'";

fn expect_proto_error(client: &mut Client) {
    match client.read_reply().unwrap() {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::Proto),
        other => panic!("wanted a Proto error frame, got {other:?}"),
    }
}

fn expect_clean_close(client: &mut Client) {
    match client.read_reply() {
        Err(ProtoError::Closed) => {}
        // The server closing can also surface as a reset, depending on
        // timing; either way no further frames arrive.
        Err(ProtoError::Io(_)) => {}
        other => panic!("connection should be closed, got {other:?}"),
    }
}

#[test]
fn malformed_sweep_live_server() {
    let (_db, server) = tiny_server();
    let addr = server.local_addr();

    // Fatal: bad magic. Typed error, then clean close.
    let mut c = Client::connect(addr).unwrap();
    c.send_raw(b"JUNKJUNKJUNKJUNK").unwrap();
    expect_proto_error(&mut c);
    expect_clean_close(&mut c);

    // Fatal: bad version.
    let mut c = Client::connect(addr).unwrap();
    let mut buf = proto::encode_frame(&Frame::Ping);
    buf[4] = 9;
    c.send_raw(&buf).unwrap();
    expect_proto_error(&mut c);
    expect_clean_close(&mut c);

    // Fatal: oversized length prefix — rejected before the server reads
    // (or allocates) a single payload byte.
    let mut c = Client::connect(addr).unwrap();
    c.send_raw(&header(0x01, u32::MAX)).unwrap();
    expect_proto_error(&mut c);
    expect_clean_close(&mut c);

    // Recoverable: unknown frame type. Typed error, connection healthy —
    // the same connection then answers a real query.
    let mut c = Client::connect(addr).unwrap();
    c.send_raw(&header(0x7F, 0)).unwrap();
    expect_proto_error(&mut c);
    let reply = c.query(VALID_UQL).unwrap();
    assert!(reply.done.rows == reply.rows.len() as u64);

    // Recoverable: garbage payload inside a valid frame.
    let mut c = Client::connect(addr).unwrap();
    c.send_raw(&frame_bytes(0x01, &100u32.to_be_bytes()))
        .unwrap();
    expect_proto_error(&mut c);
    c.ping().unwrap();

    // Fatal: a payload bit flipped in transit. Typed error, clean close —
    // the server must never decode (let alone execute) the damaged frame.
    let mut c = Client::connect(addr).unwrap();
    let mut buf = proto::encode_frame(&Frame::Query {
        uql: VALID_UQL.into(),
    });
    buf[HEADER_LEN + 6] ^= 0x10;
    c.send_raw(&buf).unwrap();
    expect_proto_error(&mut c);
    expect_clean_close(&mut c);

    // Recoverable: a client sending response-typed frames.
    let mut c = Client::connect(addr).unwrap();
    c.send_raw(&proto::encode_frame(&Frame::Pong)).unwrap();
    expect_proto_error(&mut c);
    c.ping().unwrap();

    // Truncated frame then abrupt close: the server must not leak the
    // connection or wedge — it keeps serving new clients.
    {
        let mut c = Client::connect(addr).unwrap();
        let buf = proto::encode_frame(&Frame::Query {
            uql: VALID_UQL.into(),
        });
        c.send_raw(&buf[..buf.len() - 3]).unwrap();
    } // dropped: TCP close mid-frame

    // After the whole sweep the server still answers correctly.
    let mut c = Client::connect(addr).unwrap();
    let reply = c.query(VALID_UQL).unwrap();
    assert_eq!(reply.done.rows, reply.rows.len() as u64);
    drop(c);

    let report = server.shutdown();
    assert!(
        report.stats.proto_errors >= 6,
        "sweep recorded {} proto errors",
        report.stats.proto_errors
    );
    // Quiescent: nothing in flight after shutdown.
    assert_eq!(report.stats.shed, 0);
}

// ---------------------------------------------------------------------------
// UQL-level errors are typed, not protocol errors
// ---------------------------------------------------------------------------

#[test]
fn parse_and_statement_errors_are_typed() {
    let (_db, server) = tiny_server();
    let mut c = Client::connect(server.local_addr()).unwrap();

    match c.query("nonsense ,,, query") {
        Err(serve::ServeError::Server { code, .. }) => assert_eq!(code, ErrorCode::Parse),
        other => panic!("wanted Parse error, got {other:?}"),
    }
    // The connection survives a parse error.
    match c.execute(123456) {
        Err(serve::ServeError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::UnknownStatement)
        }
        other => panic!("wanted UnknownStatement, got {other:?}"),
    }
    let reply = c.query(VALID_UQL).unwrap();
    assert_eq!(reply.done.rows, reply.rows.len() as u64);
    drop(c);
    server.shutdown();
}
