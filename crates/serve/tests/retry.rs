//! [`serve::RetryClient`] against real and scripted servers: transparent
//! reconnect after connection loss, re-`Prepare` before any `Execute`
//! retry, bounded give-up on sustained overload, and deadline-bounded
//! retry budgets. Stub servers are scripted with [`serve::proto`]
//! directly so each fault is injected at an exact protocol step.

use std::net::TcpListener;
use std::time::Duration;

use proptest::prelude::*;
use serve::proto::{self, DoneInfo, Frame, DEFAULT_MAX_PAYLOAD};
use serve::{RetryClient, RetryPolicy, ServeOptions, Server};

proptest! {
    /// The backoff sequence, for any (seed, base, cap): deterministic per
    /// seed, monotone non-decreasing, never above the cap, and bounded by
    /// the attempt budget (the policy yields exactly `max_attempts - 1`
    /// sleeps; past the cap every sleep equals the cap).
    #[test]
    fn backoff_sequence_properties(
        seed in any::<u64>(),
        base_ms in 1u64..50,
        cap_ms in 1u64..2000,
    ) {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(base_ms),
            max_backoff: Duration::from_millis(cap_ms),
            jitter_seed: seed,
            ..RetryPolicy::default()
        };
        let same = p.clone();
        let other = RetryPolicy { jitter_seed: seed ^ 1, ..p.clone() };
        let mut prev = Duration::ZERO;
        let mut diverged = false;
        for n in 1..=24u32 {
            let b = p.backoff(n);
            prop_assert_eq!(b, same.backoff(n), "same seed, same sleep");
            prop_assert!(b >= prev, "retry {}: {:?} < {:?}", n, b, prev);
            prop_assert!(b <= p.max_backoff);
            diverged |= b != other.backoff(n) || b == p.max_backoff;
            prev = b;
        }
        // Either the jitter streams diverged somewhere, or the whole
        // sequence saturated at the cap (where jitter cannot show).
        prop_assert!(diverged);
        // Exponential growth saturates: far past the doublings that fit
        // under any cap, the sleep is exactly the cap.
        prop_assert_eq!(p.backoff(64), p.max_backoff);
    }
}

const STMT: &str = "color: Color = 'Red'";

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        ..RetryPolicy::default()
    }
}

fn empty_done() -> DoneInfo {
    DoneInfo {
        rows: 0,
        pages_read: 0,
        entries_examined: 0,
        seeks: 0,
        micros: 1,
        cached_plan: false,
        degraded: false,
    }
}

#[test]
fn ping_reconnects_after_connection_drop() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stub = std::thread::spawn(move || {
        // Connection 1: accept and slam the door before any reply.
        let (c1, _) = listener.accept().unwrap();
        drop(c1);
        // Connection 2: behave.
        let (mut c2, _) = listener.accept().unwrap();
        let frame = proto::read_frame(&mut c2, DEFAULT_MAX_PAYLOAD).unwrap();
        assert!(matches!(frame, Frame::Ping), "got {frame:?}");
        proto::write_frame(&mut c2, &Frame::Pong).unwrap();
    });

    let retries0 = telemetry::counter_value("serve.client.retries");
    let reconnects0 = telemetry::counter_value("serve.client.reconnects");
    let mut client = RetryClient::new(addr.to_string(), fast_policy());
    client
        .ping()
        .expect("retry must ride through the dropped connection");
    assert_eq!(
        telemetry::counter_value("serve.client.reconnects"),
        reconnects0 + 1,
        "exactly one reconnect"
    );
    assert_eq!(
        telemetry::counter_value("serve.client.retries"),
        retries0 + 1,
        "exactly one retry sleep"
    );
    stub.join().unwrap();
}

#[test]
fn execute_reprepares_on_fresh_connection() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stub = std::thread::spawn(move || {
        // Connection 1: serve one prepare + execute, then die mid-request.
        let (mut c1, _) = listener.accept().unwrap();
        match proto::read_frame(&mut c1, DEFAULT_MAX_PAYLOAD).unwrap() {
            Frame::Prepare { uql } => assert_eq!(uql, STMT),
            other => panic!("wanted Prepare, got {other:?}"),
        }
        proto::write_frame(&mut c1, &Frame::Prepared { id: 7 }).unwrap();
        match proto::read_frame(&mut c1, DEFAULT_MAX_PAYLOAD).unwrap() {
            Frame::Execute { id } => assert_eq!(id, 7),
            other => panic!("wanted Execute, got {other:?}"),
        }
        proto::write_frame(&mut c1, &Frame::Done(empty_done())).unwrap();
        // The second Execute arrives here; drop without answering.
        let _ = proto::read_frame(&mut c1, DEFAULT_MAX_PAYLOAD);
        drop(c1);

        // Connection 2: the client must NOT replay Execute{7} — statement
        // ids died with the stream, so a fresh Prepare must come first.
        let (mut c2, _) = listener.accept().unwrap();
        match proto::read_frame(&mut c2, DEFAULT_MAX_PAYLOAD).unwrap() {
            Frame::Prepare { uql } => assert_eq!(uql, STMT),
            other => panic!("execute retried without re-prepare: {other:?}"),
        }
        proto::write_frame(&mut c2, &Frame::Prepared { id: 42 }).unwrap();
        match proto::read_frame(&mut c2, DEFAULT_MAX_PAYLOAD).unwrap() {
            Frame::Execute { id } => assert_eq!(id, 42, "stale statement id replayed"),
            other => panic!("wanted Execute, got {other:?}"),
        }
        proto::write_frame(&mut c2, &Frame::Done(empty_done())).unwrap();
    });

    let mut client = RetryClient::new(addr.to_string(), fast_policy());
    let stmt = client.prepare(STMT);
    client.execute(stmt).expect("first execute");
    client
        .execute(stmt)
        .expect("second execute must reconnect and re-prepare");
    stub.join().unwrap();
}

#[test]
fn read_timeout_unwedges_a_swallowed_reply() {
    // Connection 1 reads the request and never answers — the shape a
    // corrupted length header leaves the wire in. Without a read
    // timeout the client would block forever.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stub = std::thread::spawn(move || {
        let (mut c1, _) = listener.accept().unwrap();
        let _ = proto::read_frame(&mut c1, DEFAULT_MAX_PAYLOAD).unwrap();
        // Hold the connection open, silently, until the client gives up
        // on it; the accept below only happens after its timeout fires.
        let (mut c2, _) = listener.accept().unwrap();
        drop(c1);
        let frame = proto::read_frame(&mut c2, DEFAULT_MAX_PAYLOAD).unwrap();
        assert!(matches!(frame, Frame::Ping), "got {frame:?}");
        proto::write_frame(&mut c2, &Frame::Pong).unwrap();
    });

    let mut client = RetryClient::new(
        addr.to_string(),
        RetryPolicy {
            read_timeout: Some(Duration::from_millis(50)),
            ..fast_policy()
        },
    );
    let started = std::time::Instant::now();
    client.ping().expect("the timeout must unwedge the request");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the client must not have blocked unboundedly"
    );
    stub.join().unwrap();
}

/// A tiny real server for the overload tests.
fn overloadable_server() -> (Server, String) {
    let (schema, classes) = workload::serve::schema();
    let mut db = uindex::Database::with_page_size(schema, 1024, 1 << 14).unwrap();
    workload::serve::populate(&mut db, &classes, 42, 50).unwrap();
    let server = Server::start(
        db.reader(),
        ServeOptions {
            workers: 1,
            max_inflight: 1,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    (server, addr)
}

#[test]
fn bounded_retries_give_up_on_sustained_overload_then_recover() {
    let (server, addr) = overloadable_server();
    // Occupy the only admission slot from outside: every query sheds.
    let gate = server.gate();
    let permit = gate.try_admit().unwrap();

    let gaveup0 = telemetry::counter_value("serve.client.gaveup");
    let retries0 = telemetry::counter_value("serve.client.retries");
    let mut client = RetryClient::new(
        addr,
        RetryPolicy {
            max_attempts: 2,
            ..fast_policy()
        },
    );
    let err = client.query(STMT).expect_err("saturated server must shed");
    assert!(err.is_overloaded(), "got {err}");
    assert_eq!(telemetry::counter_value("serve.client.gaveup"), gaveup0 + 1);
    assert_eq!(
        telemetry::counter_value("serve.client.retries"),
        retries0 + 1,
        "max_attempts = 2 permits exactly one retry"
    );

    // Load lifts; the same client (same connection) succeeds.
    drop(permit);
    let reply = client.query(STMT).expect("post-overload query");
    assert!(!reply.rows.is_empty());
    server.shutdown();
}

#[test]
fn deadline_bounds_the_retry_budget() {
    let (server, addr) = overloadable_server();
    let gate = server.gate();
    let _permit = gate.try_admit().unwrap();

    let gaveup0 = telemetry::counter_value("serve.client.gaveup");
    let mut client = RetryClient::new(
        addr,
        RetryPolicy {
            max_attempts: 1000,
            deadline: Some(Duration::ZERO),
            ..fast_policy()
        },
    );
    let err = client.query(STMT).expect_err("deadline must cut retries");
    assert!(err.is_overloaded());
    assert_eq!(
        telemetry::counter_value("serve.client.gaveup"),
        gaveup0 + 1,
        "giving up on deadline is counted"
    );
    server.shutdown();
}
