//! Serving-layer torture: N client threads hammer a live server over real
//! TCP on both store tiers. Every response is compared byte-for-byte
//! against an in-process differential oracle (the same query run through
//! a [`uindex::DatabaseReader`] and encoded with the same
//! [`serve::WireRow`] conversion). Abrupt disconnects mid-response must
//! leak no admission slot and no worker; after shutdown the server is
//! quiescent — zero in flight — and its merged telemetry is in lockstep
//! with the lifetime counters.

use std::collections::HashMap;
use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::{Client, ServeOptions, Server, WireRow};
use uindex::{Database, DatabaseReader, DiskDatabase, DiskOptions};

const SEED: u64 = 0xC0FFEE;
const N_VEHICLES: usize = 300;
const CLIENTS: usize = 6;
const REQUESTS_PER_CLIENT: usize = 40;

/// The oracle: every statement's expected wire rows, computed in-process
/// through the identical encode path the server uses.
fn oracle<P: pagestore::PageStore>(reader: &DatabaseReader<P>) -> HashMap<String, Vec<WireRow>> {
    workload::serve::uql_families()
        .into_iter()
        .map(|stmt| {
            let q = reader.parse_uql(stmt).unwrap();
            let (hits, _) = reader.query(&q).unwrap();
            let rows = hits.iter().map(|h| WireRow::from_hit(h).unwrap()).collect();
            (stmt.to_string(), rows)
        })
        .collect()
}

/// Drive one server with CLIENTS threads of mixed prepared/direct
/// requests plus abrupt disconnections; verify every response against
/// the oracle; return the post-shutdown report for lockstep checks.
fn torture<P: pagestore::PageStore + Send + Sync + 'static>(
    reader: DatabaseReader<P>,
    expected: &HashMap<String, Vec<WireRow>>,
) {
    let server = Server::start(
        reader,
        ServeOptions {
            workers: 3,
            max_inflight: 16,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let statements = workload::serve::uql_families();

    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            let statements = statements.clone();
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(SEED ^ (t as u64).wrapping_mul(0x9E37));
                let mut client = Client::connect(addr).unwrap();
                // Each client prepares every statement once, up front.
                let prepared: Vec<u64> = statements
                    .iter()
                    .map(|s| client.prepare(s).unwrap())
                    .collect();
                for i in 0..REQUESTS_PER_CLIENT {
                    let which = rng.gen_range(0..statements.len());
                    let stmt = statements[which];
                    let reply = if rng.gen_range(0..2) == 0 {
                        client.execute(prepared[which])
                    } else {
                        client.query(stmt)
                    };
                    match reply {
                        Ok(reply) => {
                            assert_eq!(reply.done.rows, reply.rows.len() as u64);
                            assert_eq!(
                                reply.rows, expected[stmt],
                                "client {t} request {i}: response diverged from oracle \
                                 for `{stmt}`"
                            );
                        }
                        Err(e) if e.is_overloaded() => {
                            // Legitimate shed under burst; the stream carries
                            // on and later requests still verify.
                        }
                        Err(e) => panic!("client {t} request {i} failed: {e}"),
                    }
                    // Occasionally vanish mid-conversation (~1 in 10): send
                    // a query, read nothing, drop the socket cold. The
                    // server must absorb it without leaking a worker or an
                    // admission slot.
                    if rng.gen_range(0..10) == 0 {
                        let _ =
                            client.send_raw(&serve::proto::encode_frame(&serve::Frame::Query {
                                uql: stmt.to_string(),
                            }));
                        drop(client);
                        // Reconnect; prepared ids survive the reconnect
                        // because the plan cache is server-wide.
                        client = Client::connect(addr).unwrap();
                    }
                }
            });
        }
    });

    // All clients are gone. Drain: in-flight must hit zero (workers may
    // still be finishing queries abandoned by disconnectors).
    let mut waited = 0;
    while server.inflight() > 0 && waited < 200 {
        std::thread::sleep(std::time::Duration::from_millis(10));
        waited += 1;
    }
    assert_eq!(server.inflight(), 0, "admission slots leaked");

    let report = server.shutdown();
    assert_eq!(
        report.stats.connections,
        report
            .metrics
            .counters
            .get("serve.connections")
            .copied()
            .unwrap_or(0),
        "connection telemetry out of lockstep"
    );
    assert_eq!(
        report.stats.requests,
        report
            .metrics
            .counters
            .get("serve.requests")
            .copied()
            .unwrap_or(0),
        "request telemetry out of lockstep"
    );
    assert_eq!(
        report.stats.shed,
        report
            .metrics
            .counters
            .get("serve.shed")
            .copied()
            .unwrap_or(0),
        "shed telemetry out of lockstep"
    );
    assert_eq!(
        report.stats.queries,
        report
            .metrics
            .counters
            .get("serve.queries")
            .copied()
            .unwrap_or(0),
        "query telemetry out of lockstep"
    );
    // Every admitted query executed; every request was a prepare, a ping,
    // a query, an execute, or was shed.
    let hist = report
        .metrics
        .histograms
        .get("serve.query_us")
        .expect("query latency histogram must exist");
    assert_eq!(hist.count, report.stats.queries);
    assert!(
        report.stats.plan_cache_hits > 0,
        "repeated statements must hit the plan cache"
    );
}

#[test]
fn torture_memory_tier() {
    let (schema, classes) = workload::serve::schema();
    let mut db = Database::with_page_size(schema, 1024, 1 << 14).unwrap();
    workload::serve::populate(&mut db, &classes, SEED, N_VEHICLES).unwrap();
    let reader = db.reader();
    let expected = oracle(&reader);
    assert!(
        expected.values().any(|rows| !rows.is_empty()),
        "oracle must produce non-empty answers"
    );
    torture(reader, &expected);
}

#[test]
fn torture_disk_tier_matches_memory_oracle() {
    // Build the same logical database on the durable tier...
    let mut dir: PathBuf = std::env::temp_dir();
    dir.push(format!("uindex_serve_torture_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let (schema, classes) = workload::serve::schema();
    let options = DiskOptions {
        page_size: 1024,
        pool_pages: 4096,
        group_commit: 4,
        checkpoint_every: 4,
        ..DiskOptions::default()
    };
    let mut disk = DiskDatabase::create(schema, &dir, options).unwrap();
    workload::serve::populate(&mut disk, &classes, SEED, N_VEHICLES).unwrap();
    disk.commit().unwrap();

    // ...and demand bit-identical answers to the in-memory tier.
    let (schema, classes) = workload::serve::schema();
    let mut mem = Database::with_page_size(schema, 1024, 1 << 14).unwrap();
    workload::serve::populate(&mut mem, &classes, SEED, N_VEHICLES).unwrap();
    let mem_expected = oracle(&mem.reader());

    let reader = disk.reader();
    let disk_expected = oracle(&reader);
    assert_eq!(
        mem_expected, disk_expected,
        "store tiers disagree on oracle answers"
    );

    torture(reader, &disk_expected);

    drop(disk);
    std::fs::remove_dir_all(&dir).ok();
}
