//! Admission-control battery: the gate as a unit, then against a live
//! server — saturate the bound and every excess request must get a typed
//! `Overloaded`, the `serve.shed` telemetry must match the gate's count,
//! accepted queries must be unaffected, and a shed request must never
//! touch the buffer pool.

use serve::{AdmissionGate, Client, ServeOptions, Server};

// ---------------------------------------------------------------------------
// Gate unit tests
// ---------------------------------------------------------------------------

#[test]
fn gate_admits_up_to_limit_and_sheds_excess() {
    let gate = AdmissionGate::new(3);
    let p1 = gate.try_admit().unwrap();
    let p2 = gate.try_admit().unwrap();
    let p3 = gate.try_admit().unwrap();
    assert_eq!(gate.inflight(), 3);

    // Saturated: every further attempt sheds and is counted.
    for _ in 0..5 {
        assert!(gate.try_admit().is_none());
    }
    assert_eq!(gate.shed(), 5);
    assert_eq!(gate.admitted(), 3);

    // Releasing one slot re-opens exactly one admission.
    drop(p2);
    assert_eq!(gate.inflight(), 2);
    let p4 = gate.try_admit().unwrap();
    assert!(gate.try_admit().is_none());
    assert_eq!(gate.shed(), 6);

    drop(p1);
    drop(p3);
    drop(p4);
    assert_eq!(gate.inflight(), 0);
    assert_eq!(gate.admitted(), 4);
}

#[test]
fn zero_limit_gate_sheds_everything() {
    let gate = AdmissionGate::new(0);
    for _ in 0..10 {
        assert!(gate.try_admit().is_none());
    }
    assert_eq!(gate.shed(), 10);
    assert_eq!(gate.admitted(), 0);
    assert_eq!(gate.inflight(), 0);
}

#[test]
fn gate_is_exact_under_contention() {
    let gate = AdmissionGate::new(8);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let gate = &gate;
            scope.spawn(move || {
                for _ in 0..500 {
                    if let Some(permit) = gate.try_admit() {
                        assert!(gate.inflight() <= 8, "bound exceeded");
                        drop(permit);
                    }
                }
            });
        }
    });
    assert_eq!(gate.inflight(), 0);
    assert_eq!(gate.admitted() + gate.shed(), 2000);
}

// ---------------------------------------------------------------------------
// Live server
// ---------------------------------------------------------------------------

fn server_with(options: ServeOptions) -> (uindex::Database, Server) {
    let (schema, classes) = workload::serve::schema();
    let mut db = uindex::Database::with_page_size(schema, 1024, 4096).unwrap();
    workload::serve::populate(&mut db, &classes, 11, 80).unwrap();
    let reader = db.reader();
    let server = Server::start(reader, options).unwrap();
    (db, server)
}

const UQL: &str = "color: Color = 'Red'";

#[test]
fn saturated_gate_sheds_with_typed_overloaded() {
    let (_db, server) = server_with(ServeOptions {
        workers: 2,
        max_inflight: 2,
        ..ServeOptions::default()
    });
    let mut c = Client::connect(server.local_addr()).unwrap();

    // Occupy the whole bound externally: the next query requests are
    // deterministically shed, with no timing games.
    let gate = server.gate();
    let held: Vec<_> = (0..2).map(|_| gate.try_admit().unwrap()).collect();

    for i in 0..4 {
        match c.query(UQL) {
            Err(e) if e.is_overloaded() => {}
            other => panic!("request {i} should be shed, got {other:?}"),
        }
    }
    assert_eq!(server.stats().shed, 4);

    // Release the bound: the very same connection's queries now succeed,
    // completely unaffected by the earlier shedding.
    drop(held);
    let reply = c.query(UQL).unwrap();
    assert_eq!(reply.done.rows, reply.rows.len() as u64);
    assert!(reply.done.rows > 0, "Red vehicles must exist");
    drop(c);

    let report = server.shutdown();
    assert_eq!(report.stats.shed, 4);
    // Telemetry lockstep: the merged `serve.shed` counter equals the
    // gate's count exactly.
    assert_eq!(report.metrics.counters.get("serve.shed"), Some(&4));
    assert_eq!(report.stats.queries, 1);
}

#[test]
fn shed_requests_never_touch_the_buffer_pool() {
    let (db, server) = server_with(ServeOptions {
        workers: 2,
        max_inflight: 0, // shed everything: a drain/maintenance gate
        ..ServeOptions::default()
    });
    let mut c = Client::connect(server.local_addr()).unwrap();

    // Warm the plan cache so later sheds don't even parse fresh text.
    match c.query(UQL) {
        Err(e) if e.is_overloaded() => {}
        other => panic!("zero-bound server must shed, got {other:?}"),
    }

    let before = db.index().tree().pool().stats();
    let live_before = db.index().tree().pool().live_pages();
    for _ in 0..25 {
        match c.query(UQL) {
            Err(e) if e.is_overloaded() => {}
            other => panic!("zero-bound server must shed, got {other:?}"),
        }
    }

    // The saturated server must still answer Stats — the introspection
    // path bypasses the admission gate entirely — and the reply must
    // carry the correct shed count.
    let doc = c.stats(10).expect("Stats must succeed at max_inflight = 0");
    let v = telemetry::json::parse(&doc).expect("StatsReply parses");
    let shed = v
        .get("live")
        .and_then(|l| l.get("shed"))
        .and_then(|s| s.as_u64());
    assert_eq!(shed, Some(26), "Stats must report the sheds so far");
    assert_eq!(
        v.get("live")
            .and_then(|l| l.get("max_inflight"))
            .and_then(|m| m.as_u64()),
        Some(0)
    );

    let after = db.index().tree().pool().stats();

    // The shed path stops at the gate — and the Stats path never leaves
    // the connection thread: no fetches, no IO, no allocation in the
    // page layer from either.
    assert_eq!(before.logical_fetches, after.logical_fetches);
    assert_eq!(before.physical_reads, after.physical_reads);
    assert_eq!(before.physical_writes, after.physical_writes);
    assert_eq!(before.allocations, after.allocations);
    assert_eq!(live_before, db.index().tree().pool().live_pages());
    drop(c);

    let report = server.shutdown();
    assert_eq!(report.stats.shed, 26);
    assert_eq!(report.metrics.counters.get("serve.shed"), Some(&26));
    assert_eq!(report.stats.queries, 0, "nothing may reach the workers");
    assert_eq!(report.stats.rows_sent, 0);
}
