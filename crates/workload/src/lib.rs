//! Workload and database generators for the paper's two experiments.
//!
//! * [`vehicle`] — Experiment 1 (Table 1): the Figure-1 schema extended
//!   with the nine §5 classes, 12,000 randomly generated vehicles, a small
//!   company/employee population, and the two indexes the twenty queries
//!   run against.
//! * [`uniform`] — Experiment 2 (Figures 5–8): 150,000 objects uniformly
//!   distributed over an 8- or 40-class hierarchy with 100 / 1,000 /
//!   150,000 distinct 8-byte keys, plus [`uniform::UIndexSet`], the adapter
//!   that exposes a real U-index through the same [`baselines::SetIndex`]
//!   interface the CG-tree implements.
//! * [`queries`] — queried-set selection (*near* = adjacent in the class
//!   hierarchy, *non-near* = dispersed) and range-query generation over a
//!   fraction of the keyspace.
//!
//! All generators take explicit seeds; the experiments are deterministic.

pub mod queries;
pub mod serve;
pub mod uniform;
pub mod vehicle;
