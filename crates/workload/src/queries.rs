//! Query generation for experiment 2: near / non-near set selection and
//! range queries over a fraction of the keyspace.

use baselines::SetId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::uniform::key_bytes;

/// `k` sets **adjacent** in the class hierarchy (a random contiguous window
/// of set ids), sorted. This is the paper's "near" case.
pub fn pick_near(rng: &mut StdRng, num_sets: u16, k: u16) -> Vec<SetId> {
    assert!(k >= 1 && k <= num_sets);
    let start = rng.gen_range(0..=(num_sets - k));
    (start..start + k).map(SetId).collect()
}

/// `k` sets **dispersed** in the class hierarchy, sorted: no two chosen
/// sets are adjacent when possible (the paper notes 10 of 40 can be
/// distant, 30 of 40 cannot). Falls back to a plain random sample when
/// `2k - 1 > num_sets`.
pub fn pick_distant(rng: &mut StdRng, num_sets: u16, k: u16) -> Vec<SetId> {
    assert!(k >= 1 && k <= num_sets);
    if 2 * k > num_sets + 1 {
        let mut all: Vec<u16> = (0..num_sets).collect();
        all.shuffle(rng);
        let mut picked: Vec<SetId> = all[..k as usize].iter().map(|&s| SetId(s)).collect();
        picked.sort();
        return picked;
    }
    // Choose k of the (num_sets - k + 1) "slots" and spread them: the i-th
    // chosen slot s_i maps to set s_i + i, guaranteeing a gap of >= 2.
    let slots = num_sets - k + 1;
    let mut chosen: Vec<u16> = (0..slots).collect();
    chosen.shuffle(rng);
    let mut chosen: Vec<u16> = chosen[..k as usize].to_vec();
    chosen.sort_unstable();
    chosen
        .into_iter()
        .enumerate()
        .map(|(i, s)| SetId(s + i as u16))
        .collect()
}

/// A random range covering `fraction` of a keyspace of `key_space` distinct
/// ordinals: returns `[lo, hi)` key bytes.
pub fn pick_range(rng: &mut StdRng, key_space: u32, fraction: f64) -> (Vec<u8>, Vec<u8>) {
    let width = ((key_space as f64 * fraction).round() as u32).max(1);
    let start = rng.gen_range(0..=(key_space - width));
    (key_bytes(start), key_bytes(start + width))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn near_sets_are_contiguous() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let sets = pick_near(&mut rng, 40, 10);
            assert_eq!(sets.len(), 10);
            for w in sets.windows(2) {
                assert_eq!(w[1].0, w[0].0 + 1);
            }
        }
    }

    #[test]
    fn distant_sets_have_gaps() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let sets = pick_distant(&mut rng, 40, 10);
            assert_eq!(sets.len(), 10);
            for w in sets.windows(2) {
                assert!(w[1].0 >= w[0].0 + 2, "adjacent sets in distant pick");
            }
            assert!(sets.last().unwrap().0 < 40);
        }
    }

    #[test]
    fn distant_falls_back_when_impossible() {
        let mut rng = StdRng::seed_from_u64(5);
        let sets = pick_distant(&mut rng, 40, 30);
        assert_eq!(sets.len(), 30);
        let mut dedup = sets.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 30, "distinct sets");
    }

    #[test]
    fn ranges_cover_requested_fraction() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            let (lo, hi) = pick_range(&mut rng, 1000, 0.10);
            assert!(lo < hi);
            let lo_v = u32::from_str_radix(std::str::from_utf8(&lo).unwrap(), 16).unwrap();
            let hi_v = u32::from_str_radix(std::str::from_utf8(&hi).unwrap(), 16).unwrap();
            assert_eq!(hi_v - lo_v, 100);
            assert!(hi_v <= 1000);
        }
    }

    #[test]
    fn single_set_picks() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(pick_near(&mut rng, 8, 1).len(), 1);
        assert_eq!(pick_distant(&mut rng, 8, 1).len(), 1);
        assert_eq!(pick_near(&mut rng, 8, 8).len(), 8);
    }
}
