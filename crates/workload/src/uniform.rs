//! Experiment 2 data: 150,000 objects uniform over 8 or 40 classes, with
//! 100 / 1,000 / 150,000 distinct 8-byte keys — plus the U-index adapter
//! that speaks the same [`SetIndex`] interface as the baselines.

use baselines::{QueryCost, SetId, SetIndex};
use btree::BTreeConfig;
use objstore::{Oid, Value};
use pagestore::{BufferPool, MemStore, PageId, PageStore, Result as PageResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use schema::{ClassId, Encoding, Schema};
use uindex::{
    ClassSel, EntryKey, IndexId, IndexSpec, PathElem, Query, ScanAlgorithm, ScanStats, UIndex,
    ValuePred,
};

/// Key cardinality of a generated database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyCount {
    /// Every object has a distinct key ("unique keys").
    Unique,
    /// Keys drawn uniformly from this many distinct values.
    Distinct(u32),
}

/// Parameters of an experiment-2 database.
#[derive(Debug, Clone, Copy)]
pub struct UniformConfig {
    /// Total objects (the paper uses 150,000).
    pub num_objects: u32,
    /// Number of classes / sets (8 or 40).
    pub num_sets: u16,
    /// Key cardinality.
    pub keys: KeyCount,
    /// RNG seed.
    pub seed: u64,
}

/// An 8-byte, order-preserving ASCII key (hex of the key ordinal), matching
/// the paper's 8-byte key size while staying printable for every structure.
pub fn key_bytes(v: u32) -> Vec<u8> {
    format!("{v:08x}").into_bytes()
}

/// Generate the posting list `(key, set, oid)` for a configuration.
/// Objects are distributed uniformly over the sets; keys per [`KeyCount`].
pub fn generate_postings(config: &UniformConfig) -> Vec<(Vec<u8>, SetId, Oid)> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(config.num_objects as usize);
    for i in 0..config.num_objects {
        let key = match config.keys {
            KeyCount::Unique => key_bytes(i),
            KeyCount::Distinct(k) => key_bytes(rng.gen_range(0..k)),
        };
        let set = SetId(rng.gen_range(0..config.num_sets));
        out.push((key, set, Oid(i + 1)));
    }
    out
}

/// The sorted list of distinct key ordinals a configuration uses (for
/// range-query generation).
pub fn key_space(config: &UniformConfig) -> u32 {
    match config.keys {
        KeyCount::Unique => config.num_objects,
        KeyCount::Distinct(k) => k,
    }
}

fn corrupt(e: uindex::Error) -> pagestore::Error {
    pagestore::Error::Corrupt(e.to_string())
}

/// A real U-index behind the [`SetIndex`] harness interface, generic over
/// the page-store tier (`MemStore` by default; the disk bench runs it over
/// the WAL + checksum + file stack).
///
/// Sets map to the classes of a synthetic hierarchy (a root with `n-1`
/// children, in pre-order = set-id order, so "near" sets have adjacent
/// class codes). Postings become ordinary class-hierarchy index entries in
/// the shared B-tree.
pub struct UIndexSet<P: PageStore = MemStore> {
    index: UIndex<P>,
    id: IndexId,
    classes: Vec<ClassId>,
    schema: Schema,
    algorithm: ScanAlgorithm,
}

impl UIndexSet {
    /// An empty in-memory U-index over `num_sets` classes with the paper's
    /// page geometry.
    pub fn new(num_sets: u16) -> PageResult<Self> {
        Self::with_pool(BufferPool::new(MemStore::new(1024), 1 << 17), num_sets)
    }

    /// Build an in-memory index from postings with a packed bulk load.
    pub fn build(num_sets: u16, postings: &[(Vec<u8>, SetId, Oid)]) -> PageResult<Self> {
        Self::build_with_pool(
            BufferPool::new(MemStore::new(1024), 1 << 17),
            num_sets,
            postings,
        )
    }
}

impl<P: PageStore> UIndexSet<P> {
    /// An empty U-index over `num_sets` classes on the given pool (any
    /// store tier).
    pub fn with_pool(pool: BufferPool<P>, num_sets: u16) -> PageResult<Self> {
        let mut schema = Schema::new();
        let root = schema.add_class("S0").expect("fresh schema");
        schema
            .add_attr(root, "Key", schema::AttrType::Str)
            .expect("fresh class");
        let mut classes = vec![root];
        for i in 1..num_sets {
            classes.push(
                schema
                    .add_subclass(&format!("S{i}"), root)
                    .expect("unique names"),
            );
        }
        let encoding = Encoding::generate(&schema).expect("acyclic");
        let mut index = UIndex::new(pool, BTreeConfig::default(), encoding).map_err(corrupt)?;
        let spec = IndexSpec::class_hierarchy("key", root, "Key")
            .build(&schema)
            .expect("valid spec");
        let id = index.define(&schema, spec).map_err(corrupt)?;
        Ok(UIndexSet {
            index,
            id,
            classes,
            schema,
            algorithm: ScanAlgorithm::Parallel,
        })
    }

    /// Build from postings with a packed bulk load on the given pool.
    pub fn build_with_pool(
        pool: BufferPool<P>,
        num_sets: u16,
        postings: &[(Vec<u8>, SetId, Oid)],
    ) -> PageResult<Self> {
        let mut out = Self::with_pool(pool, num_sets)?;
        let entries: Vec<EntryKey> = postings
            .iter()
            .map(|(k, s, o)| out.entry(k, *s, *o))
            .collect();
        out.index.bulk_load_entries(&entries).map_err(corrupt)?;
        Ok(out)
    }

    /// Write the schema catalog into the tree and flush every dirty page to
    /// the store. Returns `(root, len)` — everything [`UIndexSet::open`]
    /// needs to attach to the tree after a reopen.
    pub fn persist(&mut self) -> PageResult<(PageId, u64)> {
        self.index.save_catalog(&self.schema).map_err(corrupt)?;
        let root = self.index.tree().root();
        let len = self.index.tree().len();
        self.index.tree().pool().flush_to_store_only()?;
        Ok((root, len))
    }

    /// Attach to a previously [`persist`](UIndexSet::persist)ed index on a
    /// reopened store: the schema and spec come back from the in-tree
    /// catalog.
    pub fn open(pool: BufferPool<P>, root: PageId, len: u64) -> PageResult<Self> {
        let (index, schema) =
            UIndex::open_with_catalog(pool, BTreeConfig::default(), root, len).map_err(corrupt)?;
        let id = index
            .index_by_name("key")
            .ok_or_else(|| pagestore::Error::Corrupt("catalog lost the key index".into()))?;
        let mut classes = Vec::new();
        while let Some(c) = schema.class_by_name(&format!("S{}", classes.len())) {
            classes.push(c);
        }
        if classes.is_empty() {
            return Err(pagestore::Error::Corrupt(
                "catalog lost the set classes".into(),
            ));
        }
        Ok(UIndexSet {
            index,
            id,
            classes,
            schema,
            algorithm: ScanAlgorithm::Parallel,
        })
    }

    /// The buffer pool (to flush, or reach the underlying store tier).
    pub fn pool(&self) -> &BufferPool<P> {
        self.index.tree().pool()
    }

    /// Consume the adapter, returning the pool (and with it the store).
    pub fn into_pool(self) -> BufferPool<P> {
        self.index.into_pool()
    }

    /// Use the naive forward-scanning algorithm instead of the paper's
    /// parallel algorithm (Table 1's comparison).
    pub fn use_forward_scan(&mut self, forward: bool) {
        self.algorithm = if forward {
            ScanAlgorithm::Forward
        } else {
            ScanAlgorithm::Parallel
        };
    }

    /// Select the scan algorithm for subsequent queries (the scan-perf
    /// bench compares all three).
    pub fn use_algorithm(&mut self, algorithm: ScanAlgorithm) {
        self.algorithm = algorithm;
    }

    /// Exact-key query returning the full scan statistics (not just the
    /// harness's `QueryCost` projection).
    pub fn exact_stats(
        &mut self,
        key: &[u8],
        sets: &[SetId],
    ) -> PageResult<(Vec<(SetId, Oid)>, ScanStats)> {
        let q = self.exact_query(key, sets);
        self.run_stats(q)
    }

    /// Range query (`lo <= key < hi`) returning the full scan statistics.
    pub fn range_stats(
        &mut self,
        lo: &[u8],
        hi: &[u8],
        sets: &[SetId],
    ) -> PageResult<(Vec<(SetId, Oid)>, ScanStats)> {
        let q = self.range_query(lo, hi, sets);
        self.run_stats(q)
    }

    /// Build (without running) the exact-probe [`Query`], under the
    /// currently selected scan algorithm — for executors that take a query
    /// stream, like [`uindex::parallel_query`].
    pub fn exact_query(&self, key: &[u8], sets: &[SetId]) -> Query {
        let mut q = Query::on(self.id)
            .value(ValuePred::eq(Self::value_of(key)))
            .class_at(0, self.class_sel(sets));
        q.algorithm = self.algorithm;
        q
    }

    /// Build (without running) the range [`Query`] (`lo <= key < hi`).
    pub fn range_query(&self, lo: &[u8], hi: &[u8], sets: &[SetId]) -> Query {
        let mut q = Query::on(self.id)
            .value(ValuePred::Range {
                lo: Some(Self::value_of(lo)),
                hi: Some(Self::value_of(hi)),
                hi_inclusive: false,
            })
            .class_at(0, self.class_sel(sets));
        q.algorithm = self.algorithm;
        q
    }

    /// A `Send + Clone` handle for querying this index from other threads
    /// (see [`uindex::DatabaseReader`]). Enables snapshot mode on the tree.
    pub fn reader(&mut self) -> uindex::DatabaseReader<P> {
        uindex::DatabaseReader::for_index(&mut self.index, &self.schema)
    }

    /// Convert raw index hits into the harness's sorted `(set, oid)` shape.
    pub fn set_hits(&self, hits: &[uindex::QueryHit]) -> Vec<(SetId, Oid)> {
        let mut out = Vec::with_capacity(hits.len());
        for h in hits {
            let class = self
                .index
                .encoding()
                .class_by_code(&h.key.path[0].code)
                .expect("known code");
            let set = SetId(
                self.classes
                    .iter()
                    .position(|&c| c == class)
                    .expect("known class") as u16,
            );
            out.push((set, h.key.path[0].oid));
        }
        out.sort();
        out
    }

    fn entry(&self, key: &[u8], set: SetId, oid: Oid) -> EntryKey {
        let class = self.classes[set.0 as usize];
        let code = self
            .index
            .encoding()
            .code(class)
            .expect("all classes coded")
            .as_bytes()
            .to_vec();
        EntryKey {
            index_id: self.id,
            value: Value::Str(String::from_utf8(key.to_vec()).expect("ascii key")),
            path: vec![PathElem { code, oid }],
        }
    }

    fn run(&mut self, q: Query) -> PageResult<(Vec<(SetId, Oid)>, QueryCost)> {
        let (hits, stats) = self.run_stats(q)?;
        Ok((
            hits,
            QueryCost {
                pages: stats.pages_read,
                visits: stats.node_visits,
                descents: stats.descents,
            },
        ))
    }

    fn run_stats(&mut self, q: Query) -> PageResult<(Vec<(SetId, Oid)>, ScanStats)> {
        let mut q = q;
        q.algorithm = self.algorithm;
        let (hits, stats) = self
            .index
            .query(&q)
            .map_err(|e| pagestore::Error::Corrupt(e.to_string()))?;
        Ok((self.set_hits(&hits), stats))
    }

    fn class_sel(&self, sets: &[SetId]) -> ClassSel {
        ClassSel::AnyOf(
            sets.iter()
                .map(|s| ClassSel::Exact(self.classes[s.0 as usize]))
                .collect(),
        )
    }

    fn value_of(key: &[u8]) -> Value {
        Value::Str(String::from_utf8(key.to_vec()).expect("ascii key"))
    }

    /// Shape statistics of the underlying tree.
    pub fn verify(&mut self) -> PageResult<btree::TreeStats> {
        self.index
            .verify()
            .map_err(|e| pagestore::Error::Corrupt(e.to_string()))
    }
}

impl<P: PageStore> SetIndex for UIndexSet<P> {
    fn insert(&mut self, key: &[u8], set: SetId, oid: Oid) -> PageResult<()> {
        let e = self.entry(key, set, oid);
        self.index
            .insert_entries(std::slice::from_ref(&e))
            .map_err(|e| pagestore::Error::Corrupt(e.to_string()))?;
        Ok(())
    }

    fn remove(&mut self, key: &[u8], set: SetId, oid: Oid) -> PageResult<bool> {
        let e = self.entry(key, set, oid);
        let n = self
            .index
            .remove_entries(std::slice::from_ref(&e))
            .map_err(|e| pagestore::Error::Corrupt(e.to_string()))?;
        Ok(n > 0)
    }

    fn exact(&mut self, key: &[u8], sets: &[SetId]) -> PageResult<(Vec<(SetId, Oid)>, QueryCost)> {
        let q = Query::on(self.id)
            .value(ValuePred::eq(Self::value_of(key)))
            .class_at(0, self.class_sel(sets));
        self.run(q)
    }

    fn range(
        &mut self,
        lo: &[u8],
        hi: &[u8],
        sets: &[SetId],
    ) -> PageResult<(Vec<(SetId, Oid)>, QueryCost)> {
        let q = Query::on(self.id)
            .value(ValuePred::Range {
                lo: Some(Self::value_of(lo)),
                hi: Some(Self::value_of(hi)),
                hi_inclusive: false,
            })
            .class_at(0, self.class_sel(sets));
        self.run(q)
    }

    fn total_pages(&self) -> usize {
        self.index.tree().pool().live_pages()
    }

    fn name(&self) -> &'static str {
        "U-index"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(
        postings: &[(Vec<u8>, SetId, Oid)],
        lo: &[u8],
        hi: &[u8],
        sets: &[SetId],
    ) -> Vec<(SetId, Oid)> {
        let mut out: Vec<(SetId, Oid)> = postings
            .iter()
            .filter(|(k, s, _)| k.as_slice() >= lo && k.as_slice() < hi && sets.contains(s))
            .map(|(_, s, o)| (*s, *o))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn generation_deterministic_and_uniform() {
        let cfg = UniformConfig {
            num_objects: 10_000,
            num_sets: 8,
            keys: KeyCount::Distinct(100),
            seed: 1,
        };
        let a = generate_postings(&cfg);
        let b = generate_postings(&cfg);
        assert_eq!(a, b);
        // Roughly uniform across sets.
        let mut counts = [0usize; 8];
        for (_, s, _) in &a {
            counts[s.0 as usize] += 1;
        }
        for c in counts {
            assert!((1000..1600).contains(&c), "set count {c}");
        }
    }

    #[test]
    fn uindex_adapter_matches_brute_force() {
        let cfg = UniformConfig {
            num_objects: 5_000,
            num_sets: 8,
            keys: KeyCount::Distinct(200),
            seed: 2,
        };
        let postings = generate_postings(&cfg);
        let mut u = UIndexSet::build(8, &postings).unwrap();
        u.verify().unwrap();

        let sets = [SetId(1), SetId(4), SetId(5)];
        let probe = key_bytes(42);
        let mut hi = probe.clone();
        hi.push(0);
        let (hits, cost) = u.exact(&probe, &sets).unwrap();
        assert_eq!(hits, brute(&postings, &probe, &hi, &sets));
        assert!(cost.pages >= 2);

        let (hits, _) = u.range(&key_bytes(50), &key_bytes(70), &sets).unwrap();
        assert_eq!(
            hits,
            brute(&postings, &key_bytes(50), &key_bytes(70), &sets)
        );

        // Forward scan agrees.
        u.use_forward_scan(true);
        let (fwd, fwd_cost) = u.range(&key_bytes(50), &key_bytes(70), &sets).unwrap();
        assert_eq!(fwd, brute(&postings, &key_bytes(50), &key_bytes(70), &sets));
        u.use_forward_scan(false);
        let (_, par_cost) = u.range(&key_bytes(50), &key_bytes(70), &sets).unwrap();
        assert!(par_cost.pages <= fwd_cost.pages);
    }

    #[test]
    fn adapter_incremental_ops() {
        let mut u = UIndexSet::new(4).unwrap();
        u.insert(&key_bytes(1), SetId(2), Oid(10)).unwrap();
        u.insert(&key_bytes(1), SetId(3), Oid(11)).unwrap();
        let (hits, _) = u.exact(&key_bytes(1), &[SetId(2), SetId(3)]).unwrap();
        assert_eq!(hits.len(), 2);
        assert!(u.remove(&key_bytes(1), SetId(2), Oid(10)).unwrap());
        assert!(!u.remove(&key_bytes(1), SetId(2), Oid(10)).unwrap());
        let (hits, _) = u.exact(&key_bytes(1), &[SetId(2), SetId(3)]).unwrap();
        assert_eq!(hits, vec![(SetId(3), Oid(11))]);
    }
}
