//! Experiment 1 database: the paper's vehicle schema and 12,000 records.

use btree::BTreeConfig;
use objstore::{Oid, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use schema::{AttrType, ClassId, Schema};
use uindex::{ClassSel, Database, IndexId, IndexSpec, Query, Result, ValuePred};

/// The ten colors vehicles are painted with; queries use the first three.
pub const COLORS: [&str; 10] = [
    "Blue", "Bronze", "Gray", "Green", "Magenta", "Orange", "Purple", "Red", "White", "Yellow",
];

/// All class ids of the experiment schema.
#[derive(Debug, Clone, Copy)]
pub struct VehicleClasses {
    /// `Employee` (ages 20–69).
    pub employee: ClassId,
    /// `City`.
    pub city: ClassId,
    /// `Company` hierarchy root.
    pub company: ClassId,
    /// `AutoCompany` < Company.
    pub auto_company: ClassId,
    /// `JapaneseAutoCompany` < AutoCompany.
    pub japanese_auto_company: ClassId,
    /// `TruckCompany` < Company.
    pub truck_company: ClassId,
    /// `Division`.
    pub division: ClassId,
    /// `Vehicle` hierarchy root.
    pub vehicle: ClassId,
    /// `Automobile` < Vehicle.
    pub automobile: ClassId,
    /// `CompactAutomobile` < Automobile.
    pub compact: ClassId,
    /// `ForeignAuto` < Automobile (§5 addition).
    pub foreign_auto: ClassId,
    /// `ServiceAuto` < Automobile (§5 addition).
    pub service_auto: ClassId,
    /// `Truck` < Vehicle.
    pub truck: ClassId,
    /// `HeavyTruck` < Truck (§5 addition).
    pub heavy_truck: ClassId,
    /// `LightTruck` < Truck (§5 addition).
    pub light_truck: ClassId,
    /// `Bus` < Vehicle (§5 addition).
    pub bus: ClassId,
    /// `MilitaryBus` < Bus (§5 addition).
    pub military_bus: ClassId,
    /// `TouristBus` < Bus (§5 addition).
    pub tourist_bus: ClassId,
    /// `PassengerBus` < Bus (§5 addition).
    pub passenger_bus: ClassId,
}

impl VehicleClasses {
    /// The twelve concrete vehicle classes objects are drawn from.
    pub fn vehicle_classes(&self) -> [ClassId; 12] {
        [
            self.vehicle,
            self.automobile,
            self.compact,
            self.foreign_auto,
            self.service_auto,
            self.truck,
            self.heavy_truck,
            self.light_truck,
            self.bus,
            self.military_bus,
            self.tourist_bus,
            self.passenger_bus,
        ]
    }
}

/// The generated experiment database.
pub struct VehicleWorkload {
    /// The database with both indexes built.
    pub db: Database,
    /// Class handles.
    pub classes: VehicleClasses,
    /// CH index on `Vehicle.Color`.
    pub color_index: IndexId,
    /// Combined path index `Vehicle/Company/Employee.Age`.
    pub age_index: IndexId,
    /// Path positions in the age index: Employee = 0, Company = 1,
    /// Vehicle = 2 (code order).
    pub employees: Vec<Oid>,
    /// Generated companies.
    pub companies: Vec<Oid>,
    /// Generated vehicles.
    pub vehicles: Vec<Oid>,
}

/// Build the Figure-1 schema plus the nine §5 classes.
pub fn build_schema() -> (Schema, VehicleClasses) {
    let mut s = Schema::new();
    let employee = s.add_class("Employee").unwrap();
    s.add_attr(employee, "Age", AttrType::Int).unwrap();
    let city = s.add_class("City").unwrap();
    s.add_attr(city, "Name", AttrType::Str).unwrap();
    let company = s.add_class("Company").unwrap();
    s.add_attr(company, "Name", AttrType::Str).unwrap();
    s.add_attr(company, "President", AttrType::Ref(employee))
        .unwrap();
    let auto_company = s.add_subclass("AutoCompany", company).unwrap();
    let japanese_auto_company = s.add_subclass("JapaneseAutoCompany", auto_company).unwrap();
    let truck_company = s.add_subclass("TruckCompany", company).unwrap();
    let division = s.add_class("Division").unwrap();
    s.add_attr(division, "Belong", AttrType::Ref(company))
        .unwrap();
    s.add_attr(division, "LocatedIn", AttrType::Ref(city))
        .unwrap();
    let vehicle = s.add_class("Vehicle").unwrap();
    s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
    s.add_attr(vehicle, "ManufacturedBy", AttrType::Ref(company))
        .unwrap();
    let automobile = s.add_subclass("Automobile", vehicle).unwrap();
    let compact = s.add_subclass("CompactAutomobile", automobile).unwrap();
    let foreign_auto = s.add_subclass("ForeignAuto", automobile).unwrap();
    let service_auto = s.add_subclass("ServiceAuto", automobile).unwrap();
    let truck = s.add_subclass("Truck", vehicle).unwrap();
    let heavy_truck = s.add_subclass("HeavyTruck", truck).unwrap();
    let light_truck = s.add_subclass("LightTruck", truck).unwrap();
    let bus = s.add_subclass("Bus", vehicle).unwrap();
    let military_bus = s.add_subclass("MilitaryBus", bus).unwrap();
    let tourist_bus = s.add_subclass("TouristBus", bus).unwrap();
    let passenger_bus = s.add_subclass("PassengerBus", bus).unwrap();
    (
        s,
        VehicleClasses {
            employee,
            city,
            company,
            auto_company,
            japanese_auto_company,
            truck_company,
            division,
            vehicle,
            automobile,
            compact,
            foreign_auto,
            service_auto,
            truck,
            heavy_truck,
            light_truck,
            bus,
            military_bus,
            tourist_bus,
            passenger_bus,
        },
    )
}

/// Generate the experiment database: `n_vehicles` vehicles (the paper uses
/// 12,000) uniform over the twelve vehicle classes, with the B-tree capped
/// at `max_node_entries` records per node (the paper uses 10).
pub fn generate(seed: u64, n_vehicles: usize, max_node_entries: usize) -> Result<VehicleWorkload> {
    let (schema, classes) = build_schema();
    let mut db = Database::with_config(
        schema,
        1024,
        1 << 16,
        BTreeConfig::with_max_entries(max_node_entries),
    )?;
    let mut rng = StdRng::seed_from_u64(seed);

    // Small supporting populations, as in the paper's schema walk-through.
    let n_employees = 50;
    let n_companies = 20;
    let mut employees = Vec::with_capacity(n_employees);
    for _ in 0..n_employees {
        let e = db.create_object(classes.employee)?;
        db.set_attr(e, "Age", Value::Int(rng.gen_range(20..70)))?;
        employees.push(e);
    }
    let company_classes = [
        classes.company,
        classes.auto_company,
        classes.japanese_auto_company,
        classes.truck_company,
    ];
    let mut companies = Vec::with_capacity(n_companies);
    for i in 0..n_companies {
        let class = company_classes[rng.gen_range(0..company_classes.len())];
        let c = db.create_object(class)?;
        db.set_attr(c, "Name", Value::Str(format!("Company{i}")))?;
        let pres = employees[rng.gen_range(0..employees.len())];
        db.set_attr(c, "President", Value::Ref(pres))?;
        companies.push(c);
    }

    // Indexes BEFORE the bulk of the data so maintenance code is exercised;
    // the structures end up identical either way.
    let color_index = db.define_index(IndexSpec::class_hierarchy(
        "vehicle-color",
        classes.vehicle,
        "Color",
    ))?;
    let age_index = db.define_index(IndexSpec::path(
        "vehicle-company-president-age",
        classes.vehicle,
        &["ManufacturedBy", "President"],
        "Age",
    ))?;

    let vclasses = classes.vehicle_classes();
    let mut vehicles = Vec::with_capacity(n_vehicles);
    for _ in 0..n_vehicles {
        let class = vclasses[rng.gen_range(0..vclasses.len())];
        let v = db.create_object(class)?;
        db.set_attr(
            v,
            "Color",
            Value::Str(COLORS[rng.gen_range(0..COLORS.len())].to_string()),
        )?;
        let made_by = companies[rng.gen_range(0..companies.len())];
        db.set_attr(v, "ManufacturedBy", Value::Ref(made_by))?;
        vehicles.push(v);
    }

    Ok(VehicleWorkload {
        db,
        classes,
        color_index,
        age_index,
        employees,
        companies,
        vehicles,
    })
}

/// One of Table 1's twenty queries (paper §5, experiment 1).
#[derive(Debug, Clone)]
pub struct Table1Query {
    /// Row id in the paper's table: "1", "1a", … "6b".
    pub id: &'static str,
    /// The query, using the default (parallel) algorithm.
    pub query: Query,
    /// Whether the paper's table also reports the forward-scanning column
    /// for this row (query families 3 and 4).
    pub forward_compare: bool,
}

fn table1_colors(n: usize) -> ValuePred {
    let cols = ["Red", "Blue", "Green"];
    if n == 1 {
        ValuePred::eq(Value::Str(cols[0].into()))
    } else {
        ValuePred::In(
            cols[..n]
                .iter()
                .map(|c| Value::Str((*c).to_string()))
                .collect(),
        )
    }
}

/// The twenty Table-1 queries against a generated [`VehicleWorkload`] —
/// shared by the `table1` bench binary, the EXPLAIN ANALYZE acceptance
/// test, and the CI smoke so they all exercise the identical query set.
pub fn table1_queries(w: &VehicleWorkload) -> Vec<Table1Query> {
    let c = w.classes;
    let mut out = Vec::with_capacity(20);
    let mut push = |id, query, forward_compare| {
        out.push(Table1Query {
            id,
            query,
            forward_compare,
        })
    };

    // Queries 1/1a/1b/1c: all Buses, then restricted to 1..3 colors.
    let base1 = Query::on(w.color_index).class_at(0, ClassSel::SubTree(c.bus));
    push("1", base1.clone(), false);
    for (id, n) in [("1a", 1), ("1b", 2), ("1c", 3)] {
        push(id, base1.clone().value(table1_colors(n)), false);
    }

    // Queries 2/2a/2b/2c: PassengerBuses (a deeper sub-tree).
    let base2 = Query::on(w.color_index).class_at(0, ClassSel::SubTree(c.passenger_bus));
    push("2", base2.clone(), false);
    for (id, n) in [("2a", 1), ("2b", 2), ("2c", 3)] {
        push(id, base2.clone().value(table1_colors(n)), false);
    }

    // Queries 3/3a/3b/3c: Automobiles — parallel vs forward scanning.
    let base3 = Query::on(w.color_index).class_at(0, ClassSel::SubTree(c.automobile));
    for (id, n) in [("3", 0), ("3a", 1), ("3b", 2), ("3c", 3)] {
        let q = if n == 0 {
            base3.clone()
        } else {
            base3.clone().value(table1_colors(n))
        };
        push(id, q, true);
    }

    // Queries 4/4a/4b/4c: Compact OR Service automobiles (dispersed
    // sub-classes, ForeignAuto sits between them).
    let sel4 = ClassSel::AnyOf(vec![
        ClassSel::SubTree(c.compact),
        ClassSel::SubTree(c.service_auto),
    ]);
    let base4 = Query::on(w.color_index).class_at(0, sel4);
    for (id, n) in [("4", 0), ("4a", 1), ("4b", 2), ("4c", 3)] {
        let q = if n == 0 {
            base4.clone()
        } else {
            base4.clone().value(table1_colors(n))
        };
        push(id, q, true);
    }

    // Query 5: path index — companies whose president's age is 50 (a) or
    // above 50 (b), deduplicated through the company position (1).
    push(
        "5a",
        Query::on(w.age_index)
            .value(ValuePred::eq(Value::Int(50)))
            .distinct_through(1),
        false,
    );
    push(
        "5b",
        Query::on(w.age_index)
            .value(ValuePred::at_least(Value::Int(51)))
            .distinct_through(1),
        false,
    );

    // Query 6: combined index — automobiles made by AutoCompanies whose
    // president's age is above 50 (a); same for Trucks (b).
    push(
        "6a",
        Query::on(w.age_index)
            .value(ValuePred::at_least(Value::Int(51)))
            .class_at(1, ClassSel::SubTree(c.auto_company))
            .class_at(2, ClassSel::SubTree(c.automobile)),
        false,
    );
    push(
        "6b",
        Query::on(w.age_index)
            .value(ValuePred::at_least(Value::Int(51)))
            .class_at(1, ClassSel::SubTree(c.auto_company))
            .class_at(2, ClassSel::SubTree(c.truck)),
        false,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_generation_is_consistent() {
        let mut w = generate(42, 600, 10).unwrap();
        assert_eq!(w.vehicles.len(), 600);
        let stats = w.db.index_mut().verify().unwrap();
        // 600 color entries + 600 path entries.
        assert_eq!(stats.entries, 1200);

        // Every red bus found by the index matches a brute-force scan.
        let q = Query::on(w.color_index)
            .value(ValuePred::eq(Value::Str("Red".into())))
            .class_at(0, ClassSel::SubTree(w.classes.bus));
        let hits = w.db.query(&q).unwrap();
        let brute = w
            .vehicles
            .iter()
            .filter(|&&v| {
                let class = w.db.store().class_of(v).unwrap();
                w.db.schema().is_subclass_of(class, w.classes.bus)
                    && w.db.store().attr(v, "Color").unwrap() == Some(&Value::Str("Red".into()))
            })
            .count();
        assert_eq!(hits.len(), brute);
        assert!(brute > 0, "600 vehicles should include red buses");
    }

    #[test]
    fn deterministic() {
        let a = generate(7, 100, 10).unwrap();
        let b = generate(7, 100, 10).unwrap();
        for (x, y) in a.vehicles.iter().zip(&b.vehicles) {
            assert_eq!(
                a.db.store().attr(*x, "Color").unwrap(),
                b.db.store().attr(*y, "Color").unwrap()
            );
        }
    }
}
