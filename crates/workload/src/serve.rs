//! Serving-layer workload: the vehicle schema with UQL-addressable index
//! names, generic over the page store so the load generator and the
//! torture tests can build the *same* database on the in-memory and the
//! durable tier and cross-check answers byte-for-byte.
//!
//! The experiment-1 generator ([`crate::vehicle::generate`]) names its
//! indexes `vehicle-color` / `vehicle-company-president-age`, which UQL
//! cannot tokenize (identifiers have no hyphens). Here the same shape is
//! published as `color` and `age`, and the statement mix in
//! [`uql_families`] exercises every clause the grammar offers.

use objstore::{Oid, Value};
use pagestore::PageStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use schema::Schema;
use uindex::{Database, IndexSpec, Result};

use crate::vehicle::{build_schema, VehicleClasses, COLORS};

/// The serve workload's schema: the vehicle schema of experiment 1.
pub fn schema() -> (Schema, VehicleClasses) {
    build_schema()
}

/// Populate `db` (already constructed over the [`schema`]) with the
/// supporting employee/company population, two UQL-addressable indexes
/// (`color`: CH on `Vehicle.Color`; `age`: path
/// `Vehicle/ManufacturedBy/President.Age`), and `n_vehicles` vehicles.
///
/// Deterministic in `seed`: two databases built with the same seed and
/// count — on any page-store tier — index the same logical data and
/// answer every UQL statement identically.
pub fn populate<P: PageStore>(
    db: &mut Database<P>,
    classes: &VehicleClasses,
    seed: u64,
    n_vehicles: usize,
) -> Result<Vec<Oid>> {
    let mut rng = StdRng::seed_from_u64(seed);

    let n_employees = 50;
    let n_companies = 20;
    let mut employees = Vec::with_capacity(n_employees);
    for _ in 0..n_employees {
        let e = db.create_object(classes.employee)?;
        db.set_attr(e, "Age", Value::Int(rng.gen_range(20..70)))?;
        employees.push(e);
    }
    let company_classes = [
        classes.company,
        classes.auto_company,
        classes.japanese_auto_company,
        classes.truck_company,
    ];
    let mut companies = Vec::with_capacity(n_companies);
    for i in 0..n_companies {
        let class = company_classes[rng.gen_range(0..company_classes.len())];
        let c = db.create_object(class)?;
        db.set_attr(c, "Name", Value::Str(format!("Company{i}")))?;
        let pres = employees[rng.gen_range(0..employees.len())];
        db.set_attr(c, "President", Value::Ref(pres))?;
        companies.push(c);
    }

    db.define_index(IndexSpec::class_hierarchy(
        "color",
        classes.vehicle,
        "Color",
    ))?;
    db.define_index(IndexSpec::path(
        "age",
        classes.vehicle,
        &["ManufacturedBy", "President"],
        "Age",
    ))?;

    let vclasses = classes.vehicle_classes();
    let mut vehicles = Vec::with_capacity(n_vehicles);
    for _ in 0..n_vehicles {
        let class = vclasses[rng.gen_range(0..vclasses.len())];
        let v = db.create_object(class)?;
        db.set_attr(
            v,
            "Color",
            Value::Str(COLORS[rng.gen_range(0..COLORS.len())].to_string()),
        )?;
        let made_by = companies[rng.gen_range(0..companies.len())];
        db.set_attr(v, "ManufacturedBy", Value::Ref(made_by))?;
        vehicles.push(v);
    }
    Ok(vehicles)
}

/// The serving workload's statement mix: one UQL string per grammar
/// feature (point/range/set predicates, class selectors, subtree stars,
/// `distinct`, `forward`), split across both indexes. A mixed stream is
/// drawn by indexing into this list with a seeded RNG.
pub fn uql_families() -> Vec<&'static str> {
    vec![
        "color: Color = 'Red'",
        "color: Color = 'Blue'",
        "color: Color in ('Red', 'Blue', 'Green')",
        "color: Color = 'Red' and Vehicle in [Bus*, Truck]",
        "color: Vehicle in [Automobile*]",
        "color: Color = 'Blue' forward",
        "color: Color between 'Gray' and 'Orange'",
        "age: Age between 40 and 60",
        "age: Age >= 65",
        "age: Age <= 30 distinct Company",
        "age: Age between 30 and 50 and Company in [AutoCompany*]",
        "age: Age = 45 and Vehicle in [Truck*]",
    ]
}
