//! Property tests over the experiment harness itself: for random posting
//! sets and random queries, the U-index adapter, the CG-tree, the CH-tree
//! and the H-tree must all return exactly the brute-force result, and the
//! parallel and forward algorithms must agree.

use baselines::{CgConfig, CgTree, ChTree, HTree, SetId, SetIndex};
use objstore::Oid;
use proptest::prelude::*;
use workload::uniform::{key_bytes, UIndexSet};

#[derive(Debug, Clone)]
struct Case {
    num_sets: u16,
    postings: Vec<(u32, u16)>, // (key ordinal, set); oid = posting index
    queries: Vec<(u32, u32, Vec<u16>)>, // (lo, width, sets)
}

fn arb_case() -> impl Strategy<Value = Case> {
    (2u16..10, 1u32..60).prop_flat_map(|(num_sets, key_space)| {
        let posting = (0..key_space, 0..num_sets);
        let query = (
            0..key_space,
            1u32..=key_space,
            proptest::collection::vec(0..num_sets, 1..=num_sets as usize),
        );
        (
            proptest::collection::vec(posting, 0..300),
            proptest::collection::vec(query, 1..8),
        )
            .prop_map(move |(postings, queries)| Case {
                num_sets,
                postings,
                queries,
            })
    })
}

fn brute(
    postings: &[(Vec<u8>, SetId, Oid)],
    lo: &[u8],
    hi: &[u8],
    sets: &[SetId],
) -> Vec<(SetId, Oid)> {
    let mut out: Vec<(SetId, Oid)> = postings
        .iter()
        .filter(|(k, s, _)| k.as_slice() >= lo && k.as_slice() < hi && sets.contains(s))
        .map(|(_, s, o)| (*s, *o))
        .collect();
    out.sort();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_structures_agree_with_brute_force(case in arb_case()) {
        let mut postings: Vec<(Vec<u8>, SetId, Oid)> = case
            .postings
            .iter()
            .enumerate()
            .map(|(i, (k, s))| (key_bytes(*k), SetId(*s), Oid(i as u32 + 1)))
            .collect();
        postings.sort();

        let mut u = UIndexSet::build(case.num_sets, &postings).unwrap();
        let mut cg = CgTree::build(
            CgConfig { page_size: 256, pool_pages: 1 << 14 },
            &mut postings.clone(),
        )
        .unwrap();
        let mut ch = ChTree::build(256, 1 << 14, &mut postings.clone()).unwrap();
        let mut h = HTree::build(256, 1 << 14, &mut postings.clone()).unwrap();
        cg.check().unwrap();
        u.verify().unwrap();

        for (lo_ord, width, sets) in &case.queries {
            let mut sets: Vec<SetId> = sets.iter().map(|&s| SetId(s)).collect();
            sets.sort();
            sets.dedup();
            let lo = key_bytes(*lo_ord);
            let hi = key_bytes(lo_ord + width);
            let want = brute(&postings, &lo, &hi, &sets);
            let (got_u, _) = u.range(&lo, &hi, &sets).unwrap();
            prop_assert_eq!(&got_u, &want, "u-index range");
            let (got_cg, _) = cg.range(&lo, &hi, &sets).unwrap();
            prop_assert_eq!(&got_cg, &want, "cg range");
            let (got_ch, _) = ch.range(&lo, &hi, &sets).unwrap();
            prop_assert_eq!(&got_ch, &want, "ch range");
            let (got_h, _) = h.range(&lo, &hi, &sets).unwrap();
            prop_assert_eq!(&got_h, &want, "h range");

            // Exact match on the low key.
            let mut point_hi = lo.clone();
            point_hi.push(0);
            let want = brute(&postings, &lo, &point_hi, &sets);
            let (got_u, _) = u.exact(&lo, &sets).unwrap();
            prop_assert_eq!(&got_u, &want, "u-index exact");
            let (got_cg, _) = cg.exact(&lo, &sets).unwrap();
            prop_assert_eq!(&got_cg, &want, "cg exact");

            // Forward scan agreement + page-cost dominance.
            u.use_forward_scan(true);
            let (fwd, fwd_cost) = u.range(&lo, &hi, &sets).unwrap();
            u.use_forward_scan(false);
            let (par, par_cost) = u.range(&lo, &hi, &sets).unwrap();
            prop_assert_eq!(fwd, par, "forward vs parallel");
            prop_assert!(par_cost.pages <= fwd_cost.pages);
        }
    }

    #[test]
    fn incremental_equals_bulk(case in arb_case()) {
        let mut postings: Vec<(Vec<u8>, SetId, Oid)> = case
            .postings
            .iter()
            .enumerate()
            .map(|(i, (k, s))| (key_bytes(*k), SetId(*s), Oid(i as u32 + 1)))
            .collect();
        postings.sort();

        let mut bulk = UIndexSet::build(case.num_sets, &postings).unwrap();
        let mut incr = UIndexSet::new(case.num_sets).unwrap();
        for (k, s, o) in &postings {
            incr.insert(k, *s, *o).unwrap();
        }
        let all: Vec<SetId> = (0..case.num_sets).map(SetId).collect();
        let (a, _) = bulk.range(&key_bytes(0), &key_bytes(u32::MAX), &all).unwrap();
        let (b, _) = incr.range(&key_bytes(0), &key_bytes(u32::MAX), &all).unwrap();
        prop_assert_eq!(a, b);
        // Removing a random half leaves the other half.
        let (keep, drop): (Vec<_>, Vec<_>) =
            postings.iter().enumerate().partition(|(i, _)| i % 2 == 0);
        for (_, (k, s, o)) in drop {
            prop_assert!(incr.remove(k, *s, *o).unwrap());
        }
        let (after, _) = incr.range(&key_bytes(0), &key_bytes(u32::MAX), &all).unwrap();
        let mut want: Vec<(SetId, Oid)> =
            keep.into_iter().map(|(_, (_, s, o))| (*s, *o)).collect();
        want.sort();
        prop_assert_eq!(after, want);
    }
}
