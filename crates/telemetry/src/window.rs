//! Rolling time-window aggregation over registry [`Snapshot`]s.
//!
//! A [`RollingWindow`] is a fixed ring of *interval* snapshots — each slot
//! holds the metric deltas for one sampling interval (e.g. one second),
//! pushed by whatever thread drives the sampling. The window itself never
//! reads a clock: the sampler that fills it owns all timing, so merges and
//! queries are deterministic and testable with synthetic intervals.
//!
//! Two read paths:
//!
//! - [`RollingWindow::merged`] — fold the most recent *n* intervals into
//!   one [`Snapshot`] (rate/percentile queries over "the last n ticks").
//! - [`RollingWindow::since`] — fold every interval pushed after a
//!   caller-held cursor, for pollers that want deltas rather than windows.
//!   A cursor older than the ring's retention is reported as truncated so
//!   the poller knows its delta is incomplete.

use crate::Snapshot;

/// Fixed ring of per-interval [`Snapshot`] deltas with windowed merges.
#[derive(Debug, Clone)]
pub struct RollingWindow {
    /// `slots[i]` holds the interval ending at tick `ticks - k` where the
    /// ring index works out via `(ticks - 1 - k) % capacity`; only the
    /// first `min(ticks, capacity)` slots are meaningful.
    slots: Vec<Snapshot>,
    capacity: usize,
    /// Total intervals ever pushed (monotone; also the newest tick id).
    ticks: u64,
}

impl RollingWindow {
    /// A window retaining the most recent `capacity` intervals (min 1).
    pub fn new(capacity: usize) -> RollingWindow {
        let capacity = capacity.max(1);
        RollingWindow {
            slots: vec![Snapshot::default(); capacity],
            capacity,
            ticks: 0,
        }
    }

    /// Number of intervals the ring can retain.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total intervals pushed so far; the id of the newest interval.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Number of intervals currently retained.
    pub fn len(&self) -> usize {
        self.ticks.min(self.capacity as u64) as usize
    }

    /// Whether no interval has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.ticks == 0
    }

    /// Advance the window by one interval, overwriting the oldest slot.
    /// Called by the sampler with the metric *delta* for the interval.
    pub fn push(&mut self, interval: Snapshot) {
        let slot = (self.ticks % self.capacity as u64) as usize;
        self.slots[slot] = interval;
        self.ticks += 1;
    }

    /// Merge the most recent `last_n` intervals into one snapshot,
    /// returning it together with the number of intervals actually
    /// covered (fewer than requested while the ring is still filling, or
    /// when `last_n` exceeds the capacity).
    pub fn merged(&self, last_n: usize) -> (Snapshot, usize) {
        let n = last_n.min(self.len());
        let mut out = Snapshot::default();
        for k in 0..n {
            let tick = self.ticks - 1 - k as u64;
            out.merge(&self.slots[(tick % self.capacity as u64) as usize]);
        }
        (out, n)
    }

    /// Merge every interval pushed after `cursor` (a tick id previously
    /// returned from this method, or 0 for "everything retained").
    /// Returns `(delta, new_cursor, truncated)`: pass `new_cursor` back on
    /// the next poll; `truncated` is true when intervals between `cursor`
    /// and the ring's retention horizon were already overwritten, i.e. the
    /// delta is missing data and the poller should resynchronize.
    pub fn since(&self, cursor: u64) -> (Snapshot, u64, bool) {
        let available = self.ticks.saturating_sub(cursor).min(self.ticks);
        let truncated = available > self.capacity as u64;
        let (delta, _) = self.merged(available.min(self.capacity as u64) as usize);
        (delta, self.ticks, truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistogramSnapshot;

    /// An interval snapshot with one counter and one single-sample
    /// histogram, both carrying `v` — enough to watch merges add up.
    fn interval(v: u64) -> Snapshot {
        let mut s = Snapshot::default();
        s.counters.insert("w.count".into(), v);
        s.histograms.insert(
            "w.hist".into(),
            HistogramSnapshot {
                count: 1,
                sum: v,
                buckets: vec![(0, 0, 1)],
            },
        );
        s
    }

    fn counter(s: &Snapshot) -> u64 {
        s.counters.get("w.count").copied().unwrap_or(0)
    }

    #[test]
    fn fills_then_wraps() {
        let mut w = RollingWindow::new(4);
        assert!(w.is_empty());
        for v in 1..=6u64 {
            w.push(interval(v));
        }
        assert_eq!(w.ticks(), 6);
        assert_eq!(w.len(), 4, "ring retains capacity intervals");

        // Last 2 intervals: 6 + 5.
        let (snap, n) = w.merged(2);
        assert_eq!(n, 2);
        assert_eq!(counter(&snap), 11);
        assert_eq!(snap.histograms["w.hist"].count, 2);

        // Asking for more than retained clamps to the ring: 6+5+4+3.
        let (snap, n) = w.merged(100);
        assert_eq!(n, 4);
        assert_eq!(counter(&snap), 18);
    }

    #[test]
    fn merged_while_filling() {
        let mut w = RollingWindow::new(8);
        w.push(interval(10));
        w.push(interval(20));
        let (snap, n) = w.merged(5);
        assert_eq!(n, 2, "only two intervals exist");
        assert_eq!(counter(&snap), 30);
    }

    #[test]
    fn since_cursor_deltas() {
        let mut w = RollingWindow::new(4);
        for v in 1..=3u64 {
            w.push(interval(v));
        }
        let (delta, cursor, truncated) = w.since(0);
        assert_eq!(counter(&delta), 6);
        assert_eq!(cursor, 3);
        assert!(!truncated);

        // Nothing new: empty delta, cursor unchanged.
        let (delta, cursor2, truncated) = w.since(cursor);
        assert_eq!(counter(&delta), 0);
        assert_eq!(cursor2, 3);
        assert!(!truncated);

        // Two more intervals: the delta is exactly those two.
        w.push(interval(4));
        w.push(interval(5));
        let (delta, cursor3, truncated) = w.since(cursor2);
        assert_eq!(counter(&delta), 9);
        assert_eq!(cursor3, 5);
        assert!(!truncated);
    }

    #[test]
    fn since_reports_truncation() {
        let mut w = RollingWindow::new(2);
        for v in 1..=5u64 {
            w.push(interval(v));
        }
        // Cursor 1 wants ticks 2..=5 but only 4 and 5 survive.
        let (delta, cursor, truncated) = w.since(1);
        assert_eq!(counter(&delta), 9);
        assert_eq!(cursor, 5);
        assert!(truncated, "overwritten intervals must be reported");
    }

    #[test]
    fn capacity_minimum_is_one() {
        let mut w = RollingWindow::new(0);
        assert_eq!(w.capacity(), 1);
        w.push(interval(7));
        w.push(interval(9));
        let (snap, n) = w.merged(10);
        assert_eq!(n, 1);
        assert_eq!(counter(&snap), 9, "only the newest interval survives");
    }
}
