//! Process-local metrics and span tracing for the uindex workspace.
//!
//! The registry is **thread-local**: every thread accumulates its own
//! independent set of metrics with zero synchronization on the hot path
//! (and each `cargo test` thread gets automatic isolation). Multi-threaded
//! work rolls up explicitly: each worker takes a [`snapshot()`] of its own
//! registry when it finishes, and the coordinator combines them with
//! [`Snapshot::merge`] or folds them into its own registry with
//! [`absorb`]. The JSON export is unchanged — a merged snapshot serializes
//! bit-identically to the same events recorded on one thread.
//!
//! Three metric kinds live in a named registry:
//!
//! - [`Counter`] — monotonic `u64`, cheap `Rc<Cell<_>>` handle. Resolve the
//!   handle once (at struct construction) and keep it in a field; `inc()` on
//!   the hot path is a single `Cell` bump.
//! - [`Gauge`] — signed instantaneous value.
//! - [`Histogram`] — 65 log₂ buckets: bucket 0 holds the value 0, bucket *b*
//!   (*b ≥ 1*) covers `[2^(b-1), 2^b - 1]`, bucket 64 tops out at `u64::MAX`.
//!
//! [`reset()`] zeroes every metric *through the shared handles*, so handles
//! cached in long-lived structs stay valid across queries.
//!
//! Span tracing is a thread-local stack of RAII guards: `Span::enter("scan")`
//! starts a timed frame, dropping the guard closes it and attaches it to its
//! parent (or to the finished-roots list when it is outermost). Finished roots
//! are capped so an uninstrumented drain (e.g. a long bench loop) cannot leak.

pub mod json;
pub mod window;

pub use window::RollingWindow;

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Metric handles
// ---------------------------------------------------------------------------

/// Monotonic counter. Clone is cheap and shares the underlying cell.
#[derive(Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().wrapping_add(n));
    }

    pub fn get(&self) -> u64 {
        self.0.get()
    }

    fn zero(&self) {
        self.0.set(0);
    }
}

/// Signed instantaneous value.
#[derive(Clone, Default)]
pub struct Gauge(Rc<Cell<i64>>);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.set(v);
    }

    pub fn add(&self, d: i64) {
        self.0.set(self.0.get().wrapping_add(d));
    }

    pub fn get(&self) -> i64 {
        self.0.get()
    }

    fn zero(&self) {
        self.0.set(0);
    }
}

/// Number of log₂ buckets: one for zero plus one per bit position.
pub const HIST_BUCKETS: usize = 65;

struct HistData {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
}

impl HistData {
    fn new() -> Self {
        HistData {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

/// Log₂-bucket histogram of `u64` samples.
#[derive(Clone)]
pub struct Histogram(Rc<RefCell<HistData>>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Rc::new(RefCell::new(HistData::new())))
    }
}

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros(v)`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `[lo, hi]` range covered by bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < HIST_BUCKETS, "bucket index {i} out of range");
    if i == 0 {
        (0, 0)
    } else {
        let lo = 1u64 << (i - 1);
        let hi = if i == 64 { u64::MAX } else { (1u64 << i) - 1 };
        (lo, hi)
    }
}

impl Histogram {
    pub fn record(&self, v: u64) {
        let mut d = self.0.borrow_mut();
        d.buckets[bucket_index(v)] += 1;
        d.count += 1;
        d.sum = d.sum.wrapping_add(v);
    }

    pub fn count(&self) -> u64 {
        self.0.borrow().count
    }

    pub fn sum(&self) -> u64 {
        self.0.borrow().sum
    }

    pub fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        self.0.borrow().buckets
    }

    fn zero(&self) {
        *self.0.borrow_mut() = HistData::new();
    }

    /// Fold a snapshot's samples into this histogram. Snapshot buckets are
    /// keyed by their bounds, which map back to bucket indices exactly, so
    /// absorbing is lossless with respect to the log₂ resolution; the exact
    /// sum is carried over from the snapshot.
    fn absorb(&self, snap: &HistogramSnapshot) {
        let mut d = self.0.borrow_mut();
        for &(lo, _, c) in &snap.buckets {
            d.buckets[bucket_index(lo)] += c;
        }
        d.count += snap.count;
        d.sum = d.sum.wrapping_add(snap.sum);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let d = self.0.borrow();
        let buckets = d
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
            .collect();
        HistogramSnapshot {
            count: d.count,
            sum: d.sum,
            buckets,
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, Counter>,
    gauges: BTreeMap<&'static str, Gauge>,
    histograms: BTreeMap<&'static str, Histogram>,
}

thread_local! {
    static REGISTRY: RefCell<Registry> = RefCell::new(Registry::default());
    static SPANS: RefCell<SpanCollector> = RefCell::new(SpanCollector::default());
}

/// Intern (or fetch) the counter with this name in the thread's registry.
pub fn counter(name: &'static str) -> Counter {
    REGISTRY.with(|r| r.borrow_mut().counters.entry(name).or_default().clone())
}

/// Intern (or fetch) the gauge with this name.
pub fn gauge(name: &'static str) -> Gauge {
    REGISTRY.with(|r| r.borrow_mut().gauges.entry(name).or_default().clone())
}

/// Intern (or fetch) the histogram with this name.
pub fn histogram(name: &'static str) -> Histogram {
    REGISTRY.with(|r| r.borrow_mut().histograms.entry(name).or_default().clone())
}

/// Current value of a counter (interning it if absent, value 0).
pub fn counter_value(name: &'static str) -> u64 {
    counter(name).get()
}

/// Zero every metric in the thread's registry, preserving all handed-out
/// handles (they share the underlying cells).
pub fn reset() {
    REGISTRY.with(|r| {
        let r = r.borrow();
        for c in r.counters.values() {
            c.zero();
        }
        for g in r.gauges.values() {
            g.zero();
        }
        for h in r.histograms.values() {
            h.zero();
        }
    });
}

// ---------------------------------------------------------------------------
// Snapshots + JSON export
// ---------------------------------------------------------------------------

/// Point-in-time copy of one histogram: only non-empty buckets are retained,
/// each as `(lo, hi, count)` with inclusive bounds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<(u64, u64, u64)>,
}

/// Point-in-time copy of the whole registry, ordered by metric name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Take a snapshot of the thread's registry.
pub fn snapshot() -> Snapshot {
    REGISTRY.with(|r| {
        let r = r.borrow();
        Snapshot {
            counters: r
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            gauges: r
                .gauges
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            histograms: r
                .histograms
                .iter()
                .map(|(k, v)| (k.to_string(), v.snapshot()))
                .collect(),
        }
    })
}

impl HistogramSnapshot {
    /// Combine another histogram snapshot into this one: bucket counts are
    /// added by bucket (keyed on bounds), counts and sums accumulate.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut by_lo: BTreeMap<u64, (u64, u64)> = self
            .buckets
            .iter()
            .map(|&(lo, hi, c)| (lo, (hi, c)))
            .collect();
        for &(lo, hi, c) in &other.buckets {
            by_lo.entry(lo).or_insert((hi, 0)).1 += c;
        }
        self.buckets = by_lo.into_iter().map(|(lo, (hi, c))| (lo, hi, c)).collect();
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// The samples recorded here but not in `base`, where `base` is an
    /// earlier snapshot of the *same* histogram (bucket counts subtract;
    /// the result of subtracting an unrelated snapshot is meaningless).
    /// Saturating, so a torn base never underflows.
    pub fn delta(&self, base: &HistogramSnapshot) -> HistogramSnapshot {
        let base_by_lo: BTreeMap<u64, u64> =
            base.buckets.iter().map(|&(lo, _, c)| (lo, c)).collect();
        let buckets = self
            .buckets
            .iter()
            .filter_map(|&(lo, hi, c)| {
                let rem = c.saturating_sub(base_by_lo.get(&lo).copied().unwrap_or(0));
                (rem > 0).then_some((lo, hi, rem))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.saturating_sub(base.count),
            sum: self.sum.wrapping_sub(base.sum),
            buckets,
        }
    }

    /// Quantile `q` in `[0, 1]` as the upper bound of the bucket where the
    /// cumulative count crosses `ceil(q * count)` — a ≤2× overestimate by
    /// log₂ construction (documented in `docs/bench-format.md`). 0 when
    /// the histogram is empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(_, hi, count) in &self.buckets {
            cum += count;
            if cum >= target {
                return hi;
            }
        }
        self.buckets.last().map(|&(_, hi, _)| hi).unwrap_or(0)
    }
}

/// Fold a snapshot (typically taken on a finished worker thread) into the
/// *calling thread's* registry, so worker counters roll up into the
/// coordinator's report. Counters and histograms accumulate; gauges add,
/// which treats each thread's gauge as an independent contribution.
pub fn absorb(snap: &Snapshot) {
    for (name, v) in &snap.counters {
        if *v > 0 {
            counter(intern_name(name)).add(*v);
        }
    }
    for (name, v) in &snap.gauges {
        if *v != 0 {
            gauge(intern_name(name)).add(*v);
        }
    }
    for (name, h) in &snap.histograms {
        if h.count > 0 {
            histogram(intern_name(name)).absorb(h);
        }
    }
}

/// Registry keys are `&'static str` so hot-path handles never hash strings.
/// Snapshot keys arrive as owned strings; interning leaks each *distinct*
/// name at most once per process, and metric names are a small closed set.
fn intern_name(name: &str) -> &'static str {
    thread_local! {
        static INTERNED: RefCell<BTreeMap<String, &'static str>> =
            const { RefCell::new(BTreeMap::new()) };
    }
    INTERNED.with(|m| {
        let mut m = m.borrow_mut();
        if let Some(&s) = m.get(name) {
            return s;
        }
        let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
        m.insert(name.to_string(), leaked);
        leaked
    })
}

impl Snapshot {
    /// Combine another registry snapshot into this one. Counters and
    /// histogram samples accumulate; gauges add (per-thread contributions).
    /// Merging is associative and commutative, so worker snapshots can be
    /// folded in any order and serialize bit-identically to the same
    /// events recorded on a single thread.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// The events recorded here but not in `base`, where `base` is an
    /// earlier snapshot of the same (or a merged-subset) registry — the
    /// sampler's per-interval delta. Counters and histogram samples
    /// subtract (saturating); gauges subtract signed, treating the delta
    /// as the gauge's movement over the interval. Metrics absent from
    /// `base` pass through whole; zero-valued deltas are dropped so an
    /// idle interval stays an empty snapshot.
    pub fn delta(&self, base: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for (name, &v) in &self.counters {
            let d = v.saturating_sub(base.counters.get(name).copied().unwrap_or(0));
            if d > 0 {
                out.counters.insert(name.clone(), d);
            }
        }
        for (name, &v) in &self.gauges {
            let d = v.wrapping_sub(base.gauges.get(name).copied().unwrap_or(0));
            if d != 0 {
                out.gauges.insert(name.clone(), d);
            }
        }
        for (name, h) in &self.histograms {
            let d = match base.histograms.get(name) {
                Some(b) => h.delta(b),
                None => h.clone(),
            };
            if d.count > 0 {
                out.histograms.insert(name.clone(), d);
            }
        }
        out
    }

    pub fn to_json(&self) -> String {
        self.to_json_with(None)
    }

    /// JSON export; with `Some(provenance)` a `"provenance"` header object is
    /// emitted first (schema documented in `docs/bench-format.md`).
    pub fn to_json_with(&self, provenance: Option<&Provenance>) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        if let Some(p) = provenance {
            let _ = writeln!(s, "  \"provenance\": {},", p.to_json());
        }
        s.push_str("  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\n    \"{}\": {}", json::escape(k), v);
        }
        s.push_str(if first { "},\n" } else { "\n  },\n" });
        s.push_str("  \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\n    \"{}\": {}", json::escape(k), v);
        }
        s.push_str(if first { "},\n" } else { "\n  },\n" });
        s.push_str("  \"histograms\": {");
        first = true;
        for (k, h) in &self.histograms {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(
                s,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                json::escape(k),
                h.count,
                h.sum
            );
            for (i, (lo, hi, c)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{{\"lo\": {lo}, \"hi\": {hi}, \"count\": {c}}}");
            }
            s.push_str("]}");
        }
        s.push_str(if first { "}\n" } else { "\n  }\n" });
        s.push('}');
        s
    }
}

// ---------------------------------------------------------------------------
// Provenance
// ---------------------------------------------------------------------------

/// Reproducibility header attached to exported measurement JSON: which
/// workload produced the numbers, under which seed and scale, by which build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    pub seed: u64,
    pub workload: String,
    pub objects: u64,
    pub version: String,
}

impl Provenance {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seed\": {}, \"workload\": \"{}\", \"objects\": {}, \"version\": \"{}\"}}",
            self.seed,
            json::escape(&self.workload),
            self.objects,
            json::escape(&self.version)
        )
    }
}

/// Build a git-describe-able tool version string. Tries `git describe
/// --always --dirty` (cheap, local-only); falls back to the bare package
/// version when git or the repository is unavailable (e.g. from a source
/// tarball).
pub fn tool_version(pkg_version: &str) -> String {
    let described = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty());
    match described {
        Some(d) => format!("{pkg_version}+g{d}"),
        None => pkg_version.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// A finished, timed span with its nested children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    pub name: &'static str,
    pub nanos: u64,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"name\": \"{}\", \"nanos\": {}, \"children\": [",
            json::escape(self.name),
            self.nanos
        );
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&c.to_json());
        }
        s.push_str("]}");
        s
    }

    /// Depth-first lookup of the first descendant (or self) with this name.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

struct OpenSpan {
    name: &'static str,
    started: Instant,
    children: Vec<SpanNode>,
}

/// Finished root spans are capped so an undrained collector (e.g. inside a
/// bench loop) stays bounded; the oldest roots are shed first.
const FINISHED_ROOTS_CAP: usize = 64;

#[derive(Default)]
struct SpanCollector {
    stack: Vec<OpenSpan>,
    finished: Vec<SpanNode>,
}

/// RAII guard for a timed span. Create with [`Span::enter`]; the span closes
/// when the guard drops. Guards must drop in LIFO order (the natural scoping
/// order) — interleaved drops mis-attribute children to the wrong parent.
pub struct Span {
    // !Send: spans belong to the thread-local collector they were opened on.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Span {
    pub fn enter(name: &'static str) -> Span {
        SPANS.with(|s| {
            s.borrow_mut().stack.push(OpenSpan {
                name,
                started: Instant::now(),
                children: Vec::new(),
            });
        });
        Span {
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        SPANS.with(|s| {
            let mut s = s.borrow_mut();
            let Some(open) = s.stack.pop() else {
                return; // take_spans() or unbalanced drop already cleared it
            };
            let node = SpanNode {
                name: open.name,
                nanos: open.started.elapsed().as_nanos() as u64,
                children: open.children,
            };
            if let Some(parent) = s.stack.last_mut() {
                parent.children.push(node);
            } else {
                s.finished.push(node);
                if s.finished.len() > FINISHED_ROOTS_CAP {
                    let excess = s.finished.len() - FINISHED_ROOTS_CAP;
                    s.finished.drain(..excess);
                }
            }
        });
    }
}

/// Drain all finished root spans collected on this thread, oldest first.
pub fn take_spans() -> Vec<SpanNode> {
    SPANS.with(|s| std::mem::take(&mut s.borrow_mut().finished))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handle_survives_reset() {
        let c = counter("test.counter.survives");
        c.add(5);
        assert_eq!(c.get(), 5);
        reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(counter_value("test.counter.survives"), 1);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = gauge("test.gauge");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        reset();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_bucket_edges() {
        // Spot-check the documented bucket layout.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(64), (1u64 << 63, u64::MAX));
    }

    #[test]
    fn histogram_records() {
        let h = histogram("test.hist");
        for v in [0u64, 1, 2, 3, 100, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1_000_106);
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], 1); // 0
        assert_eq!(buckets[1], 1); // 1
        assert_eq!(buckets[2], 2); // 2, 3
        assert_eq!(buckets.iter().sum::<u64>(), h.count());
    }

    #[test]
    fn spans_nest_and_drain() {
        {
            let _root = Span::enter("root");
            {
                let _a = Span::enter("a");
                let _b = Span::enter("b");
            }
            let _c = Span::enter("c");
        }
        let roots = take_spans();
        let root = roots.last().expect("root span retained");
        assert_eq!(root.name, "root");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "a");
        assert_eq!(root.children[0].children[0].name, "b");
        assert_eq!(root.children[1].name, "c");
        assert!(root.find("b").is_some());
        assert!(take_spans().is_empty(), "drain empties the collector");
    }

    #[test]
    fn finished_roots_are_capped() {
        take_spans();
        for _ in 0..(FINISHED_ROOTS_CAP + 10) {
            let _s = Span::enter("loop");
        }
        assert_eq!(take_spans().len(), FINISHED_ROOTS_CAP);
    }

    #[test]
    fn snapshot_orders_by_name() {
        reset();
        counter("test.z").inc();
        counter("test.a").add(2);
        let snap = snapshot();
        let keys: Vec<_> = snap.counters.keys().cloned().collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(snap.counters["test.a"], 2);
    }

    #[test]
    fn json_round_trip() {
        reset();
        counter("rt.pages").add(123);
        counter("rt.seeks").add(7);
        gauge("rt.depth").set(-4);
        let h = histogram("rt.hist");
        for v in [0u64, 1, 5, 5, 900] {
            h.record(v);
        }
        let prov = Provenance {
            seed: 42,
            workload: "uniform-scan".to_string(),
            objects: 5000,
            version: tool_version("0.1.0"),
        };
        let text = snapshot().to_json_with(Some(&prov));
        let parsed = json::parse(&text).expect("export must parse");

        let p = parsed.get("provenance").expect("provenance header");
        assert_eq!(p.get("seed").and_then(|v| v.as_u64()), Some(42));
        assert_eq!(
            p.get("workload").and_then(|v| v.as_str()),
            Some("uniform-scan")
        );
        assert_eq!(p.get("objects").and_then(|v| v.as_u64()), Some(5000));
        assert!(p.get("version").and_then(|v| v.as_str()).is_some());

        let counters = parsed.get("counters").expect("counters object");
        assert_eq!(counters.get("rt.pages").and_then(|v| v.as_u64()), Some(123));
        assert_eq!(counters.get("rt.seeks").and_then(|v| v.as_u64()), Some(7));
        assert_eq!(
            parsed
                .get("gauges")
                .and_then(|g| g.get("rt.depth"))
                .and_then(|v| v.as_f64()),
            Some(-4.0)
        );

        let hist = parsed
            .get("histograms")
            .and_then(|h| h.get("rt.hist"))
            .expect("histogram entry");
        assert_eq!(hist.get("count").and_then(|v| v.as_u64()), Some(5));
        assert_eq!(hist.get("sum").and_then(|v| v.as_u64()), Some(911));
        let buckets = hist
            .get("buckets")
            .and_then(|b| b.as_arr())
            .expect("buckets array");
        let total: u64 = buckets
            .iter()
            .map(|b| b.get("count").and_then(|v| v.as_u64()).unwrap())
            .sum();
        assert_eq!(total, 5, "bucket counts must add up to the sample count");
    }

    /// The canonical multi-thread roll-up: a workload split across worker
    /// threads, merged (or absorbed), must serialize bit-identically to the
    /// same events recorded on one thread.
    #[test]
    fn merge_round_trip_matches_single_threaded() {
        fn record_part_a() {
            counter("mrt.pages").add(100);
            counter("mrt.seeks").add(3);
            gauge("mrt.depth").add(2);
            let h = histogram("mrt.lat");
            for v in [0u64, 4, 17] {
                h.record(v);
            }
        }
        fn record_part_b() {
            counter("mrt.pages").add(55);
            counter("mrt.only_b").inc();
            gauge("mrt.depth").add(5);
            let h = histogram("mrt.lat");
            for v in [17u64, 900, 1] {
                h.record(v);
            }
        }

        // Ground truth: both parts on one registry.
        reset();
        record_part_a();
        record_part_b();
        let want = snapshot().to_json();

        // Worker split: part B on its own thread, snapshotted there.
        reset();
        record_part_a();
        let mut mine = snapshot();
        let theirs = std::thread::spawn(|| {
            record_part_b();
            snapshot()
        })
        .join()
        .unwrap();

        let mut merged = mine.clone();
        merged.merge(&theirs);
        assert_eq!(merged.to_json(), want, "merge must be exact");

        // Commuted order merges identically.
        let mut commuted = theirs.clone();
        commuted.merge(&mine);
        assert_eq!(commuted.to_json(), want, "merge must commute");

        // absorb() folds into the live registry with the same result.
        reset();
        absorb(&mine);
        absorb(&theirs);
        assert_eq!(snapshot().to_json(), want, "absorb must match merge");

        // Merging the empty snapshot is the identity.
        let before = mine.to_json();
        mine.merge(&Snapshot::default());
        assert_eq!(mine.to_json(), before);
    }

    /// delta is the inverse of merge: for cumulative snapshots a ⊆ b,
    /// a.merge(b.delta(a)) reproduces b exactly.
    #[test]
    fn delta_inverts_merge() {
        reset();
        counter("dl.pages").add(10);
        gauge("dl.depth").set(3);
        let h = histogram("dl.lat");
        for v in [1u64, 5, 5] {
            h.record(v);
        }
        let a = snapshot();
        counter("dl.pages").add(7);
        counter("dl.new").add(2);
        gauge("dl.depth").set(1);
        for v in [5u64, 900] {
            h.record(v);
        }
        let b = snapshot();

        let d = b.delta(&a);
        assert_eq!(d.counters.get("dl.pages"), Some(&7));
        assert_eq!(d.counters.get("dl.new"), Some(&2));
        assert_eq!(d.gauges.get("dl.depth"), Some(&-2));
        let dh = &d.histograms["dl.lat"];
        assert_eq!(dh.count, 2);
        assert_eq!(dh.sum, 905);

        let mut rebuilt = a.clone();
        rebuilt.merge(&d);
        assert_eq!(rebuilt.to_json(), b.to_json(), "a + (b - a) == b");

        // Self-delta is empty.
        let zero = b.delta(&b);
        assert!(zero.counters.is_empty());
        assert!(zero.gauges.is_empty());
        assert!(zero.histograms.is_empty());
    }

    #[test]
    fn percentile_on_snapshots() {
        let h = Histogram::default();
        assert_eq!(h.snapshot().percentile(0.99), 0, "empty histogram");
        // 99 fast samples and one slow one: p50 stays in the fast bucket,
        // p999 reaches the slow bucket's upper bound.
        for _ in 0..99 {
            h.record(10);
        }
        h.record(5000);
        let s = h.snapshot();
        assert_eq!(s.percentile(0.50), bucket_bounds(bucket_index(10)).1);
        assert_eq!(s.percentile(0.999), bucket_bounds(bucket_index(5000)).1);
        // q=0 clamps to the first sample, q=1 to the last.
        assert_eq!(s.percentile(0.0), bucket_bounds(bucket_index(10)).1);
        assert_eq!(s.percentile(1.0), bucket_bounds(bucket_index(5000)).1);
    }

    mod props {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            // Satellite: every recorded value lands in exactly one bucket and
            // that bucket's bounds contain it.
            #[test]
            fn value_lands_in_exactly_one_bucket(v in any::<u64>()) {
                let mut containing = 0usize;
                for i in 0..HIST_BUCKETS {
                    let (lo, hi) = bucket_bounds(i);
                    if v >= lo && v <= hi {
                        containing += 1;
                        prop_assert_eq!(bucket_index(v), i);
                    }
                }
                prop_assert_eq!(containing, 1);
            }

            // Bucket totals always match the sample count, sum matches input.
            #[test]
            fn totals_match_count(values in proptest::collection::vec(any::<u64>(), 0..64)) {
                let h = Histogram::default();
                let mut expect_sum = 0u64;
                for &v in &values {
                    h.record(v);
                    expect_sum = expect_sum.wrapping_add(v);
                }
                prop_assert_eq!(h.count(), values.len() as u64);
                prop_assert_eq!(h.sum(), expect_sum);
                prop_assert_eq!(h.bucket_counts().iter().sum::<u64>(), values.len() as u64);
            }
        }
    }
}
