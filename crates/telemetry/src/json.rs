//! Minimal JSON value model + recursive-descent parser.
//!
//! Exists so telemetry exports can be *verified to round-trip* without any
//! external dependency: the exporter in `lib.rs` emits, this module parses.
//! Numbers are held as `f64` (exact for integers up to 2^53, which covers
//! every counter this workspace realistically produces in one run).

/// Parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as u64, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Escape a string for embedding in a JSON document (content only, no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(&c) => Err(format!("unexpected byte {:?} at {}", c as char, *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|e| format!("bad \\u escape: {e}"))?;
                        // BMP only — sufficient for metric names and versions.
                        out.push(char::from_u32(code).ok_or("surrogate in \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 scalar (metric names are ASCII, but
                // workload names may not be).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -12.5 ").unwrap(), Json::Num(-12.5));
        assert_eq!(
            parse("\"a\\n\\\"b\\\"\"").unwrap(),
            Json::Str("a\n\"b\"".to_string())
        );
    }

    #[test]
    fn parses_nested() {
        let doc = r#"{"a": [1, 2, {"b": "c"}], "d": {}}"#;
        let v = parse(doc).unwrap();
        let arr = v.get("a").and_then(|a| a.as_arr()).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").and_then(|b| b.as_str()), Some("c"));
        assert_eq!(
            v.get("d").and_then(|d| d.as_obj()).map(|m| m.len()),
            Some(0)
        );
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap(), Json::Str(nasty.to_string()));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse("\"open").is_err());
    }
}
