//! Long-lived [`DatabaseReader`] lifetime audit: a serving process keeps
//! reader handles (and, between queries, pinned snapshots) alive across
//! many writer epochs. A pinned snapshot must pin version-store memory
//! proportional to the *pages* it can reach, never to the number of
//! writer epochs it survives — and the footprint must revert completely
//! once the oldest snapshot is refreshed (the server's fresh-snapshot-
//! per-query pattern makes that refresh continuous).

use objstore::Value;
use schema::{AttrType, Schema};
use uindex::{Database, IndexSpec, Query, ValuePred};

const COLORS: [&str; 6] = ["Red", "Blue", "Green", "Black", "White", "Silver"];

fn build_db(n: usize) -> Database {
    let mut s = Schema::new();
    let vehicle = s.add_class("Vehicle").unwrap();
    s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
    let mut db = Database::with_page_size(s, 256, 4096).unwrap();
    let vehicle = db.schema().class_by_name("Vehicle").unwrap();
    db.define_index(IndexSpec::class_hierarchy("color", vehicle, "Color"))
        .unwrap();
    for i in 0..n {
        let v = db.create_object(vehicle).unwrap();
        db.set_attr(v, "Color", Value::Str(COLORS[i % COLORS.len()].into()))
            .unwrap();
    }
    db
}

#[test]
fn held_snapshot_footprint_is_bounded_and_reverts_on_refresh() {
    let mut db = build_db(400);
    let vehicle = db.schema().class_by_name("Vehicle").unwrap();
    let reader = db.reader();

    // The "oldest server snapshot": pinned while the writer churns.
    let pinned = reader.snapshot();
    let pinned_epoch = pinned.epoch();
    let q = Query::on(0).value(ValuePred::eq(Value::Str("Red".into())));
    let (pinned_hits, _) = reader.query_at(&pinned, &q).unwrap();

    // Every mutation below publishes an epoch; recoloring a stable object
    // population keeps the tree size (and so the page set) steady.
    let mut counts = Vec::new();
    let mut oid_cycle = db.store().extent(vehicle);
    oid_cycle.sort();
    for round in 0..150usize {
        for k in 0..4 {
            let oid = oid_cycle[(round * 4 + k) % oid_cycle.len()];
            let color = COLORS[(round + k + 1) % COLORS.len()];
            db.set_attr(oid, "Color", Value::Str(color.into())).unwrap();
        }
        counts.push(db.index().tree().tracker().version_count());
    }

    // Bounded by pages, not epochs: after the early intervals preserve the
    // snapshot's reachable pages once, the count must plateau instead of
    // growing with every one of the 600 published epochs.
    let live_pages = db.index().tree().pool().live_pages();
    let max = *counts.iter().max().unwrap();
    assert!(
        max <= live_pages,
        "one pinned snapshot retains {max} versions over {live_pages} live \
         pages — version store grows with epochs"
    );
    // Rounds 0..100 cycle through every object once; by round 120 every
    // reachable leaf has been preserved, so late rounds must be flat.
    let (mid, end) = (counts[120], counts[149]);
    assert!(
        end <= mid + 4,
        "version count still climbing late in the run ({mid} -> {end})"
    );

    // The pinned snapshot answers for its own epoch throughout.
    let (hits_now, _) = reader.query_at(&pinned, &q).unwrap();
    assert_eq!(pinned_hits, hits_now, "pinned epoch {pinned_epoch} drifted");

    // Refresh the oldest snapshot: drop + re-pin, then one more published
    // mutation. Footprint must revert to (at most) the pages of the single
    // publish interval in flight.
    drop(pinned);
    let fresh = reader.snapshot();
    let oid = oid_cycle[0];
    db.set_attr(oid, "Color", Value::Str("Red".into())).unwrap();
    let tracker = db.index().tree().tracker();
    let after_refresh = tracker.version_count();
    assert!(
        after_refresh <= 16,
        "footprint did not revert after refresh: {after_refresh} versions \
         still pinned (was {end} while held)"
    );
    assert_eq!(tracker.active_snapshots(), 1);

    // Quiesce fully: no snapshots, next publish clears everything.
    drop(fresh);
    db.set_attr(oid, "Color", Value::Str("Blue".into()))
        .unwrap();
    let tracker = db.index().tree().tracker();
    assert_eq!(tracker.version_count(), 0);
    assert_eq!(tracker.pending_frees(), 0);
    let stats = db.index().verify().unwrap();
    assert_eq!(
        db.index().tree().pool().live_pages(),
        stats.total_nodes(),
        "page leak after reader quiescence"
    );
}
