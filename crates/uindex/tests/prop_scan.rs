//! Property test of the retrieval machinery: random two-position path
//! entries, random queries over values / class selectors / OID selectors,
//! checked against a brute-force filter — and the parallel algorithm must
//! agree with forward scanning while never reading more pages.

use btree::BTreeConfig;
use objstore::{Oid, Value};
use pagestore::{BufferPool, MemStore};
use proptest::prelude::*;
use schema::{AttrType, ClassId, Encoding, Schema};
use uindex::{ClassSel, EntryKey, IndexSpec, OidSel, PathElem, Query, UIndex, ValuePred};

/// Fixture: X (with X0, X1 sub-classes) is referenced by Y (with Y0, Y1).
struct Fixture {
    index: UIndex<MemStore>,
    /// [X, X0, X1]
    xs: Vec<ClassId>,
    /// [Y, Y0, Y1]
    ys: Vec<ClassId>,
    entries: Vec<EntryKey>,
    schema: Schema,
}

fn build(raw_entries: &[(i64, u8, u32, u8, u32)]) -> Fixture {
    let mut s = Schema::new();
    let x = s.add_class("X").unwrap();
    s.add_attr(x, "V", AttrType::Int).unwrap();
    let x0 = s.add_subclass("X0", x).unwrap();
    let x1 = s.add_subclass("X1", x).unwrap();
    let y = s.add_class("Y").unwrap();
    s.add_attr(y, "ToX", AttrType::Ref(x)).unwrap();
    let y0 = s.add_subclass("Y0", y).unwrap();
    let y1 = s.add_subclass("Y1", y).unwrap();
    let enc = Encoding::generate(&s).unwrap();
    let pool = BufferPool::new(MemStore::new(256), 1 << 14);
    let mut index = UIndex::new(pool, BTreeConfig::default(), enc).unwrap();
    let spec = IndexSpec::path("p", y, &["ToX"], "V").build(&s).unwrap();
    let id = index.define(&s, spec).unwrap();
    assert_eq!(id, 0);
    let xs = vec![x, x0, x1];
    let ys = vec![y, y0, y1];
    let entries: Vec<EntryKey> = raw_entries
        .iter()
        .map(|(v, xc, xo, yc, yo)| EntryKey {
            index_id: 0,
            value: Value::Int(*v),
            path: vec![
                PathElem {
                    code: index
                        .encoding()
                        .code(xs[(*xc % 3) as usize])
                        .unwrap()
                        .as_bytes()
                        .to_vec(),
                    oid: Oid(*xo % 50 + 1),
                },
                PathElem {
                    code: index
                        .encoding()
                        .code(ys[(*yc % 3) as usize])
                        .unwrap()
                        .as_bytes()
                        .to_vec(),
                    oid: Oid(*yo % 50 + 1),
                },
            ],
        })
        .collect();
    index.bulk_load_entries(&entries).unwrap();
    // Deduplicate the reference list the same way the tree does.
    let mut deduped = entries.clone();
    deduped.sort_by_key(|e| e.encode().unwrap());
    deduped.dedup_by_key(|e| e.encode().unwrap());
    Fixture {
        index,
        xs,
        ys,
        entries: deduped,
        schema: s,
    }
}

#[derive(Debug, Clone)]
struct RawQuery {
    value: u8, // 0 any, 1 eq, 2 range, 3 in
    v1: i64,
    v2: i64,
    xsel: u8, // 0 any, 1 exact, 2 subtree, 3 anyof
    xclass: u8,
    ysel: u8,
    yclass: u8,
    xoid: Option<u32>,
    yoids: Vec<u32>,
}

fn arb_query() -> impl Strategy<Value = RawQuery> {
    (
        0u8..4,
        -5i64..15,
        -5i64..15,
        0u8..4,
        0u8..3,
        0u8..4,
        0u8..3,
        proptest::option::of(0u32..60),
        proptest::collection::vec(0u32..60, 0..4),
    )
        .prop_map(
            |(value, v1, v2, xsel, xclass, ysel, yclass, xoid, yoids)| RawQuery {
                value,
                v1,
                v2,
                xsel,
                xclass,
                ysel,
                yclass,
                xoid,
                yoids,
            },
        )
}

fn build_query(f: &Fixture, rq: &RawQuery) -> Query {
    let mut q = Query::on(0);
    q = match rq.value {
        1 => q.value(ValuePred::eq(Value::Int(rq.v1))),
        2 => {
            let (lo, hi) = if rq.v1 <= rq.v2 {
                (rq.v1, rq.v2)
            } else {
                (rq.v2, rq.v1)
            };
            q.value(ValuePred::between(Value::Int(lo), Value::Int(hi)))
        }
        3 => q.value(ValuePred::In(vec![Value::Int(rq.v1), Value::Int(rq.v2)])),
        _ => q,
    };
    let sel = |kind: u8, class: u8, classes: &[ClassId]| match kind {
        1 => Some(ClassSel::Exact(classes[class as usize])),
        2 => Some(ClassSel::SubTree(classes[class as usize])),
        3 => Some(ClassSel::AnyOf(vec![
            ClassSel::Exact(classes[1]),
            ClassSel::Exact(classes[2]),
        ])),
        _ => None,
    };
    if let Some(s) = sel(rq.xsel, rq.xclass, &f.xs) {
        q = q.class_at(0, s);
    }
    if let Some(s) = sel(rq.ysel, rq.yclass, &f.ys) {
        q = q.class_at(1, s);
    }
    if let Some(o) = rq.xoid {
        q = q.oid_at(0, OidSel::Is(Oid(o % 50 + 1)));
    }
    if !rq.yoids.is_empty() {
        q = q.oid_at(
            1,
            OidSel::In(rq.yoids.iter().map(|o| Oid(o % 50 + 1)).collect()),
        );
    }
    q
}

/// Naive evaluation over the entry list.
fn brute(f: &Fixture, rq: &RawQuery) -> Vec<Vec<u8>> {
    let value_ok = |v: &Value| -> bool {
        let Value::Int(i) = v else { return false };
        match rq.value {
            1 => *i == rq.v1,
            2 => {
                let (lo, hi) = if rq.v1 <= rq.v2 {
                    (rq.v1, rq.v2)
                } else {
                    (rq.v2, rq.v1)
                };
                (lo..=hi).contains(i)
            }
            3 => *i == rq.v1 || *i == rq.v2,
            _ => true,
        }
    };
    let class_ok = |kind: u8, class: u8, classes: &[ClassId], actual: ClassId| match kind {
        1 => actual == classes[class as usize],
        2 => f.schema.is_subclass_of(actual, classes[class as usize]),
        3 => actual == classes[1] || actual == classes[2],
        _ => true,
    };
    f.entries
        .iter()
        .filter(|e| {
            if !value_ok(&e.value) {
                return false;
            }
            let xclass = f.index.encoding().class_by_code(&e.path[0].code).unwrap();
            let yclass = f.index.encoding().class_by_code(&e.path[1].code).unwrap();
            class_ok(rq.xsel, rq.xclass, &f.xs, xclass)
                && class_ok(rq.ysel, rq.yclass, &f.ys, yclass)
                && rq.xoid.is_none_or(|o| e.path[0].oid == Oid(o % 50 + 1))
                && (rq.yoids.is_empty()
                    || rq.yoids.iter().any(|o| e.path[1].oid == Oid(o % 50 + 1)))
        })
        .map(|e| e.encode().unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parallel_forward_and_brute_force_agree(
        raw_entries in proptest::collection::vec(
            (0i64..10, any::<u8>(), any::<u32>(), any::<u8>(), any::<u32>()),
            0..250,
        ),
        queries in proptest::collection::vec(arb_query(), 1..6),
    ) {
        let f = build(&raw_entries);
        for rq in &queries {
            let q = build_query(&f, rq);
            let (par_hits, par_stats) = f.index.query(&q).unwrap();
            let (fwd_hits, fwd_stats) = f.index.query(&q.clone().forward_scan()).unwrap();
            prop_assert_eq!(&par_hits, &fwd_hits, "algorithms disagree on {:?}", rq);
            prop_assert!(par_stats.pages_read <= fwd_stats.pages_read);
            let mut got: Vec<Vec<u8>> =
                par_hits.iter().map(|h| h.key.encode().unwrap()).collect();
            got.sort();
            let mut want = brute(&f, rq);
            want.sort();
            prop_assert_eq!(got, want, "brute force disagrees on {:?}", rq);
        }
    }
}
