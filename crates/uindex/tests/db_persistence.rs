//! Whole-database persistence: save to a directory, reopen, query.

use objstore::Value;
use schema::{AttrType, Schema};
use uindex::{distinct_oids_at, ClassSel, Database, IndexSpec, Query, ValuePred};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("uindex_db_{}_{}", std::process::id(), name));
    p
}

#[test]
fn save_open_roundtrip() {
    let dir = tmpdir("roundtrip");
    let (vehicle_names, red_count) = {
        let mut s = Schema::new();
        let employee = s.add_class("Employee").unwrap();
        s.add_attr(employee, "Age", AttrType::Int).unwrap();
        let company = s.add_class("Company").unwrap();
        s.add_attr(company, "President", AttrType::Ref(employee))
            .unwrap();
        let vehicle = s.add_class("Vehicle").unwrap();
        s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
        s.add_attr(vehicle, "MadeBy", AttrType::Ref(company))
            .unwrap();
        let auto = s.add_subclass("Automobile", vehicle).unwrap();

        let mut db = Database::in_memory(s).unwrap();
        db.define_index(IndexSpec::class_hierarchy("color", vehicle, "Color"))
            .unwrap();
        db.define_index(IndexSpec::path(
            "age",
            vehicle,
            &["MadeBy", "President"],
            "Age",
        ))
        .unwrap();
        let e = db.create_object(employee).unwrap();
        db.set_attr(e, "Age", Value::Int(55)).unwrap();
        let c = db.create_object(company).unwrap();
        db.set_attr(c, "President", Value::Ref(e)).unwrap();
        let mut red = 0;
        for i in 0..200 {
            let class = if i % 2 == 0 { vehicle } else { auto };
            let v = db.create_object(class).unwrap();
            let color = if i % 3 == 0 { "Red" } else { "Blue" };
            if color == "Red" {
                red += 1;
            }
            db.set_attr(v, "Color", Value::Str(color.into())).unwrap();
            db.set_attr(v, "MadeBy", Value::Ref(c)).unwrap();
        }
        db.save(&dir).unwrap();
        (["color", "age"].map(String::from), red)
    };

    let mut db = Database::open(&dir).unwrap();
    // Indexes rebuilt under their original names and ids.
    for (i, name) in vehicle_names.iter().enumerate() {
        assert_eq!(db.index().index_by_name(name), Some(i as u16));
    }
    let vehicle = db.schema().class_by_name("Vehicle").unwrap();
    let auto = db.schema().class_by_name("Automobile").unwrap();
    let hits = db
        .query(&Query::on(0).value(ValuePred::eq(Value::Str("Red".into()))))
        .unwrap();
    assert_eq!(hits.len(), red_count);
    let hits = db
        .query(
            &Query::on(0)
                .value(ValuePred::eq(Value::Str("Red".into())))
                .class_at(0, ClassSel::Exact(auto)),
        )
        .unwrap();
    assert!(!hits.is_empty() && hits.len() < red_count);
    // The path index works end to end after reload.
    let hits = db
        .query(
            &Query::on(1)
                .value(ValuePred::at_least(Value::Int(50)))
                .class_at(2, ClassSel::SubTree(vehicle)),
        )
        .unwrap();
    assert_eq!(distinct_oids_at(&hits, 2).len(), 200);
    // And stays maintained under new mutations.
    let v = db.create_object(vehicle).unwrap();
    db.set_attr(v, "Color", Value::Str("Red".into())).unwrap();
    let hits = db
        .query(&Query::on(0).value(ValuePred::eq(Value::Str("Red".into()))))
        .unwrap();
    assert_eq!(hits.len(), red_count + 1);
    db.index_mut().verify().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn open_missing_or_corrupt_fails() {
    let dir = tmpdir("corrupt");
    assert!(Database::open(&dir).is_err());
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("objects.bin"), b"garbage").unwrap();
    std::fs::write(dir.join("specs.bin"), b"garbage").unwrap();
    assert!(Database::open(&dir).is_err());
    std::fs::remove_dir_all(&dir).ok();
}
