//! Reset-semantics audit (ISSUE 4 satellite 1): per-query counters must be
//! per-query. Running the same query twice in a row must report identical
//! `ScanStats` and `QueryTrace` numbers — nothing may accumulate from the
//! previous scan — and the repeat run must match a fresh database executing
//! the query once (modulo buffer-pool warmth, which is why `pages_read`
//! compares run 2 vs run 3, not run 1).

use objstore::Value;
use schema::{AttrType, Schema};
use uindex::{ClassSel, Database, IndexSpec, Query, ScanAlgorithm, ValuePred};

fn build_db() -> (Database, uindex::IndexId, schema::ClassId) {
    let mut s = Schema::new();
    let vehicle = s.add_class("Vehicle").unwrap();
    s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
    let auto = s.add_subclass("Automobile", vehicle).unwrap();
    let truck = s.add_subclass("Truck", vehicle).unwrap();
    let mut db = Database::in_memory(s).unwrap();
    let idx = db
        .define_index(IndexSpec::class_hierarchy("color", vehicle, "Color"))
        .unwrap();
    let colors = ["Red", "Blue", "Green", "White", "Black"];
    for i in 0..200u32 {
        let class = match i % 3 {
            0 => vehicle,
            1 => auto,
            _ => truck,
        };
        let o = db.create_object(class).unwrap();
        db.set_attr(
            o,
            "Color",
            Value::Str(colors[i as usize % colors.len()].into()),
        )
        .unwrap();
    }
    (db, idx, auto)
}

fn skipping_query(idx: uindex::IndexId, auto: schema::ClassId) -> Query {
    // Class-restricted so the parallel scan actually issues skips.
    Query::on(idx)
        .value(ValuePred::between(
            Value::Str("Blue".into()),
            Value::Str("Red".into()),
        ))
        .class_at(0, ClassSel::SubTree(auto))
}

#[test]
fn consecutive_queries_do_not_accumulate() {
    for alg in [
        ScanAlgorithm::Parallel,
        ScanAlgorithm::ParallelFlat,
        ScanAlgorithm::Forward,
    ] {
        let (mut db, idx, auto) = build_db();
        let mut q = skipping_query(idx, auto);
        q.algorithm = alg;

        let (hits1, stats1, trace1) = db.index_mut().query_traced(&q).unwrap();
        let (hits2, stats2, trace2) = db.index_mut().query_traced(&q).unwrap();

        assert_eq!(hits1, hits2, "{alg:?}: same query, same hits");
        assert_eq!(
            stats1, stats2,
            "{alg:?}: ScanStats must reset between queries"
        );
        assert!(
            stats1.entries_examined > 0,
            "{alg:?}: premise — the query does real work"
        );

        // Trace fields carry per-query numbers too (deltas, not totals).
        assert_eq!(trace1.entries_examined, trace2.entries_examined, "{alg:?}");
        assert_eq!(trace1.matches, trace2.matches, "{alg:?}");
        assert_eq!(trace1.skips, trace2.skips, "{alg:?}");
        assert_eq!(trace1.descents, trace2.descents, "{alg:?}");
        assert_eq!(trace1.node_visits, trace2.node_visits, "{alg:?}");
        assert_eq!(
            trace1.partial_keys_expanded, trace2.partial_keys_expanded,
            "{alg:?}"
        );
        assert_eq!(
            (trace1.reseeks_leaf + trace1.reseeks_lca + trace1.reseeks_full),
            (trace2.reseeks_leaf + trace2.reseeks_lca + trace2.reseeks_full),
            "{alg:?}: reseek tier totals are per-query"
        );

        // A fresh database running the query once agrees with the repeat run
        // on every warmth-independent counter, and on pages_read once the
        // fresh pool has been warmed by its own first run.
        let (mut fresh, fidx, fauto) = build_db();
        let mut fq = skipping_query(fidx, fauto);
        fq.algorithm = alg;
        let (_, _, _warmup) = fresh.index_mut().query_traced(&fq).unwrap();
        let (fhits, fstats, _) = fresh.index_mut().query_traced(&fq).unwrap();
        assert_eq!(hits2, fhits, "{alg:?}: deterministic build, same hits");
        assert_eq!(
            stats2, fstats,
            "{alg:?}: repeat run equals a fresh-db warmed run"
        );
    }
}

#[test]
fn seek_stats_are_per_query_not_accumulated() {
    // Seek statistics ride on each query's cursor now, so a repeat of the
    // same query must report identical numbers — any accumulation across
    // queries (the old global-counter failure mode) would double them.
    let (mut db, idx, auto) = build_db();
    let q = skipping_query(idx, auto);
    let (_, first, _) = db.index_mut().query_traced(&q).unwrap();
    let (_, second, _) = db.index_mut().query_traced(&q).unwrap();
    assert_eq!(
        first, second,
        "per-cursor SeekStats must not accumulate across queries"
    );
}
