//! Multi-threaded oracle torture: K scanner threads race one mutator
//! through the full `Database` stack (and the disk tier, with commits and
//! background checkpoints thrown in). Every scan runs against an epoch
//! snapshot and must equal the brute-force oracle's answer for exactly
//! that epoch — no torn reads, no lost entries, no cross-epoch bleed.
//!
//! Protocol: the mutator records the oracle's answers for the query set
//! keyed by the tree epoch right after each mutation publishes; scanners
//! pin a snapshot, wait for its epoch's answers to appear (the map insert
//! can lag the publish by a few instructions), and compare.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use objstore::{Oid, Value};
use schema::{AttrType, Schema};
use uindex::{
    parallel_query, Database, DatabaseReader, DiskDatabase, DiskOptions, IndexSpec, Query,
    QueryHit, ValuePred,
};

const COLORS: [&str; 5] = ["Red", "Blue", "Green", "Black", "White"];

fn vehicle_schema() -> Schema {
    let mut s = Schema::new();
    let vehicle = s.add_class("Vehicle").unwrap();
    s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
    s
}

fn color_queries(db: &Database<impl pagestore::PageStore>) -> Vec<Query> {
    let idx = db.index().index_by_name("color").unwrap();
    COLORS
        .iter()
        .map(|c| Query::on(idx).value(ValuePred::eq(Value::Str((*c).into()))))
        .collect()
}

fn oracle_answers<P: pagestore::PageStore>(
    db: &Database<P>,
    queries: &[Query],
) -> Vec<Vec<QueryHit>> {
    queries
        .iter()
        .map(|q| uindex::oracle::eval(db.index(), db.store(), q).unwrap())
        .collect()
}

struct ExpectedMap {
    by_epoch: Mutex<BTreeMap<u64, Vec<Vec<QueryHit>>>>,
    done: AtomicBool,
}

/// One scanner thread body: snapshot, wait for that epoch's oracle
/// answers, compare every query, repeat until the mutator finishes.
fn scan_loop<P: pagestore::PageStore + Send + Sync>(
    reader: &DatabaseReader<P>,
    queries: &[Query],
    expected: &ExpectedMap,
) -> u64 {
    let mut scans = 0u64;
    loop {
        let finished = expected.done.load(Ordering::Acquire);
        let snap = reader.snapshot();
        let want = loop {
            if let Some(w) = expected.by_epoch.lock().unwrap().get(&snap.epoch()) {
                break w.clone();
            }
            // The publish happened; the map insert is a few instructions
            // behind. (Never reached after `done`: the mutator sets it
            // only after its last epoch is recorded.)
            std::thread::yield_now();
        };
        for (q, want) in queries.iter().zip(&want) {
            let (hits, _) = reader.query_at(&snap, q).unwrap();
            assert_eq!(
                hits,
                *want,
                "scan diverged from the oracle at epoch {}",
                snap.epoch()
            );
        }
        scans += 1;
        if finished {
            return scans;
        }
    }
}

/// Deterministic mutator step: create, recolor, or delete.
fn mutate<P: pagestore::PageStore>(
    db: &mut Database<P>,
    live: &mut Vec<Oid>,
    vehicle: schema::ClassId,
    seed: &mut u64,
) {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let roll = *seed >> 33;
    if live.len() < 8 || roll.is_multiple_of(3) {
        let v = db.create_object(vehicle).unwrap();
        db.set_attr(v, "Color", Value::Str(COLORS[(roll % 5) as usize].into()))
            .unwrap();
        live.push(v);
    } else if roll % 3 == 1 {
        let v = live[(roll % live.len() as u64) as usize];
        db.set_attr(v, "Color", Value::Str(COLORS[(roll % 5) as usize].into()))
            .unwrap();
    } else {
        let v = live.swap_remove((roll % live.len() as u64) as usize);
        db.delete_object(v, true).unwrap();
    }
}

fn torture<P, C>(mut db: Database<P>, scanners: usize, rounds: usize, mut on_round: C)
where
    P: pagestore::PageStore + Send + Sync,
    C: FnMut(&mut Database<P>),
{
    let vehicle = db.schema().class_by_name("Vehicle").unwrap();
    db.define_index(IndexSpec::class_hierarchy("color", vehicle, "Color"))
        .unwrap();
    let mut live = Vec::new();
    let mut seed = 0x5DEECE66Du64;
    for _ in 0..30 {
        mutate(&mut db, &mut live, vehicle, &mut seed);
    }
    let queries = color_queries(&db);
    let reader = db.reader();

    let expected = ExpectedMap {
        by_epoch: Mutex::new(BTreeMap::new()),
        done: AtomicBool::new(false),
    };
    expected
        .by_epoch
        .lock()
        .unwrap()
        .insert(db.index().tree().epoch(), oracle_answers(&db, &queries));

    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for _ in 0..scanners {
            let reader = reader.clone();
            let (queries, expected) = (&queries, &expected);
            workers.push(scope.spawn(move || scan_loop(&reader, queries, expected)));
        }

        for _ in 0..rounds {
            for _ in 0..5 {
                mutate(&mut db, &mut live, vehicle, &mut seed);
                // Each mutation published an epoch; record its answers
                // before the next mutation so scanners can always match.
                expected
                    .by_epoch
                    .lock()
                    .unwrap()
                    .insert(db.index().tree().epoch(), oracle_answers(&db, &queries));
            }
            on_round(&mut db);
        }
        expected.done.store(true, Ordering::Release);

        for w in workers {
            let scans = w.join().unwrap();
            assert!(scans > 0, "scanner exited without scanning");
        }
    });

    // Quiesced: everything reclaimable was reclaimed, the tree verifies,
    // and no page leaked.
    drop(reader);
    db.index_mut().tree_mut().publish().unwrap();
    let tracker = db.index().tree().tracker();
    assert_eq!(tracker.active_snapshots(), 0);
    assert_eq!(tracker.pending_frees(), 0);
    assert_eq!(tracker.version_count(), 0);
    let stats = db.index().verify().unwrap();
    assert_eq!(
        db.index().tree().pool().live_pages(),
        stats.total_nodes(),
        "page leak after quiescence"
    );
}

#[test]
fn send_sync_static_assertions() {
    fn assert_send<T: Send>() {}
    fn assert_send_sync<T: Send + Sync>() {}
    // The store stacks under both tiers.
    assert_send_sync::<uindex::DbStore>();
    assert_send_sync::<uindex::DiskStore>();
    // Whole databases can move across threads; readers can be shared.
    assert_send::<Database<uindex::DbStore>>();
    assert_send::<DiskDatabase>();
    assert_send_sync::<DatabaseReader<uindex::DbStore>>();
    assert_send_sync::<DatabaseReader<uindex::DiskStore>>();
    assert_send::<uindex::DbSnapshot>();
}

#[test]
fn scanners_race_mutator_memory_tier() {
    let db = Database::with_page_size(vehicle_schema(), 256, 4096).unwrap();
    torture(db, 4, 30, |_| {});
}

#[test]
fn scanners_race_mutator_disk_tier_with_commits() {
    let mut p = std::env::temp_dir();
    p.push(format!("uindex_torture_disk_{}", std::process::id()));
    let dir: PathBuf = p;
    std::fs::remove_dir_all(&dir).ok();
    let options = DiskOptions {
        page_size: 256,
        pool_pages: 1024,
        group_commit: 4,
        checkpoint_every: 2,
        ..DiskOptions::default()
    };
    let mut disk = DiskDatabase::create(vehicle_schema(), &dir, options).unwrap();
    disk.enable_background_checkpoints();
    // Commit (and so signal the background checkpointer) every round,
    // while four scanners stream over their snapshots.
    {
        let db_rounds = 15;
        let vehicle = disk.schema().class_by_name("Vehicle").unwrap();
        disk.define_index(IndexSpec::class_hierarchy("color", vehicle, "Color"))
            .unwrap();
        let mut live = Vec::new();
        let mut seed = 0x2545F4914F6CDD1Du64;
        for _ in 0..30 {
            mutate(&mut disk, &mut live, vehicle, &mut seed);
        }
        disk.commit().unwrap();
        let queries = color_queries(&disk);
        let reader = disk.reader();
        let expected = ExpectedMap {
            by_epoch: Mutex::new(BTreeMap::new()),
            done: AtomicBool::new(false),
        };
        expected
            .by_epoch
            .lock()
            .unwrap()
            .insert(disk.index().tree().epoch(), oracle_answers(&disk, &queries));

        std::thread::scope(|scope| {
            let mut workers = Vec::new();
            for _ in 0..4 {
                let reader = reader.clone();
                let (queries, expected) = (&queries, &expected);
                workers.push(scope.spawn(move || scan_loop(&reader, queries, expected)));
            }
            for _ in 0..db_rounds {
                for _ in 0..5 {
                    mutate(&mut disk, &mut live, vehicle, &mut seed);
                    expected
                        .by_epoch
                        .lock()
                        .unwrap()
                        .insert(disk.index().tree().epoch(), oracle_answers(&disk, &queries));
                }
                disk.commit().unwrap();
            }
            expected.done.store(true, Ordering::Release);
            for w in workers {
                assert!(w.join().unwrap() > 0);
            }
        });

        drop(reader);
    }
    // Clean shutdown and reopen: the racing checkpoints must leave a
    // store that comes back verbatim.
    let n = disk.store().len();
    disk.close().unwrap();
    let (reopened, report) = DiskDatabase::open(&dir).unwrap();
    assert!(report.clean(), "{report:?}");
    assert_eq!(reopened.store().len(), n);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parallel_query_matches_single_threaded() {
    let mut db = Database::with_page_size(vehicle_schema(), 256, 4096).unwrap();
    let vehicle = db.schema().class_by_name("Vehicle").unwrap();
    db.define_index(IndexSpec::class_hierarchy("color", vehicle, "Color"))
        .unwrap();
    for i in 0..300 {
        let v = db.create_object(vehicle).unwrap();
        db.set_attr(v, "Color", Value::Str(COLORS[i % 5].into()))
            .unwrap();
    }
    let reader = db.reader();

    // A mixed stream: every color several times over.
    let base = color_queries(&db);
    let stream: Vec<Query> = (0..40).map(|i| base[i % base.len()].clone()).collect();

    let single = parallel_query(&reader, &stream, 1).unwrap();
    for threads in [2, 4, 8] {
        let multi = parallel_query(&reader, &stream, threads).unwrap();
        assert_eq!(single.len(), multi.len());
        for (i, (s, m)) in single.iter().zip(&multi).enumerate() {
            assert_eq!(s.0, m.0, "query {i}: hits differ at {threads} threads");
            assert_eq!(
                s.1, m.1,
                "query {i}: per-query stats differ at {threads} threads"
            );
        }
    }
}
