//! The §4.1 extension: the schema catalog lives in the same B-tree, making
//! a persisted U-index fully self-describing — build on a file, reopen from
//! the pages alone, and query.

use btree::BTreeConfig;
use objstore::{ObjectStore, Value};
use pagestore::{BufferPool, FileStore};
use schema::{AttrType, Encoding, Schema};
use uindex::{catalog_entry_count, ClassSel, IndexSpec, Query, UIndex, ValuePred};

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("uindex_catalog_{}_{}", std::process::id(), name));
    p
}

fn sample_schema() -> Schema {
    let mut s = Schema::new();
    let employee = s.add_class("Employee").unwrap();
    s.add_attr(employee, "Age", AttrType::Int).unwrap();
    let company = s.add_class("Company").unwrap();
    s.add_attr(company, "President", AttrType::Ref(employee))
        .unwrap();
    let _auto_co = s.add_subclass("AutoCompany", company).unwrap();
    let vehicle = s.add_class("Vehicle").unwrap();
    s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
    s.add_attr(vehicle, "MadeBy", AttrType::Ref(company))
        .unwrap();
    let _auto = s.add_subclass("Automobile", vehicle).unwrap();
    s
}

#[test]
fn save_reload_roundtrip_in_memory() {
    let schema = sample_schema();
    let vehicle = schema.class_by_name("Vehicle").unwrap();
    let automobile = schema.class_by_name("Automobile").unwrap();
    let encoding = Encoding::generate(&schema).unwrap();
    let pool = BufferPool::new(pagestore::MemStore::new(1024), 1 << 14);
    let mut index = UIndex::new(pool, BTreeConfig::default(), encoding).unwrap();
    index
        .define(
            &schema,
            IndexSpec::class_hierarchy("color", vehicle, "Color")
                .build(&schema)
                .unwrap(),
        )
        .unwrap();
    index
        .define(
            &schema,
            IndexSpec::path("age", vehicle, &["MadeBy", "President"], "Age")
                .build(&schema)
                .unwrap(),
        )
        .unwrap();

    // Populate through an object store, then save the catalog.
    let mut store = ObjectStore::new(schema.clone());
    let v = store.create(automobile).unwrap();
    store
        .set_attr(v, "Color", Value::Str("Red".into()))
        .unwrap();
    index.build(&store, 0).unwrap();
    let n = index.save_catalog(&schema).unwrap();
    assert!(n >= 10, "classes + attrs + sups + specs: got {n}");
    assert_eq!(catalog_entry_count(&mut index).unwrap(), n as usize);

    // Saving twice does not duplicate.
    let n2 = index.save_catalog(&schema).unwrap();
    assert_eq!(n, n2);
    assert_eq!(catalog_entry_count(&mut index).unwrap(), n as usize);
}

#[test]
fn reopen_from_file_and_query() {
    let path = tmp("reopen");
    let schema = sample_schema();
    let vehicle = schema.class_by_name("Vehicle").unwrap();
    let automobile = schema.class_by_name("Automobile").unwrap();

    // Session 1: build, populate, save catalog, flush.
    let (root, len) = {
        let encoding = Encoding::generate(&schema).unwrap();
        let store_file = FileStore::create(&path, 1024).unwrap();
        let pool = BufferPool::new(store_file, 512);
        let mut index = UIndex::new(pool, BTreeConfig::default(), encoding).unwrap();
        index
            .define(
                &schema,
                IndexSpec::class_hierarchy("color", vehicle, "Color")
                    .build(&schema)
                    .unwrap(),
            )
            .unwrap();
        let mut store = ObjectStore::new(schema.clone());
        for (class, color) in [(vehicle, "Red"), (automobile, "Red"), (automobile, "Blue")] {
            let o = store.create(class).unwrap();
            store
                .set_attr(o, "Color", Value::Str(color.into()))
                .unwrap();
        }
        index.build(&store, 0).unwrap();
        index.save_catalog(&schema).unwrap();
        index.tree().pool().flush().unwrap();
        (index.tree().root(), index.tree().len())
    };

    // Session 2: reopen from pages alone; schema, encoding, and spec come
    // back from the catalog.
    let store_file = FileStore::open(&path).unwrap();
    let pool = BufferPool::new(store_file, 512);
    let (index, schema2) =
        UIndex::open_with_catalog(pool, BTreeConfig::default(), root, len).unwrap();
    assert_eq!(schema2.num_classes(), schema.num_classes());
    for c in schema.class_ids() {
        assert_eq!(schema2.class_name(c), schema.class_name(c));
        assert_eq!(schema2.parents(c), schema.parents(c));
    }
    assert_eq!(index.specs().len(), 1);
    assert_eq!(index.specs()[0].name, "color");

    let vehicle2 = schema2.class_by_name("Vehicle").unwrap();
    let automobile2 = schema2.class_by_name("Automobile").unwrap();
    let (hits, _) = index
        .query(
            &Query::on(0)
                .value(ValuePred::eq(Value::Str("Red".into())))
                .class_at(0, ClassSel::SubTree(vehicle2)),
        )
        .unwrap();
    assert_eq!(hits.len(), 2);
    let (hits, _) = index
        .query(
            &Query::on(0)
                .value(ValuePred::eq(Value::Str("Red".into())))
                .class_at(0, ClassSel::SubTree(automobile2)),
        )
        .unwrap();
    assert_eq!(hits.len(), 1);
    std::fs::remove_file(&path).ok();
}

#[test]
fn catalog_facts_cluster_by_code() {
    // The paper's point: SUP/attribute facts about one class hierarchy are
    // one contiguous key range. Check that the catalog entries for the
    // Vehicle sub-tree sit between those of other hierarchies.
    let schema = sample_schema();
    let vehicle = schema.class_by_name("Vehicle").unwrap();
    let encoding = Encoding::generate(&schema).unwrap();
    let (lo, hi) = encoding.subtree_range(vehicle).unwrap();
    let pool = BufferPool::new(pagestore::MemStore::new(1024), 1 << 14);
    let mut index = UIndex::new(pool, BTreeConfig::default(), encoding).unwrap();
    index.save_catalog(&schema).unwrap();

    // All class-fact entries for the Vehicle hierarchy are contiguous.
    let mut prefix = uindex::CATALOG_ID.to_be_bytes().to_vec();
    prefix.push(1); // TAG_CLASS
    let class_entries = index.tree_mut().prefix_scan(&prefix).unwrap();
    let in_range: Vec<bool> = class_entries
        .iter()
        .map(|(k, _)| {
            let code = &k[3..k.len() - 3];
            code >= lo.as_slice() && code < hi.as_slice()
        })
        .collect();
    assert_eq!(in_range.iter().filter(|&&b| b).count(), 2); // Vehicle + Automobile
                                                            // Contiguity: the true values form one run.
    let first = in_range.iter().position(|&b| b).unwrap();
    let last = in_range.iter().rposition(|&b| b).unwrap();
    assert!(in_range[first..=last].iter().all(|&b| b));
}
