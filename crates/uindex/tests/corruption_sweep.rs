//! Silent-corruption sweep over a ~5000-object database.
//!
//! Part one damages **every live index page with every silent fault kind**
//! (bit rot, torn write, misdirected write, stale read) below the checksum
//! layer and asserts the scrub detects each one with the trailer field
//! that names the root cause. Part two runs the full resilience cycle on
//! representative pages per fault kind: damage → `check` quarantines →
//! queries degrade to object-store scans *with unchanged answers* →
//! `repair` rebuilds the index from the object store → all scan
//! algorithms agree with the pre-damage answers again.

use objstore::Value;
use pagestore::{Error, Fault, PageStore};
use schema::{AttrType, ClassId, Schema};
use uindex::{ClassSel, Database, IndexId, IndexSpec, Query, QueryHit, ScanAlgorithm, ValuePred};

const EMPLOYEES: usize = 50;
const COMPANIES: usize = 50;
const VEHICLES: usize = 4900;

const COLORS: [&str; 7] = ["Red", "Blue", "White", "Green", "Black", "Silver", "Amber"];

struct Fixture {
    db: Database,
    color: IndexId,
    age: IndexId,
    automobile: ClassId,
}

/// A 5000-object database (employees, companies, vehicles) with a
/// class-hierarchy index and a path index sharing the one B-tree.
/// Pre-image tracking is enabled before the first flush so the
/// stale-read fault has lost-write states to roll back to.
fn build() -> Fixture {
    let mut s = Schema::new();
    let employee = s.add_class("Employee").unwrap();
    s.add_attr(employee, "Age", AttrType::Int).unwrap();
    let company = s.add_class("Company").unwrap();
    s.add_attr(company, "President", AttrType::Ref(employee))
        .unwrap();
    let vehicle = s.add_class("Vehicle").unwrap();
    s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
    s.add_attr(vehicle, "MadeBy", AttrType::Ref(company))
        .unwrap();
    let automobile = s.add_subclass("Automobile", vehicle).unwrap();
    let truck = s.add_subclass("Truck", vehicle).unwrap();

    let mut db = Database::in_memory(s).unwrap();
    db.index()
        .tree()
        .pool()
        .store_lock()
        .inner_mut()
        .track_preimages(true);

    let color = db
        .define_index(IndexSpec::class_hierarchy("color", vehicle, "Color"))
        .unwrap();
    let age = db
        .define_index(IndexSpec::path(
            "v-age",
            vehicle,
            &["MadeBy", "President"],
            "Age",
        ))
        .unwrap();

    let mut employees = Vec::new();
    for i in 0..EMPLOYEES {
        let e = db.create_object(employee).unwrap();
        db.set_attr(e, "Age", Value::Int(20 + (i as i64 * 7) % 50))
            .unwrap();
        employees.push(e);
    }
    let mut companies = Vec::new();
    for i in 0..COMPANIES {
        let c = db.create_object(company).unwrap();
        db.set_attr(c, "President", Value::Ref(employees[(i * 13) % EMPLOYEES]))
            .unwrap();
        companies.push(c);
    }
    for i in 0..VEHICLES {
        let class = match i % 3 {
            0 => vehicle,
            1 => automobile,
            _ => truck,
        };
        let v = db.create_object(class).unwrap();
        db.set_attr(v, "Color", Value::Str(COLORS[i % COLORS.len()].into()))
            .unwrap();
        db.set_attr(v, "MadeBy", Value::Ref(companies[(i * 31) % COMPANIES]))
            .unwrap();
    }
    Fixture {
        db,
        color,
        age,
        automobile,
    }
}

fn query_set(f: &Fixture) -> Vec<Query> {
    vec![
        Query::on(f.color).value(ValuePred::eq(Value::Str("Red".into()))),
        Query::on(f.color)
            .value(ValuePred::between(
                Value::Str("B".into()),
                Value::Str("S".into()),
            ))
            .class_at(0, ClassSel::SubTree(f.automobile)),
        Query::on(f.age).value(ValuePred::at_least(Value::Int(40))),
        Query::on(f.age)
            .value(ValuePred::eq(Value::Int(41)))
            .distinct_through(1),
    ]
}

/// Run every query under every scan algorithm; all algorithms must agree
/// per query, and the per-query answers are returned for later equality
/// checks against degraded and post-repair runs. Forward scans do not
/// skip, so distinct queries are normalized through the oracle's
/// [`uindex::oracle::distinct_filter`] (a no-op on already-deduped hits).
fn answers(db: &mut Database, queries: &[Query]) -> Vec<Vec<QueryHit>> {
    let mut out = Vec::new();
    for q in queries {
        let mut per_alg = Vec::new();
        for alg in [
            ScanAlgorithm::Parallel,
            ScanAlgorithm::ParallelFlat,
            ScanAlgorithm::Forward,
        ] {
            let mut q = q.clone();
            q.algorithm = alg;
            let mut hits = db.query(&q).unwrap();
            if let Some(pos) = q.distinct_upto {
                hits = uindex::oracle::distinct_filter(&hits, pos);
            }
            per_alg.push(hits);
        }
        assert_eq!(per_alg[0], per_alg[1], "Parallel vs ParallelFlat: {q:?}");
        assert_eq!(per_alg[0], per_alg[2], "Parallel vs Forward: {q:?}");
        out.push(per_alg.swap_remove(0));
    }
    out
}

/// Damage every live page with every silent fault kind in turn (restoring
/// the raw bytes between rounds): the scrub must flag exactly the damaged
/// page, with the trailer field that identifies the fault's root cause.
#[test]
fn every_page_and_every_fault_kind_is_detected() {
    let f = build();
    let pool = f.db.index().tree().pool();
    pool.flush().unwrap();
    pool.invalidate_cache().unwrap();
    let mut store = pool.store_lock();
    let ids = store.live_page_ids();
    assert!(ids.len() >= 64, "fixture too small: {} pages", ids.len());
    let full_ps = store.inner().page_size();

    let mut failures: Vec<String> = Vec::new();
    for (i, &page) in ids.iter().enumerate() {
        let victim = ids[(i + 1) % ids.len()];
        let kinds = [
            ("bit-flip", Fault::BitFlip { bit: i * 97 + 5 }, "crc"),
            ("torn-write", Fault::TornWrite { bytes: full_ps / 3 }, "crc"),
            (
                "misdirected-write",
                Fault::MisdirectedWrite { victim },
                "page-id",
            ),
            ("stale-read", Fault::StaleRead, "epoch"),
        ];
        for (name, fault, want_what) in kinds {
            let mut before = vec![0u8; full_ps];
            store
                .inner_mut()
                .inner_mut()
                .read(page, &mut before)
                .unwrap();
            store.inner_mut().damage_now(page, fault).unwrap();
            match store.scrub_page(page) {
                Err(Error::Corruption {
                    page: flagged,
                    what,
                    ..
                }) => {
                    if flagged != page || what != want_what {
                        failures.push(format!(
                            "{name} on {page:?}: flagged {flagged:?} as {what}, \
                             expected {want_what}"
                        ));
                    }
                }
                other => failures.push(format!("{name} on {page:?}: {other:?}")),
            }
            // Restore below the fault layer so the next round starts clean
            // and the fault layer's pre-images stay untouched.
            store.inner_mut().inner_mut().write(page, &before).unwrap();
            store
                .scrub_page(page)
                .unwrap_or_else(|e| panic!("restore of {page:?} left damage: {e}"));
        }
    }
    assert!(failures.is_empty(), "undetected damage:\n{failures:#?}");
    let report = store.scrub();
    assert!(report.clean(), "sweep left residual damage: {report:?}");
}

/// The full resilience cycle, once per fault kind: damage representative
/// pages, `check` quarantines, degraded queries answer from the object
/// store with unchanged results, `repair` restores indexed service and
/// every scan algorithm agrees with the pre-damage answers.
#[test]
fn quarantine_degrade_repair_cycle() {
    let mut f = build();
    let queries = query_set(&f);
    let clean = answers(&mut f.db, &queries);
    assert!(
        clean.iter().any(|hits| !hits.is_empty()),
        "query set never matches; fixture is vacuous"
    );
    let degraded_queries_before = telemetry::counter_value("uindex.degraded.queries");
    let repairs_before = telemetry::counter_value("uindex.degraded.repairs");

    // Stale-read first: it needs the build-time pool, whose fault layer
    // recorded pre-images; `repair` swaps in a fresh untracked pool.
    for round in ["stale-read", "bit-flip", "torn-write", "misdirected-write"] {
        {
            let pool = f.db.index().tree().pool();
            pool.flush().unwrap();
            pool.invalidate_cache().unwrap();
            let mut store = pool.store_lock();
            let ids = store.live_page_ids();
            assert!(ids.len() >= 16, "{round}: fixture too small");
            let targets = [0, ids.len() / 2, ids.len() - 1];
            for (j, &t) in targets.iter().enumerate() {
                let fault = match round {
                    "stale-read" => Fault::StaleRead,
                    "bit-flip" => Fault::BitFlip { bit: 311 * j + 3 },
                    "torn-write" => Fault::TornWrite { bytes: 64 + 32 * j },
                    _ => Fault::MisdirectedWrite {
                        victim: ids[(t + 1) % ids.len()],
                    },
                };
                store.inner_mut().damage_now(ids[t], fault).unwrap();
            }
        }

        let report = f.db.check().unwrap();
        assert!(!report.clean(), "{round}: damage went undetected");
        assert!(
            !report.scrub.errors.is_empty(),
            "{round}: scrub missed the damaged pages: {report:?}"
        );
        assert!(report.quarantined && f.db.quarantined());

        // Quarantined: every query degrades to an object-store scan and
        // must still produce exactly the clean answers.
        for (q, want) in queries.iter().zip(&clean) {
            let (hits, _, _, degraded) = f.db.query_traced_guarded(q).unwrap();
            assert!(degraded, "{round}: quarantined query used the index");
            assert_eq!(&hits, want, "{round}: degraded answer diverged: {q:?}");
        }

        let entries = f.db.repair().unwrap();
        assert!(entries > 0, "{round}: repair rebuilt an empty index");
        assert!(!f.db.quarantined());
        let report = f.db.check().unwrap();
        assert!(
            report.clean(),
            "{round}: post-repair check failed: {report:?}"
        );
        assert_eq!(
            answers(&mut f.db, &queries),
            clean,
            "{round}: post-repair answers diverged"
        );
    }

    assert!(
        telemetry::counter_value("uindex.degraded.queries")
            >= degraded_queries_before + 4 * queries.len() as u64,
        "degraded queries not counted"
    );
    assert!(
        telemetry::counter_value("uindex.degraded.repairs") >= repairs_before + 4,
        "repairs not counted"
    );
}

/// Total-loss scenario: every live page damaged at once. The very first
/// indexed query trips over the corruption, auto-quarantines, and the
/// answer still comes back correct from the object store.
#[test]
fn total_index_loss_auto_quarantines_mid_query() {
    let mut f = build();
    let queries = query_set(&f);
    let clean = answers(&mut f.db, &queries);

    {
        let pool = f.db.index().tree().pool();
        pool.flush().unwrap();
        pool.invalidate_cache().unwrap();
        let mut store = pool.store_lock();
        for (i, page) in store.live_page_ids().into_iter().enumerate() {
            store
                .inner_mut()
                .damage_now(page, Fault::BitFlip { bit: i * 13 + 1 })
                .unwrap();
        }
    }

    // No check() ran: the query itself must hit the corruption (the root
    // is damaged like everything else), quarantine, and fall back.
    let (hits, _, _, degraded) = f.db.query_traced_guarded(&queries[0]).unwrap();
    assert!(degraded, "query on a fully damaged index did not degrade");
    assert!(
        f.db.quarantined(),
        "corruption did not quarantine the index"
    );
    assert_eq!(hits, clean[0], "degraded answer diverged from clean run");

    // Salvage never walks the wreck: repair rebuilds from the object store.
    let entries = f.db.repair().unwrap();
    assert!(entries > 0);
    assert_eq!(answers(&mut f.db, &queries), clean);
    assert!(f.db.check().unwrap().clean());
}
