//! Background checkpointing: checkpoints move off the commit path onto a
//! dedicated thread, which must only ever run at commit boundaries and
//! whose races with the writer (and with crashes) must be invisible —
//! every directory snapshot taken while the thread is live has to reopen
//! to exactly the committed state.

use std::path::{Path, PathBuf};

use objstore::Value;
use schema::{AttrType, Schema};
use uindex::{DiskDatabase, DiskOptions, IndexSpec};

fn tmpdir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("uindex_bg_ckpt_{}_{}", std::process::id(), name));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn vehicle_schema() -> Schema {
    let mut s = Schema::new();
    let vehicle = s.add_class("Vehicle").unwrap();
    s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
    s
}

const COLORS: [&str; 5] = ["Red", "Blue", "Green", "Black", "White"];

fn add_batch(db: &mut DiskDatabase, batch: usize, per_batch: usize) {
    let vehicle = db.schema().class_by_name("Vehicle").unwrap();
    for i in 0..per_batch {
        let v = db.create_object(vehicle).unwrap();
        let color = COLORS[(batch * per_batch + i) % COLORS.len()];
        db.set_attr(v, "Color", Value::Str(color.into())).unwrap();
    }
}

/// Copy a live database directory, file by file — a crash image. Files
/// may vanish mid-copy (`write_atomic`'s rename); a racing background
/// checkpoint may leave any individual file torn. Both are exactly what
/// a real crash produces, and `open` must cope.
fn snapshot_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        if name.to_string_lossy().ends_with(".tmp") {
            continue; // mid-rename scratch file; a crash can lose it too
        }
        match std::fs::copy(entry.path(), dst.join(&name)) {
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => panic!("copying {name:?}: {e}"),
        }
    }
}

#[test]
fn background_checkpoints_replace_inline_ones() {
    let dir = tmpdir("off_commit_path");
    let options = DiskOptions {
        page_size: 256,
        pool_pages: 256,
        group_commit: 1,
        checkpoint_every: 2,
        ..DiskOptions::default()
    };
    let mut db = DiskDatabase::create(vehicle_schema(), &dir, options).unwrap();
    let vehicle = db.schema().class_by_name("Vehicle").unwrap();
    db.define_index(IndexSpec::class_hierarchy("color", vehicle, "Color"))
        .unwrap();
    db.commit().unwrap();
    db.enable_background_checkpoints();
    assert!(db.background_checkpoints_enabled());

    // Inline checkpoints are counted in this thread's telemetry registry;
    // from here on none should happen (the fallback cap is 4 intervals
    // and the background thread keeps up easily).
    let inline_before = telemetry::counter_value("pagestore.wal.checkpoints");
    for batch in 0..10 {
        add_batch(&mut db, batch, 3);
        db.commit().unwrap();
    }
    // The commit path only signals; wait for the thread to catch up.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while db.background_checkpoints_completed() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "background thread never checkpointed (skipped {})",
            db.background_checkpoints_skipped()
        );
        std::thread::yield_now();
    }
    assert_eq!(
        telemetry::counter_value("pagestore.wal.checkpoints"),
        inline_before,
        "commits checkpointed inline despite the background thread"
    );

    db.close().unwrap();
    let (db, report) = DiskDatabase::open(&dir).unwrap();
    assert!(report.clean(), "{report:?}");
    assert_eq!(db.store().len(), 30);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_mid_background_checkpoint_reopens_clean() {
    let dir = tmpdir("crash_mid_bg");
    let options = DiskOptions {
        page_size: 256,
        pool_pages: 256,
        group_commit: 1,
        checkpoint_every: 1, // signal the thread on *every* commit
        ..DiskOptions::default()
    };
    let mut db = DiskDatabase::create(vehicle_schema(), &dir, options).unwrap();
    let vehicle = db.schema().class_by_name("Vehicle").unwrap();
    db.define_index(IndexSpec::class_hierarchy("color", vehicle, "Color"))
        .unwrap();
    db.commit().unwrap();
    db.enable_background_checkpoints();

    // After every commit, image the directory while the background
    // checkpointer races in: each image is a crash taken at an arbitrary
    // point of a checkpoint's page-file writes.
    let per_batch = 4;
    let rounds = 8;
    let mut images = Vec::new();
    for batch in 0..rounds {
        add_batch(&mut db, batch, per_batch);
        db.commit().unwrap();
        let img = tmpdir(&format!("crash_mid_bg_img{batch}"));
        snapshot_dir(&dir, &img);
        images.push(img);
    }
    drop(db); // crash the writer too: no close, background thread killed

    for (batch, img) in images.iter().enumerate() {
        let (mut db, report) = DiskDatabase::open(img).unwrap();
        // A torn page-file image is allowed to trigger a rebuild from the
        // object snapshot — but never a failure, and never data loss.
        assert!(
            report.tree_ok,
            "image {batch}: open did not produce a working tree: {report:?}"
        );
        assert_eq!(
            db.store().len(),
            (batch + 1) * per_batch,
            "image {batch}: committed objects lost (rebuilt={})",
            report.rebuilt
        );
        let check = db.check().unwrap();
        assert!(check.clean(), "image {batch}: {check:?}");
        std::fs::remove_dir_all(img).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}
