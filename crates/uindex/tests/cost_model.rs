//! Empirical validation of the §4.2 cost model: every measured query cost
//! must fall within the analytic bounds, across a battery of query shapes
//! on a realistic database.

use objstore::Value;
use schema::{AttrType, ClassId, Schema};
use uindex::analysis::{class_groups, CostModel};
use uindex::{ClassSel, Database, IndexSpec, Query, ValuePred};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build() -> (Database, Vec<ClassId>, u16) {
    let mut s = Schema::new();
    let root = s.add_class("Item").unwrap();
    s.add_attr(root, "Score", AttrType::Int).unwrap();
    let mut classes = vec![root];
    for i in 0..6 {
        classes.push(s.add_subclass(&format!("Sub{i}"), root).unwrap());
    }
    // A deeper branch under Sub0.
    classes.push(s.add_subclass("Deep", classes[1]).unwrap());
    let mut db = Database::in_memory(s).unwrap();
    let idx = db
        .define_index(IndexSpec::class_hierarchy("score", root, "Score"))
        .unwrap();
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..6000 {
        let class = classes[rng.gen_range(0..classes.len())];
        let o = db.create_object(class).unwrap();
        db.set_attr(o, "Score", Value::Int(rng.gen_range(0..200)))
            .unwrap();
    }
    (db, classes, idx)
}

#[test]
fn measured_costs_respect_bounds() {
    let (mut db, classes, idx) = build();
    let stats = db.index_mut().verify().unwrap();
    let model = CostModel::from_stats(&stats);

    // (query, r = distinct values searched)
    let cases: Vec<(Query, u64)> = vec![
        // Exact value, whole hierarchy.
        (Query::on(idx).value(ValuePred::eq(Value::Int(50))), 1),
        // Exact value, one sub-tree.
        (
            Query::on(idx)
                .value(ValuePred::eq(Value::Int(50)))
                .class_at(0, ClassSel::SubTree(classes[1])),
            1,
        ),
        // Exact value, dispersed exact classes.
        (
            Query::on(idx)
                .value(ValuePred::eq(Value::Int(50)))
                .class_at(0, ClassSel::any_of_exact(&[classes[2], classes[5]])),
            1,
        ),
        // Enumerated values (r = 3), dispersed classes.
        (
            Query::on(idx)
                .value(ValuePred::In(vec![
                    Value::Int(10),
                    Value::Int(90),
                    Value::Int(170),
                ]))
                .class_at(0, ClassSel::any_of_exact(&[classes[2], classes[5]])),
            3,
        ),
        // Contiguous range: r = number of distinct values in it (11).
        (
            Query::on(idx)
                .value(ValuePred::between(Value::Int(100), Value::Int(110)))
                .class_at(0, ClassSel::Exact(classes[3])),
            11,
        ),
        // Whole-index scan: r = all 200 values (one contiguous group, so
        // the bound is loose but must still hold).
        (Query::on(idx), 200),
    ];
    for (q, r) in cases {
        let m = class_groups(db.index(), &q).unwrap();
        let (hits, measured) = db.query_with_stats(&q).unwrap();
        let bounds = model.bounds(r, m, hits.len() as u64);
        assert!(
            bounds.contains(&measured),
            "query {q:?}: measured {} outside {:?} (r={r}, m={m}, hits={})",
            measured.pages_read,
            bounds,
            hits.len()
        );
        // The forward scan also respects the trivial cap.
        let (_, fwd) = db.query_with_stats(&q.forward_scan()).unwrap();
        assert!(fwd.pages_read <= model.total_pages());
    }
}

#[test]
fn single_access_is_logarithmic() {
    // §4.2: "the U-index provides almost the same performance as a
    // single-class index": a point access costs the height, independent of
    // how many classes share the tree.
    let (mut db, classes, idx) = build();
    let stats = db.index_mut().verify().unwrap();
    for class in &classes {
        let q = Query::on(idx)
            .value(ValuePred::eq(Value::Int(77)))
            .class_at(0, ClassSel::Exact(*class));
        let (_, s) = db.query_with_stats(&q).unwrap();
        assert!(
            s.pages_read <= stats.height as u64 + 2,
            "point access cost {} exceeds height+2",
            s.pages_read
        );
    }
}
