//! Integration tests mirroring the paper's running example (§3.2, Example 1)
//! and the sample queries of §3.3.

use objstore::{Oid, Value};
use schema::{AttrType, ClassId, Schema};
use uindex::{distinct_oids_at, ClassSel, Database, IndexSpec, OidSel, Query, ValuePred};

/// The schema of the paper's Figure 1 (relevant part) and the instance
/// database of Example 1.
struct PaperDb {
    db: Database,
    // classes
    vehicle: ClassId,
    automobile: ClassId,
    compact: ClassId,
    company: ClassId,
    auto_company: ClassId,
    japanese_company: ClassId,
    employee: ClassId,
    // objects
    v: Vec<Oid>, // v[1..=6]
    c: Vec<Oid>, // c[1..=3]
    e: Vec<Oid>, // e[1..=3]
}

fn paper_db() -> PaperDb {
    let mut s = Schema::new();
    let employee = s.add_class("Employee").unwrap();
    s.add_attr(employee, "Age", AttrType::Int).unwrap();
    let company = s.add_class("Company").unwrap();
    s.add_attr(company, "Name", AttrType::Str).unwrap();
    s.add_attr(company, "President", AttrType::Ref(employee))
        .unwrap();
    let auto_company = s.add_subclass("AutoCompany", company).unwrap();
    let japanese_company = s.add_subclass("JapaneseAutoCompany", auto_company).unwrap();
    let vehicle = s.add_class("Vehicle").unwrap();
    s.add_attr(vehicle, "Name", AttrType::Str).unwrap();
    s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
    s.add_attr(vehicle, "ManufacturedBy", AttrType::Ref(company))
        .unwrap();
    let automobile = s.add_subclass("Automobile", vehicle).unwrap();
    let compact = s.add_subclass("CompactAutomobile", automobile).unwrap();

    let mut db = Database::in_memory(s).unwrap();

    // Employees: e1 age 50, e2 age 60, e3 age 45.
    let mut e = vec![Oid(0)];
    for age in [50i64, 60, 45] {
        let o = db.create_object(employee).unwrap();
        db.set_attr(o, "Age", Value::Int(age)).unwrap();
        e.push(o);
    }
    // Companies: c1 Subaru (japanese, president e3), c2 Fiat (auto, e1),
    // c3 Renault (auto, e2).
    let mut c = vec![Oid(0)];
    for (class, name, pres) in [
        (japanese_company, "Subaru", 3usize),
        (auto_company, "Fiat", 1),
        (auto_company, "Renault", 2),
    ] {
        let o = db.create_object(class).unwrap();
        db.set_attr(o, "Name", Value::Str(name.into())).unwrap();
        db.set_attr(o, "President", Value::Ref(e[pres])).unwrap();
        c.push(o);
    }
    // Vehicles of Example 1.
    let mut v = vec![Oid(0)];
    for (class, name, color, made_by) in [
        (vehicle, "Legacy", "White", 1usize),
        (automobile, "Tipo", "White", 2),
        (automobile, "Panda", "Red", 2),
        (compact, "R5", "Red", 3),
        (compact, "Justy", "Blue", 1),
        (compact, "Uno", "White", 2),
    ] {
        let o = db.create_object(class).unwrap();
        db.set_attr(o, "Name", Value::Str(name.into())).unwrap();
        db.set_attr(o, "Color", Value::Str(color.into())).unwrap();
        db.set_attr(o, "ManufacturedBy", Value::Ref(c[made_by]))
            .unwrap();
        v.push(o);
    }
    PaperDb {
        db,
        vehicle,
        automobile,
        compact,
        company,
        auto_company,
        japanese_company,
        employee,
        v,
        c,
        e,
    }
}

fn str_eq(s: &str) -> ValuePred {
    ValuePred::eq(Value::Str(s.into()))
}

#[test]
fn class_hierarchy_index_queries() {
    let mut p = paper_db();
    let idx =
        p.db.define_index(IndexSpec::class_hierarchy("color", p.vehicle, "Color"))
            .unwrap();

    // Query 1: all vehicles (of all types) with red color.
    let hits = p.db.query(&Query::on(idx).value(str_eq("Red"))).unwrap();
    let oids = distinct_oids_at(&hits, 0);
    assert_eq!(oids, [p.v[3], p.v[4]].into_iter().collect());

    // Query 2: all automobiles (and sub-classes) with red color.
    let hits =
        p.db.query(
            &Query::on(idx)
                .value(str_eq("Red"))
                .class_at(0, ClassSel::SubTree(p.automobile)),
        )
        .unwrap();
    assert_eq!(
        distinct_oids_at(&hits, 0),
        [p.v[3], p.v[4]].into_iter().collect()
    );

    // White automobiles-and-below: v2, v6 (Tipo, Uno) but not Legacy (v1,
    // a plain Vehicle).
    let hits =
        p.db.query(
            &Query::on(idx)
                .value(str_eq("White"))
                .class_at(0, ClassSel::SubTree(p.automobile)),
        )
        .unwrap();
    assert_eq!(
        distinct_oids_at(&hits, 0),
        [p.v[2], p.v[6]].into_iter().collect()
    );

    // Query 4: vehicles which are NOT compact automobiles, with red color:
    // skip the compact sub-tree via a union of the remaining regions.
    let hits =
        p.db.query(&Query::on(idx).value(str_eq("Red")).class_at(
            0,
            ClassSel::AnyOf(vec![
                ClassSel::Exact(p.vehicle),
                ClassSel::Exact(p.automobile),
            ]),
        ))
        .unwrap();
    assert_eq!(distinct_oids_at(&hits, 0), [p.v[3]].into_iter().collect());

    // Exact-class query: plain vehicles only.
    let hits =
        p.db.query(
            &Query::on(idx)
                .value(str_eq("White"))
                .class_at(0, ClassSel::Exact(p.vehicle)),
        )
        .unwrap();
    assert_eq!(distinct_oids_at(&hits, 0), [p.v[1]].into_iter().collect());

    // Value scan with Any: everything indexed.
    let hits = p.db.query(&Query::on(idx)).unwrap();
    assert_eq!(hits.len(), 6);
}

#[test]
fn path_index_queries() {
    let mut p = paper_db();
    // Index on Age of Employee over Vehicle/Company/Employee (combined:
    // sub-classes included, like the paper's encoding discussion).
    let idx =
        p.db.define_index(IndexSpec::path(
            "v-age",
            p.vehicle,
            &["ManufacturedBy", "President"],
            "Age",
        ))
        .unwrap();
    // Path entries: one per (employee, company, vehicle) chain.
    // Position order: Employee(0) < Company(1) < Vehicle(2).

    // Query 1 (paper): vehicles manufactured by a company whose
    // president's age is 50. e1 presides Fiat (c2) and Subaru? No: e1
    // presides c2 (Fiat). Fiat manufactures v2, v3, v6.
    let hits =
        p.db.query(&Query::on(idx).value(ValuePred::eq(Value::Int(50))))
            .unwrap();
    assert_eq!(
        distinct_oids_at(&hits, 2),
        [p.v[2], p.v[3], p.v[6]].into_iter().collect()
    );
    // The companies and presidents are also in the entries (path index).
    assert_eq!(distinct_oids_at(&hits, 1), [p.c[2]].into_iter().collect());
    assert_eq!(distinct_oids_at(&hits, 0), [p.e[1]].into_iter().collect());

    // Query 2 variant: same, for a particular company (Fiat) by OID.
    let hits =
        p.db.query(
            &Query::on(idx)
                .value(ValuePred::eq(Value::Int(50)))
                .oid_at(1, OidSel::Is(p.c[2])),
        )
        .unwrap();
    assert_eq!(hits.len(), 3);

    // Query 3 (paper): restrict companies by a pre-selected set.
    let set = [p.c[1], p.c[3]].into_iter().collect();
    let hits =
        p.db.query(
            &Query::on(idx)
                .value(ValuePred::at_least(Value::Int(0)))
                .oid_at(1, OidSel::In(set)),
        )
        .unwrap();
    // c1 (Subaru, president e3 age 45) makes v1, v5; c3 (Renault, e2 age
    // 60) makes v4.
    assert_eq!(
        distinct_oids_at(&hits, 2),
        [p.v[1], p.v[5], p.v[4]].into_iter().collect()
    );

    // Query 4 (paper): all companies whose president's age is 50 — answered
    // from the same index, deduplicating through the company position.
    let hits =
        p.db.query(
            &Query::on(idx)
                .value(ValuePred::eq(Value::Int(50)))
                .distinct_through(1),
        )
        .unwrap();
    assert_eq!(distinct_oids_at(&hits, 1), [p.c[2]].into_iter().collect());
    assert_eq!(hits.len(), 1, "distinct_through skips the other vehicles");

    // Range query: age above 50 → e2 (60) presides Renault → v4.
    let hits =
        p.db.query(&Query::on(idx).value(ValuePred::at_least(Value::Int(51))))
            .unwrap();
    assert_eq!(distinct_oids_at(&hits, 2), [p.v[4]].into_iter().collect());
}

#[test]
fn combined_index_queries() {
    let mut p = paper_db();
    let idx =
        p.db.define_index(IndexSpec::path(
            "v-age",
            p.vehicle,
            &["ManufacturedBy", "President"],
            "Age",
        ))
        .unwrap();

    // The paper's flagship query: compact automobiles manufactured by a
    // Japanese auto company whose president's age is above 40.
    // Subaru (japanese) president e3 is 45; Subaru makes v1 (Vehicle) and
    // v5 (Compact). Only v5 qualifies.
    let hits =
        p.db.query(
            &Query::on(idx)
                .value(ValuePred::at_least(Value::Int(41)))
                .class_at(1, ClassSel::SubTree(p.japanese_company))
                .class_at(2, ClassSel::SubTree(p.compact)),
        )
        .unwrap();
    assert_eq!(distinct_oids_at(&hits, 2), [p.v[5]].into_iter().collect());

    // Automobiles (and below) made by any auto company with president age
    // exactly 50: Fiat is an AutoCompany; its automobiles v2, v3, v6.
    let hits =
        p.db.query(
            &Query::on(idx)
                .value(ValuePred::eq(Value::Int(50)))
                .class_at(1, ClassSel::SubTree(p.auto_company))
                .class_at(2, ClassSel::SubTree(p.automobile)),
        )
        .unwrap();
    assert_eq!(
        distinct_oids_at(&hits, 2),
        [p.v[2], p.v[3], p.v[6]].into_iter().collect()
    );
}

#[test]
fn parallel_and_forward_agree() {
    let mut p = paper_db();
    let ch =
        p.db.define_index(IndexSpec::class_hierarchy("color", p.vehicle, "Color"))
            .unwrap();
    let path =
        p.db.define_index(IndexSpec::path(
            "v-age",
            p.vehicle,
            &["ManufacturedBy", "President"],
            "Age",
        ))
        .unwrap();

    let queries = vec![
        Query::on(ch).value(str_eq("Red")),
        Query::on(ch)
            .value(ValuePred::In(vec![
                Value::Str("Red".into()),
                Value::Str("Blue".into()),
            ]))
            .class_at(0, ClassSel::SubTree(p.automobile)),
        Query::on(ch).value(ValuePred::between(
            Value::Str("Blue".into()),
            Value::Str("Red".into()),
        )),
        Query::on(path)
            .value(ValuePred::at_least(Value::Int(45)))
            .class_at(1, ClassSel::SubTree(p.auto_company)),
        Query::on(path).oid_at(1, OidSel::Is(p.c[2])),
        Query::on(path)
            .value(ValuePred::eq(Value::Int(45)))
            .class_at(2, ClassSel::Exact(p.compact)),
    ];
    for q in queries {
        let (par_hits, par_stats) = p.db.query_with_stats(&q).unwrap();
        let (fwd_hits, fwd_stats) = p.db.query_with_stats(&q.clone().forward_scan()).unwrap();
        assert_eq!(par_hits, fwd_hits, "query {q:?}");
        assert!(
            par_stats.pages_read <= fwd_stats.pages_read,
            "parallel read more pages than forward for {q:?}"
        );
    }
}

#[test]
fn maintenance_president_switches_company() {
    // The paper's §3.5/§4.2 update example: a company replaces its
    // president; all clustered path entries must move.
    let mut p = paper_db();
    let idx =
        p.db.define_index(IndexSpec::path(
            "v-age",
            p.vehicle,
            &["ManufacturedBy", "President"],
            "Age",
        ))
        .unwrap();

    // Initially age-50 (e1, Fiat) covers v2, v3, v6.
    let q50 = Query::on(idx).value(ValuePred::eq(Value::Int(50)));
    assert_eq!(p.db.query(&q50).unwrap().len(), 3);

    // Fiat replaces its president with e3 (age 45).
    p.db.set_attr(p.c[2], "President", Value::Ref(p.e[3]))
        .unwrap();
    assert_eq!(p.db.query(&q50).unwrap().len(), 0);
    let hits =
        p.db.query(&Query::on(idx).value(ValuePred::eq(Value::Int(45))))
            .unwrap();
    // e3 now presides Subaru AND Fiat: vehicles v1, v5 (Subaru) + v2, v3,
    // v6 (Fiat).
    assert_eq!(distinct_oids_at(&hits, 2).len(), 5);
    p.db.index_mut().verify().unwrap();
}

#[test]
fn maintenance_attr_update_and_delete() {
    let mut p = paper_db();
    let ch =
        p.db.define_index(IndexSpec::class_hierarchy("color", p.vehicle, "Color"))
            .unwrap();
    let path =
        p.db.define_index(IndexSpec::path(
            "v-age",
            p.vehicle,
            &["ManufacturedBy", "President"],
            "Age",
        ))
        .unwrap();

    // Repaint v3 red → green.
    p.db.set_attr(p.v[3], "Color", Value::Str("Green".into()))
        .unwrap();
    let red = p.db.query(&Query::on(ch).value(str_eq("Red"))).unwrap();
    assert_eq!(distinct_oids_at(&red, 0), [p.v[4]].into_iter().collect());
    let green = p.db.query(&Query::on(ch).value(str_eq("Green"))).unwrap();
    assert_eq!(distinct_oids_at(&green, 0), [p.v[3]].into_iter().collect());

    // Age update on an employee ripples through path entries.
    p.db.set_attr(p.e[1], "Age", Value::Int(51)).unwrap();
    assert!(p
        .db
        .query(&Query::on(path).value(ValuePred::eq(Value::Int(50))))
        .unwrap()
        .is_empty());
    assert_eq!(
        p.db.query(&Query::on(path).value(ValuePred::eq(Value::Int(51))))
            .unwrap()
            .len(),
        3
    );

    // Deleting a vehicle removes its entries from both indexes.
    p.db.delete_object(p.v[4], false).unwrap();
    assert!(p
        .db
        .query(&Query::on(ch).value(str_eq("Red")))
        .unwrap()
        .is_empty());
    let hits =
        p.db.query(&Query::on(path).value(ValuePred::eq(Value::Int(60))))
            .unwrap();
    assert!(hits.is_empty(), "v4 was Renault's only vehicle");

    // Force-deleting a company drops the whole clustered group.
    p.db.delete_object(p.c[2], true).unwrap();
    let all = p.db.query(&Query::on(path)).unwrap();
    // Remaining chains: Subaru (e3) → v1, v5.
    assert_eq!(
        distinct_oids_at(&all, 2),
        [p.v[1], p.v[5]].into_iter().collect()
    );
    p.db.index_mut().verify().unwrap();
}

#[test]
fn multi_path_index_shares_prefix() {
    // §3.3 "Multiple Paths": divisions AND vehicles of companies whose
    // president's age is 50, one index, entries clustered.
    let mut s = Schema::new();
    let employee = s.add_class("Employee").unwrap();
    s.add_attr(employee, "Age", AttrType::Int).unwrap();
    let company = s.add_class("Company").unwrap();
    s.add_attr(company, "President", AttrType::Ref(employee))
        .unwrap();
    let division = s.add_class("Division").unwrap();
    s.add_attr(division, "Belong", AttrType::Ref(company))
        .unwrap();
    let vehicle = s.add_class("Vehicle").unwrap();
    s.add_attr(vehicle, "MadeBy", AttrType::Ref(company))
        .unwrap();

    let mut db = Database::in_memory(s).unwrap();
    let spec_v = IndexSpec::path("ages", vehicle, &["MadeBy", "President"], "Age")
        .build(db.schema())
        .unwrap();
    let spec_d = IndexSpec::path("ages-d", division, &["Belong", "President"], "Age")
        .build(db.schema())
        .unwrap();
    let merged = spec_v.merge(&spec_d).unwrap();
    assert_eq!(merged.positions.len(), 4); // E, C shared; D and V branch.
    let idx = db.define_index_spec(merged).unwrap();

    let e = db.create_object(employee).unwrap();
    db.set_attr(e, "Age", Value::Int(50)).unwrap();
    let c = db.create_object(company).unwrap();
    db.set_attr(c, "President", Value::Ref(e)).unwrap();
    let d1 = db.create_object(division).unwrap();
    db.set_attr(d1, "Belong", Value::Ref(c)).unwrap();
    let v1 = db.create_object(vehicle).unwrap();
    db.set_attr(v1, "MadeBy", Value::Ref(c)).unwrap();
    let v2 = db.create_object(vehicle).unwrap();
    db.set_attr(v2, "MadeBy", Value::Ref(c)).unwrap();

    // Spec positions sorted by code: E(0) < C(1) < D(2) < V(3).
    let hits = db
        .query(&Query::on(idx).value(ValuePred::eq(Value::Int(50))))
        .unwrap();
    assert_eq!(distinct_oids_at(&hits, 2), [d1].into_iter().collect());
    assert_eq!(distinct_oids_at(&hits, 3), [v1, v2].into_iter().collect());
    // Division-only query: entries for divisions are matched even though
    // vehicle entries share the index.
    let hits = db
        .query(
            &Query::on(idx)
                .value(ValuePred::eq(Value::Int(50)))
                .class_at(2, ClassSel::SubTree(division)),
        )
        .unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(distinct_oids_at(&hits, 2), [d1].into_iter().collect());
}

#[test]
fn single_btree_hosts_all_indexes() {
    let mut p = paper_db();
    let ch =
        p.db.define_index(IndexSpec::class_hierarchy("color", p.vehicle, "Color"))
            .unwrap();
    let name =
        p.db.define_index(IndexSpec::class_hierarchy("name", p.vehicle, "Name"))
            .unwrap();
    let path =
        p.db.define_index(IndexSpec::path(
            "v-age",
            p.vehicle,
            &["ManufacturedBy", "President"],
            "Age",
        ))
        .unwrap();
    assert_eq!(p.db.index().specs().len(), 3);
    // 6 color + 6 name + 6 path entries in ONE tree.
    assert_eq!(p.db.index().tree().len(), 18);
    p.db.index_mut().verify().unwrap();

    // Queries stay within their own index.
    assert_eq!(p.db.query(&Query::on(ch)).unwrap().len(), 6);
    assert_eq!(p.db.query(&Query::on(name)).unwrap().len(), 6);
    assert_eq!(p.db.query(&Query::on(path)).unwrap().len(), 6);
    let hits = p.db.query(&Query::on(name).value(str_eq("Panda"))).unwrap();
    assert_eq!(distinct_oids_at(&hits, 0), [p.v[3]].into_iter().collect());
}

#[test]
fn schema_information_in_index() {
    // §4.1: the encoding lets schema facts cluster; check code properties
    // exposed through the database.
    let p = paper_db();
    let enc = p.db.index().encoding();
    let emp = enc.code(p.employee).unwrap().as_bytes().to_vec();
    let com = enc.code(p.company).unwrap().as_bytes().to_vec();
    let veh = enc.code(p.vehicle).unwrap().as_bytes().to_vec();
    assert!(emp < com && com < veh);
    assert!(enc
        .code(p.japanese_company)
        .unwrap()
        .has_prefix(enc.code(p.auto_company).unwrap()));
}

#[test]
fn exact_class_path_index() {
    // A classic Kim/Bertino path index: listed classes only.
    let mut p = paper_db();
    let idx =
        p.db.define_index(
            IndexSpec::path("v-age", p.vehicle, &["ManufacturedBy", "President"], "Age")
                .exact_classes(),
        )
        .unwrap();
    // Only chains whose objects are direct instances of the listed classes
    // qualify: companies c2/c3 are AutoCompany (not Company) → excluded.
    let hits = p.db.query(&Query::on(idx)).unwrap();
    assert!(
        hits.is_empty(),
        "no exact-class chains exist in the example data"
    );

    // An index anchored at the exact sub-classes works.
    let idx2 = p.db.define_index(
        IndexSpec::path(
            "v-age-2",
            p.automobile,
            &["ManufacturedBy", "President"],
            "Age",
        )
        .exact_classes(),
    );
    // Automobile chain requires company to be exactly Company — still no
    // matches, but definition itself is valid.
    assert!(idx2.is_ok());
}
