//! Multi-value reference attributes (paper §4.3) and API error paths.

use objstore::{Oid, Value};
use schema::{AttrType, Schema};
use uindex::{distinct_oids_at, ClassSel, Database, Error, IndexSpec, Query, ValuePred};

/// "If a vehicle is manufactured by multiple companies, the same vehicle
/// object will appear in multiple index entries" (§4.3).
#[test]
fn multivalue_reference_in_path() {
    let mut s = Schema::new();
    let employee = s.add_class("Employee").unwrap();
    s.add_attr(employee, "Age", AttrType::Int).unwrap();
    let company = s.add_class("Company").unwrap();
    s.add_attr(company, "President", AttrType::Ref(employee))
        .unwrap();
    let vehicle = s.add_class("Vehicle").unwrap();
    // Multi-valued: a vehicle made by several companies.
    s.add_attr(vehicle, "MadeBy", AttrType::RefSet(company))
        .unwrap();

    let mut db = Database::in_memory(s).unwrap();
    let idx = db
        .define_index(IndexSpec::path(
            "age",
            vehicle,
            &["MadeBy", "President"],
            "Age",
        ))
        .unwrap();

    let e1 = db.create_object(employee).unwrap();
    db.set_attr(e1, "Age", Value::Int(50)).unwrap();
    let e2 = db.create_object(employee).unwrap();
    db.set_attr(e2, "Age", Value::Int(60)).unwrap();
    let c1 = db.create_object(company).unwrap();
    db.set_attr(c1, "President", Value::Ref(e1)).unwrap();
    let c2 = db.create_object(company).unwrap();
    db.set_attr(c2, "President", Value::Ref(e2)).unwrap();
    let v = db.create_object(vehicle).unwrap();
    db.set_attr(v, "MadeBy", Value::RefSet(vec![c1, c2]))
        .unwrap();

    // The vehicle appears under BOTH presidents' ages.
    for (age, pres) in [(50, e1), (60, e2)] {
        let hits = db
            .query(&Query::on(idx).value(ValuePred::eq(Value::Int(age))))
            .unwrap();
        assert_eq!(distinct_oids_at(&hits, 2), [v].into_iter().collect());
        assert_eq!(distinct_oids_at(&hits, 0), [pres].into_iter().collect());
    }

    // Dropping one manufacturer removes exactly that entry group (the
    // paper's noted multi-value update overhead).
    db.set_attr(v, "MadeBy", Value::RefSet(vec![c2])).unwrap();
    assert!(db
        .query(&Query::on(idx).value(ValuePred::eq(Value::Int(50))))
        .unwrap()
        .is_empty());
    assert_eq!(
        db.query(&Query::on(idx).value(ValuePred::eq(Value::Int(60))))
            .unwrap()
            .len(),
        1
    );
    db.index_mut().verify().unwrap();

    // Deleting the vehicle clears everything.
    db.delete_object(v, false).unwrap();
    assert!(db.query(&Query::on(idx)).unwrap().is_empty());
}

#[test]
fn multivalue_at_anchor_side() {
    // An employee OWNS several vehicles; index vehicle color reachable from
    // Employee via the multi-valued attribute: Owner(1) <- owns - Vehicle(0)?
    // Here the anchor (attr owner) is the Vehicle; Employee references it.
    let mut s = Schema::new();
    let vehicle = s.add_class("Vehicle").unwrap();
    s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
    let employee = s.add_class("Employee").unwrap();
    s.add_attr(employee, "Owns", AttrType::RefSet(vehicle))
        .unwrap();

    let mut db = Database::in_memory(s).unwrap();
    let idx = db
        .define_index(IndexSpec::path("owner-color", employee, &["Owns"], "Color"))
        .unwrap();

    let v1 = db.create_object(vehicle).unwrap();
    db.set_attr(v1, "Color", Value::Str("Red".into())).unwrap();
    let v2 = db.create_object(vehicle).unwrap();
    db.set_attr(v2, "Color", Value::Str("Red".into())).unwrap();
    let e = db.create_object(employee).unwrap();
    db.set_attr(e, "Owns", Value::RefSet(vec![v1, v2])).unwrap();

    let hits = db
        .query(&Query::on(idx).value(ValuePred::eq(Value::Str("Red".into()))))
        .unwrap();
    // Positions: Vehicle(0) < Employee(1). Two entries, one per owned
    // vehicle, both naming the owner.
    assert_eq!(hits.len(), 2);
    assert_eq!(distinct_oids_at(&hits, 1), [e].into_iter().collect());
    assert_eq!(distinct_oids_at(&hits, 0), [v1, v2].into_iter().collect());
}

#[test]
fn error_paths() {
    let mut s = Schema::new();
    let a = s.add_class("A").unwrap();
    s.add_attr(a, "X", AttrType::Int).unwrap();
    s.add_attr(a, "R", AttrType::Ref(a)).unwrap();
    let mut db = Database::in_memory(s).unwrap();

    // Reference attributes are not indexable.
    let err = db
        .define_index(IndexSpec::class_hierarchy("bad", a, "R"))
        .unwrap_err();
    assert!(matches!(err, Error::BadSpec(_)), "{err}");

    // Unknown attribute name.
    let err = db
        .define_index(IndexSpec::class_hierarchy("bad", a, "Nope"))
        .unwrap_err();
    assert!(matches!(err, Error::BadSpec(_)), "{err}");

    // Duplicate index name.
    db.define_index(IndexSpec::class_hierarchy("x", a, "X"))
        .unwrap();
    let err = db
        .define_index(IndexSpec::class_hierarchy("x", a, "X"))
        .unwrap_err();
    assert!(matches!(err, Error::BadSpec(_)), "{err}");

    // Unknown index id in a query.
    let err = db.query(&Query::on(42)).unwrap_err();
    assert!(matches!(err, Error::UnknownIndex(42)), "{err}");

    // Predicate on a position the index does not have.
    let idx = db.index().index_by_name("x").unwrap();
    let err = db
        .query(&Query::on(idx).class_at(3, ClassSel::Exact(a)))
        .unwrap_err();
    assert!(matches!(err, Error::BadQuery(_)), "{err}");

    // Class selector outside the index's sub-tree.
    let mut s2 = Schema::new();
    let b = s2.add_class("B").unwrap();
    s2.add_attr(b, "X", AttrType::Int).unwrap();
    let other = s2.add_class("Other").unwrap();
    let mut db2 = Database::in_memory(s2).unwrap();
    let idx2 = db2
        .define_index(IndexSpec::class_hierarchy("x", b, "X"))
        .unwrap();
    let err = db2
        .query(&Query::on(idx2).class_at(0, ClassSel::Exact(other)))
        .unwrap_err();
    assert!(matches!(err, Error::BadQuery(_)), "{err}");

    // Empty value range.
    let err = db2
        .query(&Query::on(idx2).value(ValuePred::Range {
            lo: Some(Value::Int(10)),
            hi: Some(Value::Int(5)),
            hi_inclusive: false,
        }))
        .unwrap_err();
    assert!(matches!(err, Error::BadQuery(_)), "{err}");

    // Querying a reference value.
    let err = db2
        .query(&Query::on(idx2).value(ValuePred::eq(Value::Ref(Oid(1)))))
        .unwrap_err();
    assert!(matches!(err, Error::BadQuery(_)), "{err}");
}

#[test]
fn unset_attributes_are_not_indexed() {
    let mut s = Schema::new();
    let a = s.add_class("A").unwrap();
    s.add_attr(a, "X", AttrType::Int).unwrap();
    let mut db = Database::in_memory(s).unwrap();
    let idx = db
        .define_index(IndexSpec::class_hierarchy("x", a, "X"))
        .unwrap();
    let o = db.create_object(a).unwrap();
    // No value set yet: no entries.
    assert!(db.query(&Query::on(idx)).unwrap().is_empty());
    db.set_attr(o, "X", Value::Int(1)).unwrap();
    assert_eq!(db.query(&Query::on(idx)).unwrap().len(), 1);
}

#[test]
fn incomplete_paths_produce_no_entries() {
    // A company without a president: vehicles made by it are unreachable
    // through the path index (complete-chain semantics).
    let mut s = Schema::new();
    let employee = s.add_class("Employee").unwrap();
    s.add_attr(employee, "Age", AttrType::Int).unwrap();
    let company = s.add_class("Company").unwrap();
    s.add_attr(company, "President", AttrType::Ref(employee))
        .unwrap();
    let vehicle = s.add_class("Vehicle").unwrap();
    s.add_attr(vehicle, "MadeBy", AttrType::Ref(company))
        .unwrap();
    let mut db = Database::in_memory(s).unwrap();
    let idx = db
        .define_index(IndexSpec::path(
            "age",
            vehicle,
            &["MadeBy", "President"],
            "Age",
        ))
        .unwrap();
    let c = db.create_object(company).unwrap();
    let v = db.create_object(vehicle).unwrap();
    db.set_attr(v, "MadeBy", Value::Ref(c)).unwrap();
    assert!(db.query(&Query::on(idx)).unwrap().is_empty());
    // Completing the chain creates the entry retroactively.
    let e = db.create_object(employee).unwrap();
    db.set_attr(e, "Age", Value::Int(40)).unwrap();
    db.set_attr(c, "President", Value::Ref(e)).unwrap();
    assert_eq!(db.query(&Query::on(idx)).unwrap().len(), 1);
}
