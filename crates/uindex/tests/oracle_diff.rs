//! Differential-oracle sweep: on seeded random schemas/databases/queries,
//! the parallel scan, the forward scan, and the brute-force oracle must
//! agree exactly, and the parallel scan must never read more pages than
//! the forward scan. See `uindex::oracle` for the trial generator.

use uindex::oracle::run_trials;

#[test]
fn differential_oracle_60_trials() {
    let sum = run_trials(0xD1FF_0AC1_u64, 60);
    assert_eq!(sum.trials, 60);
    // Coverage sanity: the sweep must actually exercise the interesting
    // paths, not vacuously pass on empty databases.
    assert!(sum.queries >= 240, "too few queries: {sum:?}");
    assert!(sum.hits > 0, "no query ever matched: {sum:?}");
    assert!(
        sum.distinct_checks > 0,
        "distinct path never exercised: {sum:?}"
    );
}

#[test]
fn differential_oracle_alternate_seed() {
    let sum = run_trials(0x5EED_CAFE_F00D_u64, 25);
    assert_eq!(sum.trials, 25);
    assert!(sum.hits > 0, "no query ever matched: {sum:?}");
}
