//! The serving tier's storage fault policy, end to end over the real
//! database stacks:
//!
//! * **transient I/O** is absorbed by the buffer pool's bounded retries
//!   (`pagestore.pool.retries`) — the query answers from the index and
//!   nothing degrades;
//! * **exhausted retries** degrade a fallback-armed reader to the object
//!   store *without* quarantining, so the next query tries the index
//!   again;
//! * **corruption** is never retried: it quarantines on the spot (the
//!   flag shared between writer and readers), every degraded answer still
//!   matches the healthy one, and a clean `check()` lifts the quarantine.

use objstore::Value;
use pagestore::Fault;
use schema::{AttrType, Schema};
use uindex::{Database, DiskDatabase, DiskOptions, IndexSpec, Query, ValuePred};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("uindex_pool_retry_{}_{}", std::process::id(), name));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn vehicle_schema() -> Schema {
    let mut s = Schema::new();
    let vehicle = s.add_class("Vehicle").unwrap();
    s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
    s
}

const COLORS: [&str; 5] = ["Red", "Blue", "Green", "Black", "White"];

fn red_query(id: uindex::IndexId) -> Query {
    Query::on(id).value(ValuePred::eq(Value::Str("Red".into())))
}

fn populate<P: pagestore::PageStore>(db: &mut Database<P>, n: usize) -> uindex::IndexId {
    let vehicle = db.schema().class_by_name("Vehicle").unwrap();
    let id = db
        .define_index(IndexSpec::class_hierarchy("by_color", vehicle, "Color"))
        .unwrap();
    for i in 0..n {
        let v = db.create_object(vehicle).unwrap();
        db.set_attr(v, "Color", Value::Str(COLORS[i % COLORS.len()].into()))
            .unwrap();
    }
    id
}

#[test]
fn disk_pool_retries_absorb_transient_io_burst() {
    let dir = tmpdir("transient");
    let mut db = DiskDatabase::create(
        vehicle_schema(),
        &dir,
        DiskOptions {
            page_size: 256,
            pool_pages: 64,
            ..DiskOptions::default()
        },
    )
    .unwrap();
    let id = populate(&mut db, 60);
    db.checkpoint().unwrap();
    let healthy = db.query(&red_query(id)).unwrap();
    assert!(!healthy.is_empty());

    // Drop the cache so the next scan actually reads through the stack,
    // then schedule two consecutive transient failures right where the
    // scan's first page read will land.
    let pool = db.index().tree().pool();
    pool.flush().unwrap();
    pool.invalidate_cache().unwrap();
    let h = db.fault_handle();
    let retries0 = telemetry::counter_value("pagestore.pool.retries");
    let successes0 = telemetry::counter_value("pagestore.pool.retry_successes");
    h.inject_burst(h.ops(), 2, Fault::IoError);

    let hits = db.query(&red_query(id)).unwrap();
    assert_eq!(hits, healthy, "answers under transient faults must match");
    assert!(!db.quarantined(), "transient I/O must not quarantine");
    assert_eq!(h.pending_faults(), 0, "the burst was consumed");
    assert!(
        telemetry::counter_value("pagestore.pool.retries") >= retries0 + 2,
        "each absorbed failure is a counted retry"
    );
    assert!(
        telemetry::counter_value("pagestore.pool.retry_successes") > successes0,
        "the recovered fetch is counted"
    );
    db.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disk_reader_degrades_on_exhausted_retries_without_quarantine() {
    let dir = tmpdir("exhausted");
    let mut db = DiskDatabase::create(
        vehicle_schema(),
        &dir,
        DiskOptions {
            page_size: 256,
            pool_pages: 64,
            ..DiskOptions::default()
        },
    )
    .unwrap();
    let id = populate(&mut db, 60);
    db.checkpoint().unwrap();
    let healthy = db.query(&red_query(id)).unwrap();
    let reader = db.reader_with_fallback();

    let pool = db.index().tree().pool();
    pool.flush().unwrap();
    pool.invalidate_cache().unwrap();
    let h = db.fault_handle();
    let degraded0 = telemetry::counter_value("uindex.degraded.queries");
    // Three consecutive failures exhaust the pool's 3 bounded attempts.
    h.inject_burst(h.ops(), 3, Fault::IoError);

    let (hits, _, degraded) = reader.query_guarded(&red_query(id)).unwrap();
    assert!(degraded, "exhausted retries must degrade, not fail");
    assert_eq!(hits, healthy, "degraded answers must match healthy ones");
    assert!(
        !reader.quarantined() && !db.quarantined(),
        "transient I/O degrades without quarantining"
    );
    assert_eq!(
        telemetry::counter_value("uindex.degraded.queries"),
        degraded0 + 1
    );

    // The faults are gone; the very next query uses the index again.
    let (hits2, _, degraded2) = reader.query_guarded(&red_query(id)).unwrap();
    assert!(!degraded2, "no quarantine, so the index path is retried");
    assert_eq!(hits2, healthy);
    db.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corruption_is_never_retried_and_quarantines_shared_flag() {
    let mut db = Database::in_memory(vehicle_schema()).unwrap();
    let id = populate(&mut db, 60);
    let healthy = db.query(&red_query(id)).unwrap();
    assert!(!healthy.is_empty());
    let reader = db.reader_with_fallback();

    let pool = db.index().tree().pool();
    pool.flush().unwrap();
    pool.invalidate_cache().unwrap();
    let h = db.fault_handle();
    let retries0 = telemetry::counter_value("pagestore.pool.retries");
    let quarantines0 = telemetry::counter_value("uindex.degraded.quarantines");
    // Silent single-bit damage below the checksum layer: the next read
    // detects it as corruption.
    h.inject(h.ops(), Fault::BitFlip { bit: 7 });

    let (hits, _, degraded) = reader.query_guarded(&red_query(id)).unwrap();
    assert!(degraded, "corruption mid-scan degrades the answer");
    assert_eq!(hits, healthy, "degraded answers must match healthy ones");
    assert_eq!(
        telemetry::counter_value("pagestore.pool.retries"),
        retries0,
        "corruption must never be retried"
    );
    assert_eq!(
        telemetry::counter_value("uindex.degraded.quarantines"),
        quarantines0 + 1
    );
    assert!(
        reader.quarantined() && db.quarantined(),
        "the quarantine flag is shared between reader and writer"
    );

    // The flag sticks even though the one-shot fault is consumed.
    let (hits2, _, degraded2) = reader.query_guarded(&red_query(id)).unwrap();
    assert!(degraded2, "quarantine persists until a clean check");
    assert_eq!(hits2, healthy);

    // A clean check lifts the quarantine for writer and readers alike.
    let report = db.check().unwrap();
    assert!(report.clean(), "damage was transient, the pages are intact");
    assert!(!reader.quarantined() && !db.quarantined());
    let (hits3, _, degraded3) = reader.query_guarded(&red_query(id)).unwrap();
    assert!(!degraded3, "a clean check restores the index path");
    assert_eq!(hits3, healthy);
}
