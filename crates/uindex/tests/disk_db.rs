//! End-to-end tests for the durable tier: create → mutate → commit →
//! crash (drop without checkpoint) → reopen, with the full open pipeline
//! (WAL replay, scrub, tree verification) and the oracle cross-checks
//! (Parallel ≡ Forward ≡ brute-force) on the reopened store.

use std::path::PathBuf;

use objstore::Value;
use schema::{AttrType, Schema};
use uindex::{
    ClassSel, Database, DiskDatabase, DiskOptions, IndexSpec, Query, ScanAlgorithm, ValuePred,
};

fn tmpdir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("uindex_disk_db_{}_{}", std::process::id(), name));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn vehicle_schema() -> Schema {
    let mut s = Schema::new();
    let vehicle = s.add_class("Vehicle").unwrap();
    s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
    s.add_subclass("Automobile", vehicle).unwrap();
    s
}

fn small_options() -> DiskOptions {
    DiskOptions {
        page_size: 256,
        pool_pages: 256,
        group_commit: 2,
        checkpoint_every: 0, // only explicit checkpoints: tests control them
        ..DiskOptions::default()
    }
}

const COLORS: [&str; 5] = ["Red", "Blue", "Green", "Black", "White"];

/// Populate `n` vehicles with round-robin colors and define the color
/// index.
fn populate(db: &mut DiskDatabase, n: usize) {
    let vehicle = db.schema().class_by_name("Vehicle").unwrap();
    db.define_index(IndexSpec::class_hierarchy("color", vehicle, "Color"))
        .unwrap();
    for i in 0..n {
        let v = db.create_object(vehicle).unwrap();
        db.set_attr(v, "Color", Value::Str(COLORS[i % COLORS.len()].into()))
            .unwrap();
    }
}

fn color_query(db: &Database<uindex::DiskStore>, color: &str) -> Query {
    let idx = db.index().index_by_name("color").unwrap();
    Query::on(idx).value(ValuePred::eq(Value::Str(color.into())))
}

/// Parallel ≡ Forward ≡ brute-force on a database (the acceptance
/// criterion's oracle equivalence, run against a reopened disk store).
fn assert_oracle_equivalence(db: &mut DiskDatabase) {
    for color in COLORS {
        let q = color_query(db, color);
        let mut fwd = q.clone();
        fwd.algorithm = ScanAlgorithm::Forward;
        let parallel = db.query(&q).unwrap();
        let forward = db.query(&fwd).unwrap();
        let brute = uindex::oracle::eval(db.index(), db.store(), &q).unwrap();
        assert_eq!(parallel, forward, "{color}: Parallel ≠ Forward");
        assert_eq!(parallel, brute, "{color}: index ≠ brute-force oracle");
        assert!(!parallel.is_empty(), "{color}: query must hit something");
    }
}

#[test]
fn create_commit_crash_reopen_serves_committed_state() {
    let dir = tmpdir("crash_reopen");
    {
        let mut db = DiskDatabase::create(vehicle_schema(), &dir, small_options()).unwrap();
        populate(&mut db, 50);
        db.commit().unwrap();
        // An uncommitted mutation: must NOT survive the crash.
        let vehicle = db.schema().class_by_name("Vehicle").unwrap();
        let v = db.create_object(vehicle).unwrap();
        db.set_attr(v, "Color", Value::Str("Purple".into()))
            .unwrap();
        drop(db); // crash: no commit, no checkpoint
    }
    let (mut db, report) = DiskDatabase::open(&dir).unwrap();
    assert!(report.tree_ok, "tree must verify before serving");
    assert!(!report.rebuilt, "committed state must open without salvage");
    assert!(report.scrub.clean(), "scrub must pass: {:?}", report.scrub);
    assert_eq!(db.store().len(), 50, "uncommitted object rolled back");
    let q_red = color_query(&db, "Red");
    let hits = db.query(&q_red).unwrap();
    assert_eq!(hits.len(), 10);
    let q_purple = color_query(&db, "Purple");
    assert!(db.query(&q_purple).unwrap().is_empty());
    assert_oracle_equivalence(&mut db);
    // check() runs the full scrub + verify + content cross-check on disk.
    let check = db.check().unwrap();
    assert!(check.clean(), "check on reopened disk db: {check:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_between_objects_snapshot_and_wal_commit_self_heals() {
    let dir = tmpdir("epoch_mismatch");
    {
        let mut db = DiskDatabase::create(vehicle_schema(), &dir, small_options()).unwrap();
        populate(&mut db, 30);
        db.commit().unwrap();
        db.checkpoint().unwrap();
        drop(db);
    }
    // Simulate the crash window: objects.udb advanced one epoch past the
    // committed index (as if the process died after the atomic rename but
    // before the WAL commit marker) — rewrite the snapshot with a bumped
    // epoch and extra content the index has never seen.
    {
        let (mut db, _) = DiskDatabase::open(&dir).unwrap();
        let vehicle = db.schema().class_by_name("Vehicle").unwrap();
        let v = db.create_object(vehicle).unwrap();
        db.set_attr(v, "Color", Value::Str("Red".into())).unwrap();
        // Persist the sidecars + meta page, then crash WITHOUT the WAL
        // commit: replay will drop the index-side changes, leaving the
        // objects snapshot ahead.
        db.persist_logical_state_for_tests().unwrap();
        drop(db);
    }
    let (mut db, report) = DiskDatabase::open(&dir).unwrap();
    assert!(report.rebuilt, "epoch mismatch must trigger a rebuild");
    assert!(report.tree_ok);
    assert_eq!(db.store().len(), 31, "objects snapshot is the truth");
    let q_red = color_query(&db, "Red");
    let hits = db.query(&q_red).unwrap();
    assert_eq!(hits.len(), 7, "rebuilt index covers the extra object");
    assert_oracle_equivalence(&mut db);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_at_every_commit_boundary_torture() {
    // Mutate across several commits; crash after each commit boundary and
    // assert the reopened database serves exactly the committed prefix,
    // verified tree included.
    for crash_after in 0..5usize {
        let dir = tmpdir(&format!("boundary_{crash_after}"));
        let per_batch = 8;
        {
            let mut db = DiskDatabase::create(vehicle_schema(), &dir, small_options()).unwrap();
            let vehicle = db.schema().class_by_name("Vehicle").unwrap();
            let idx = IndexSpec::class_hierarchy("color", vehicle, "Color");
            db.define_index(idx).unwrap();
            db.commit().unwrap();
            for batch in 0..crash_after {
                for i in 0..per_batch {
                    let v = db.create_object(vehicle).unwrap();
                    let color = COLORS[(batch * per_batch + i) % COLORS.len()];
                    db.set_attr(v, "Color", Value::Str(color.into())).unwrap();
                }
                db.commit().unwrap();
            }
            // Uncommitted tail, lost at the crash.
            let v = db.create_object(vehicle).unwrap();
            db.set_attr(v, "Color", Value::Str("Red".into())).unwrap();
            drop(db);
        }
        let (mut db, report) = DiskDatabase::open(&dir).unwrap();
        assert!(
            report.tree_ok && !report.rebuilt,
            "crash after {crash_after} commits: {report:?}"
        );
        assert_eq!(
            db.store().len(),
            crash_after * per_batch,
            "crash after {crash_after} commits: wrong object count"
        );
        let check = db.check().unwrap();
        assert!(
            check.clean(),
            "crash after {crash_after} commits: {check:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn schema_evolution_survives_reopen() {
    let dir = tmpdir("evolution");
    {
        let mut db = DiskDatabase::create(vehicle_schema(), &dir, small_options()).unwrap();
        populate(&mut db, 10);
        let truck = {
            let vehicle = db.schema().class_by_name("Vehicle").unwrap();
            db.add_subclass("Truck", vehicle).unwrap()
        };
        db.add_attr(truck, "Payload", AttrType::Int).unwrap();
        let t = db.create_object(truck).unwrap();
        db.set_attr(t, "Color", Value::Str("Red".into())).unwrap();
        db.checkpoint().unwrap();
        drop(db);
    }
    let (db, report) = DiskDatabase::open(&dir).unwrap();
    assert!(report.tree_ok && !report.rebuilt);
    let truck = db.schema().class_by_name("Truck").unwrap();
    let q = color_query(&db, "Red").class_at(0, ClassSel::SubTree(truck));
    assert_eq!(db.query(&q).unwrap().len(), 1, "evolved subclass query");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repair_rebuilds_in_place() {
    let dir = tmpdir("repair");
    let mut db = DiskDatabase::create(vehicle_schema(), &dir, small_options()).unwrap();
    populate(&mut db, 25);
    db.commit().unwrap();
    let q_blue = color_query(&db, "Blue");
    let before: Vec<_> = db.query(&q_blue).unwrap();
    let n = db.repair().unwrap();
    assert!(n > 0);
    assert_eq!(db.query(&q_blue).unwrap(), before);
    assert!(db.check().unwrap().clean());
    drop(db);
    let (db, report) = DiskDatabase::open(&dir).unwrap();
    assert!(report.tree_ok);
    let q_blue = color_query(&db, "Blue");
    assert_eq!(db.query(&q_blue).unwrap(), before);
    std::fs::remove_dir_all(&dir).ok();
}
