//! [`UIndex`]: many logical indexes in one B+-tree, plus maintenance.

use std::collections::BTreeSet;

use btree::{BTree, BTreeConfig, TreeStats};
use objstore::{ObjectStore, Oid, Value};
use pagestore::{BufferPool, MemStore, PageStore};
use schema::{ClassId, Encoding, Schema};

use crate::error::{Error, Result};
use crate::key::{EntryKey, PathElem};
use crate::query::{ClassSel, OidSel, Query, QueryHit};
use crate::scan::{self, Matcher, PosConstraint, ScanStats};
use crate::spec::IndexSpec;

/// Identifier of a logical index within a [`UIndex`] (embedded as the first
/// two key bytes).
pub type IndexId = u16;

/// The uniform index: a set of [`IndexSpec`]s sharing one front-compressed
/// B+-tree (§4.1).
pub struct UIndex<S: PageStore> {
    tree: BTree<S>,
    encoding: Encoding,
    specs: Vec<IndexSpec>,
}

impl UIndex<MemStore> {
    /// An in-memory U-index with the paper's page geometry (1024-byte
    /// pages).
    pub fn in_memory(encoding: Encoding) -> Result<Self> {
        let pool = BufferPool::new(MemStore::new(1024), 1 << 16);
        Self::new(pool, BTreeConfig::default(), encoding)
    }
}

impl<S: PageStore> UIndex<S> {
    /// Create an empty U-index over `pool`.
    pub fn new(pool: BufferPool<S>, config: BTreeConfig, encoding: Encoding) -> Result<Self> {
        Ok(UIndex {
            tree: BTree::create(pool, config)?,
            encoding,
            specs: Vec::new(),
        })
    }

    /// Assemble from parts (catalog reload path).
    pub(crate) fn from_parts(tree: BTree<S>, encoding: Encoding, specs: Vec<IndexSpec>) -> Self {
        UIndex {
            tree,
            encoding,
            specs,
        }
    }

    /// The class-code encoding in use.
    pub fn encoding(&self) -> &Encoding {
        &self.encoding
    }

    /// Mutable encoding access (schema evolution).
    pub fn encoding_mut(&mut self) -> &mut Encoding {
        &mut self.encoding
    }

    /// The shared B-tree (for statistics and verification).
    pub fn tree(&self) -> &BTree<S> {
        &self.tree
    }

    /// Mutable access to the shared B-tree.
    pub fn tree_mut(&mut self) -> &mut BTree<S> {
        &mut self.tree
    }

    /// Consume the index, returning the buffer pool (for handing the
    /// underlying store back to its owner, e.g. to close a file store).
    pub fn into_pool(self) -> pagestore::BufferPool<S> {
        self.tree.into_pool()
    }

    /// Registered index specs.
    pub fn specs(&self) -> &[IndexSpec] {
        &self.specs
    }

    /// The spec behind `id`.
    pub fn spec(&self, id: IndexId) -> Result<&IndexSpec> {
        self.specs.get(id as usize).ok_or(Error::UnknownIndex(id))
    }

    /// Register an index definition (normalizing and validating it).
    /// Entries are **not** built; call [`UIndex::build`] or use
    /// [`crate::Database`], which maintains entries incrementally.
    pub fn define(&mut self, schema: &Schema, mut spec: IndexSpec) -> Result<IndexId> {
        if self.specs.iter().any(|s| s.name == spec.name) {
            return Err(Error::BadSpec(format!(
                "duplicate index name {:?}",
                spec.name
            )));
        }
        if self.specs.len() >= u16::MAX as usize {
            return Err(Error::BadSpec("too many indexes".into()));
        }
        spec.normalize(schema, &self.encoding)?;
        self.specs.push(spec);
        Ok((self.specs.len() - 1) as IndexId)
    }

    /// Look up an index id by name.
    pub fn index_by_name(&self, name: &str) -> Option<IndexId> {
        self.specs
            .iter()
            .position(|s| s.name == name)
            .map(|i| i as IndexId)
    }

    // ----- entry enumeration ---------------------------------------------
    //
    // Entry enumeration walks the *object store* only — never the tree —
    // so the implementations live on [`Planner`], where the degraded
    // query path can reach them from cloned metadata without a `UIndex`.
    // The methods here delegate for callers that hold the index.

    /// All entry keys anchored at `anchor` (a would-be position-0 object),
    /// computed from the current store state. Empty if the object is out of
    /// scope or has no value for the indexed attribute.
    pub fn entries_for_anchor(
        &self,
        store: &ObjectStore,
        id: IndexId,
        anchor: Oid,
    ) -> Result<Vec<EntryKey>> {
        self.planner().entries_for_anchor(store, id, anchor)
    }

    /// All entry keys of index `id` that contain `oid` at any position,
    /// under the current store state. This is the exact set an update of
    /// `oid` can add or remove, so maintenance costs stay proportional to
    /// the entries actually touched (the paper's §3.5 update analysis).
    pub fn entries_involving(
        &self,
        store: &ObjectStore,
        id: IndexId,
        oid: Oid,
    ) -> Result<Vec<EntryKey>> {
        self.planner().entries_involving(store, id, oid)
    }

    /// Anchors (position-0 objects) whose entries involve `oid` in index
    /// `id`, under the current store state.
    pub fn anchors_affected(&self, store: &ObjectStore, id: IndexId, oid: Oid) -> Result<Vec<Oid>> {
        self.planner().anchors_affected(store, id, oid)
    }

    // ----- maintenance ---------------------------------------------------

    /// Insert the given entries (replace semantics).
    pub fn insert_entries(&mut self, entries: &[EntryKey]) -> Result<u64> {
        let mut n = 0;
        for e in entries {
            if self.tree.insert(&e.encode()?, &[])?.is_none() {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Remove the given entries; returns how many existed.
    pub fn remove_entries(&mut self, entries: &[EntryKey]) -> Result<u64> {
        let mut n = 0;
        for e in entries {
            if self.tree.delete(&e.encode()?)?.is_some() {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Build index `id` from the current store contents (incremental
    /// inserts; see [`UIndex::build_all`] for the packed bulk path).
    pub fn build(&mut self, store: &ObjectStore, id: IndexId) -> Result<u64> {
        let spec = self.spec(id)?;
        let anchors = if spec.include_subclasses {
            store.extent_deep(spec.positions[0].class)
        } else {
            store.extent(spec.positions[0].class)
        };
        let mut keys = Vec::new();
        for a in anchors {
            for e in self.entries_for_anchor(store, id, a)? {
                keys.push((e.encode()?, Vec::new()));
            }
        }
        let n = keys.len() as u64;
        self.tree.insert_batch(keys)?;
        Ok(n)
    }

    /// Build **all** registered indexes at once with a packed bulk load.
    /// The tree must be empty.
    pub fn build_all(&mut self, store: &ObjectStore) -> Result<u64> {
        let mut keys: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for id in 0..self.specs.len() as u16 {
            let spec = self.spec(id)?;
            let anchors = if spec.include_subclasses {
                store.extent_deep(spec.positions[0].class)
            } else {
                store.extent(spec.positions[0].class)
            };
            for a in anchors {
                for e in self.entries_for_anchor(store, id, a)? {
                    keys.push((e.encode()?, Vec::new()));
                }
            }
        }
        keys.sort();
        keys.dedup();
        let n = keys.len() as u64;
        self.tree.bulk_replace(keys)?;
        Ok(n)
    }

    /// Bulk-load explicit entries into an empty tree (used by experiment
    /// harnesses that synthesize entries without an object store).
    pub fn bulk_load_entries(&mut self, entries: &[EntryKey]) -> Result<u64> {
        let mut keys: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(entries.len());
        for e in entries {
            keys.push((e.encode()?, Vec::new()));
        }
        keys.sort();
        keys.dedup();
        let n = keys.len() as u64;
        self.tree.bulk_replace(keys)?;
        Ok(n)
    }

    // ----- querying ------------------------------------------------------

    /// The tree-free planning/enumeration view over this index's spec
    /// table and class encoding.
    pub(crate) fn planner(&self) -> Planner<'_> {
        Planner {
            specs: &self.specs,
            encoding: &self.encoding,
        }
    }

    /// Build the scan [`Matcher`] for `q` (query planning). Planning only
    /// reads the spec table and the class encoding, so it is also available
    /// without the tree via [`Planner`].
    pub(crate) fn matcher(&self, q: &Query) -> Result<Matcher> {
        self.planner().matcher(q)
    }

    /// Run a query, returning hits and the scan cost counters.
    pub fn query(&self, q: &Query) -> Result<(Vec<QueryHit>, ScanStats)> {
        let (hits, stats, _) = self.query_traced(q)?;
        Ok((hits, stats))
    }

    /// Run a query collecting the full executed trace: registry-derived
    /// breakdowns (reseek tiers, pool hits/misses, partial keys expanded)
    /// and the per-phase span tree `query` → `plan` / `descend` / `scan`.
    pub fn query_traced(
        &self,
        q: &Query,
    ) -> Result<(Vec<QueryHit>, ScanStats, crate::scan::QueryTrace)> {
        let root = telemetry::Span::enter("query");
        let planned = {
            let _plan = telemetry::Span::enter("plan");
            self.matcher(q)
        };
        let result = planned.and_then(|matcher| {
            scan::execute_traced(&self.tree.view(), &matcher, q.algorithm, q.distinct_upto)
        });
        drop(root);
        // The freshly closed "query" root is the last finished span; keep it
        // in the trace and drop older undrained roots.
        let span = telemetry::take_spans()
            .into_iter()
            .rev()
            .find(|s| s.name == "query");
        let (hits, stats, mut trace) = result?;
        trace.span = span;
        Ok((hits, stats, trace))
    }

    /// Verify the underlying B-tree and return its shape statistics.
    pub fn verify(&self) -> Result<TreeStats> {
        Ok(self.tree.verify()?)
    }
}

/// Query planner over a spec table and class encoding — everything needed
/// to translate a [`Query`] into a scan [`Matcher`] without touching the
/// tree. [`UIndex::matcher`] delegates here; [`crate::DatabaseReader`]
/// uses it to plan against cloned metadata on other threads.
pub(crate) struct Planner<'a> {
    pub(crate) specs: &'a [IndexSpec],
    pub(crate) encoding: &'a Encoding,
}

impl Planner<'_> {
    pub(crate) fn spec(&self, id: IndexId) -> Result<&IndexSpec> {
        self.specs.get(id as usize).ok_or(Error::UnknownIndex(id))
    }

    // ----- entry enumeration ---------------------------------------------
    //
    // These walk the object store only, which is what makes the degraded
    // query path possible: when the tree is quarantined or faulting, a
    // reader holding (specs, encoding, store) can still compute the exact
    // entry set a healthy index would contain.

    fn class_in_scope(
        &self,
        schema: &Schema,
        spec: &IndexSpec,
        pos: usize,
        class: ClassId,
    ) -> bool {
        let pc = spec.positions[pos].class;
        if spec.include_subclasses {
            schema.is_subclass_of(class, pc)
        } else {
            class == pc
        }
    }

    /// All entry keys anchored at `anchor`; see
    /// [`UIndex::entries_for_anchor`].
    pub(crate) fn entries_for_anchor(
        &self,
        store: &ObjectStore,
        id: IndexId,
        anchor: Oid,
    ) -> Result<Vec<EntryKey>> {
        let spec = self.spec(id)?;
        let schema = store.schema();
        if !store.exists(anchor) {
            return Ok(Vec::new());
        }
        let class = store.class_of(anchor)?;
        if !self.class_in_scope(schema, spec, 0, class) {
            return Ok(Vec::new());
        }
        let obj = store.get(anchor)?;
        let Some(value) = obj.get(spec.attr.0, spec.attr.1) else {
            return Ok(Vec::new());
        };
        if !value.is_indexable() {
            return Ok(Vec::new());
        }
        let chains = self.chains(spec);

        let mut out = Vec::new();
        for chain in &chains {
            let mut stack: Vec<Vec<(usize, Oid)>> = vec![vec![(0, anchor)]];
            // Depth-first instantiation along the chain.
            self.instantiate_chain(store, spec, chain, 1, &mut stack, value, id, &mut out)?;
        }
        // Multi-branch specs can produce duplicate single-position chains;
        // normalize.
        out.sort_by_key(|k| k.encode().ok());
        out.dedup();
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn instantiate_chain(
        &self,
        store: &ObjectStore,
        spec: &IndexSpec,
        chain: &[usize],
        depth: usize,
        stack: &mut Vec<Vec<(usize, Oid)>>,
        value: &Value,
        id: IndexId,
        out: &mut Vec<EntryKey>,
    ) -> Result<()> {
        let schema = store.schema();
        if depth == chain.len() {
            // Emit one entry from the current assignment.
            let assignment: Vec<(usize, Oid)> =
                stack.iter().map(|lvl| *lvl.last().expect("set")).collect();
            let mut path: Vec<PathElem> = Vec::with_capacity(assignment.len());
            for (pos, oid) in &assignment {
                let class = store.class_of(*oid)?;
                let code = self
                    .encoding
                    .code(class)
                    .ok_or_else(|| Error::BadSpec(format!("class {class:?} has no code")))?;
                let _ = pos;
                path.push(PathElem {
                    code: code.as_bytes().to_vec(),
                    oid: *oid,
                });
            }
            out.push(EntryKey {
                index_id: id,
                value: value.clone(),
                path,
            });
            return Ok(());
        }
        let pos = chain[depth];
        let step = &spec.positions[pos];
        let (via_decl, via_attr) = step.via.expect("non-root position");
        let parent_pos = step.parent.expect("non-root position");
        // The object currently assigned to the parent position.
        let parent_oid = stack
            .iter()
            .flat_map(|lvl| lvl.last())
            .find(|(p, _)| *p == parent_pos)
            .map(|(_, o)| *o)
            .expect("parent assigned before child");
        // Candidates: objects referencing parent_oid via the spec's attr,
        // with a class in this position's scope.
        let mut candidates: Vec<Oid> = store
            .referrers(parent_oid)
            .into_iter()
            .filter(|(_, decl, attr)| (*decl, *attr) == (via_decl, via_attr))
            .map(|(src, _, _)| src)
            .filter(|src| {
                store
                    .class_of(*src)
                    .map(|c| self.class_in_scope(schema, spec, pos, c))
                    .unwrap_or(false)
            })
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        for cand in candidates {
            stack.push(vec![(pos, cand)]);
            self.instantiate_chain(store, spec, chain, depth + 1, stack, value, id, out)?;
            stack.pop();
        }
        Ok(())
    }

    /// Root-to-leaf chains of the spec's position forest.
    fn chains(&self, spec: &IndexSpec) -> Vec<Vec<usize>> {
        let n = spec.positions.len();
        let mut has_child = vec![false; n];
        for p in &spec.positions {
            if let Some(parent) = p.parent {
                has_child[parent] = true;
            }
        }
        (0..n)
            .filter(|&i| !has_child[i])
            .map(|leaf| {
                let mut chain = vec![leaf];
                let mut cur = leaf;
                while let Some(p) = spec.positions[cur].parent {
                    chain.push(p);
                    cur = p;
                }
                chain.reverse();
                chain
            })
            .collect()
    }

    /// All entry keys of index `id` that contain `oid` at any position;
    /// see [`UIndex::entries_involving`].
    pub(crate) fn entries_involving(
        &self,
        store: &ObjectStore,
        id: IndexId,
        oid: Oid,
    ) -> Result<Vec<EntryKey>> {
        let spec = self.spec(id)?;
        let schema = store.schema();
        if !store.exists(oid) {
            return Ok(Vec::new());
        }
        let class = store.class_of(oid)?;
        let chains = self.chains(spec);
        let mut out = Vec::new();
        for pos in 0..spec.positions.len() {
            if !self.class_in_scope(schema, spec, pos, class) {
                continue;
            }
            for chain in chains.iter().filter(|c| c.contains(&pos)) {
                let pi = chain.iter().position(|&x| x == pos).expect("contains");
                for up in self.enumerate_up(store, spec, chain, pi, oid)? {
                    let anchor = up[0].1;
                    let obj = store.get(anchor)?;
                    let Some(value) = obj.get(spec.attr.0, spec.attr.1) else {
                        continue;
                    };
                    if !value.is_indexable() {
                        continue;
                    }
                    let value = value.clone();
                    let mut stack: Vec<Vec<(usize, Oid)>> =
                        up.into_iter().map(|x| vec![x]).collect();
                    self.instantiate_chain(
                        store,
                        spec,
                        chain,
                        pi + 1,
                        &mut stack,
                        &value,
                        id,
                        &mut out,
                    )?;
                }
            }
        }
        out.sort_by_key(|k| k.encode().ok());
        out.dedup();
        Ok(out)
    }

    /// Assignments for `chain[0..=pi]` whose last element is `oid` at
    /// position `chain[pi]`, found by following the via references from
    /// `oid` towards the anchor.
    fn enumerate_up(
        &self,
        store: &ObjectStore,
        spec: &IndexSpec,
        chain: &[usize],
        pi: usize,
        oid: Oid,
    ) -> Result<Vec<Vec<(usize, Oid)>>> {
        if pi == 0 {
            return Ok(vec![vec![(chain[0], oid)]]);
        }
        let pos = chain[pi];
        let step = &spec.positions[pos];
        let (decl, attr) = step.via.expect("non-root position");
        let parent_pos = step.parent.expect("non-root position");
        let obj = store.get(oid)?;
        let targets: Vec<Oid> = match obj.get(decl, attr) {
            Some(Value::Ref(t)) => vec![*t],
            Some(Value::RefSet(ts)) => ts.clone(),
            _ => Vec::new(),
        };
        let schema = store.schema();
        let mut out = Vec::new();
        for t in targets {
            if !store.exists(t) {
                continue;
            }
            let tc = store.class_of(t)?;
            if !self.class_in_scope(schema, spec, parent_pos, tc) {
                continue;
            }
            for mut up in self.enumerate_up(store, spec, chain, pi - 1, t)? {
                up.push((pos, oid));
                out.push(up);
            }
        }
        Ok(out)
    }

    /// Anchors (position-0 objects) whose entries involve `oid`; see
    /// [`UIndex::anchors_affected`].
    pub(crate) fn anchors_affected(
        &self,
        store: &ObjectStore,
        id: IndexId,
        oid: Oid,
    ) -> Result<Vec<Oid>> {
        let spec = self.spec(id)?;
        let schema = store.schema();
        if !store.exists(oid) {
            return Ok(Vec::new());
        }
        let class = store.class_of(oid)?;
        let mut anchors = BTreeSet::new();
        for pos in 0..spec.positions.len() {
            if self.class_in_scope(schema, spec, pos, class) {
                self.descend_to_anchors(store, spec, pos, oid, &mut anchors)?;
            }
        }
        Ok(anchors.into_iter().collect())
    }

    fn descend_to_anchors(
        &self,
        store: &ObjectStore,
        spec: &IndexSpec,
        pos: usize,
        oid: Oid,
        out: &mut BTreeSet<Oid>,
    ) -> Result<()> {
        if pos == 0 {
            out.insert(oid);
            return Ok(());
        }
        let step = &spec.positions[pos];
        let (decl, attr) = step.via.expect("non-root");
        let parent_pos = step.parent.expect("non-root");
        let obj = store.get(oid)?;
        let targets: Vec<Oid> = match obj.get(decl, attr) {
            Some(Value::Ref(t)) => vec![*t],
            Some(Value::RefSet(ts)) => ts.clone(),
            _ => Vec::new(),
        };
        let schema = store.schema();
        for t in targets {
            if store.exists(t) {
                let tc = store.class_of(t)?;
                if self.class_in_scope(schema, spec, parent_pos, tc) {
                    self.descend_to_anchors(store, spec, parent_pos, t, out)?;
                }
            }
        }
        Ok(())
    }

    fn resolve_class_sel(
        &self,
        sel: &ClassSel,
        region: &(Vec<u8>, Vec<u8>),
        out: &mut Vec<(Vec<u8>, Vec<u8>)>,
    ) -> Result<()> {
        match sel {
            ClassSel::Any => out.push(region.clone()),
            ClassSel::Exact(c) => {
                let code = self
                    .encoding
                    .code(*c)
                    .ok_or_else(|| Error::BadQuery(format!("class {c:?} has no code")))?;
                let lo = code.as_bytes().to_vec();
                let mut hi = lo.clone();
                hi.push(0x00);
                out.push((lo, hi));
            }
            ClassSel::SubTree(c) => {
                let (lo, hi) = self
                    .encoding
                    .subtree_range(*c)
                    .ok_or_else(|| Error::BadQuery(format!("class {c:?} has no code")))?;
                out.push((lo, hi));
            }
            ClassSel::AnyOf(sels) => {
                for s in sels {
                    self.resolve_class_sel(s, region, out)?;
                }
            }
        }
        Ok(())
    }

    fn value_ranges(&self, q: &Query) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        use crate::query::ValuePred::*;
        let point = |v: &Value| -> Result<(Vec<u8>, Vec<u8>)> {
            let e = v
                .encode_ordered()
                .ok_or_else(|| Error::BadQuery("non-indexable query value".into()))?;
            let mut hi = e.clone();
            hi.push(0x00);
            Ok((e, hi))
        };
        let mut ranges = match &q.value {
            Any => vec![(Vec::new(), vec![0xFF])],
            Eq(v) => vec![point(v)?],
            In(vs) => {
                let mut r = Vec::with_capacity(vs.len());
                for v in vs {
                    r.push(point(v)?);
                }
                r
            }
            Range {
                lo,
                hi,
                hi_inclusive,
            } => {
                let lo_b = match lo {
                    Some(v) => v
                        .encode_ordered()
                        .ok_or_else(|| Error::BadQuery("non-indexable bound".into()))?,
                    None => Vec::new(),
                };
                let hi_b = match hi {
                    Some(v) => {
                        let mut b = v
                            .encode_ordered()
                            .ok_or_else(|| Error::BadQuery("non-indexable bound".into()))?;
                        if *hi_inclusive {
                            b.push(0x00);
                        }
                        b
                    }
                    None => vec![0xFF],
                };
                if lo_b >= hi_b {
                    return Err(Error::BadQuery("empty value range".into()));
                }
                vec![(lo_b, hi_b)]
            }
        };
        ranges.sort();
        ranges.dedup();
        // Merge overlaps so range_position sees disjoint intervals.
        let mut merged: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(ranges.len());
        for r in ranges {
            match merged.last_mut() {
                Some(last) if r.0 <= last.1 => {
                    if r.1 > last.1 {
                        last.1 = r.1;
                    }
                }
                _ => merged.push(r),
            }
        }
        Ok(merged)
    }

    pub(crate) fn matcher(&self, q: &Query) -> Result<Matcher> {
        let spec = self.spec(q.index)?;
        let value_ranges = self.value_ranges(q)?;
        let mut positions = Vec::with_capacity(spec.positions.len());
        for (i, step) in spec.positions.iter().enumerate() {
            let region = if spec.include_subclasses {
                self.encoding
                    .subtree_range(step.class)
                    .ok_or_else(|| Error::BadSpec("class has no code".into()))?
            } else {
                let code = self
                    .encoding
                    .code(step.class)
                    .ok_or_else(|| Error::BadSpec("class has no code".into()))?
                    .as_bytes()
                    .to_vec();
                let mut hi = code.clone();
                hi.push(0x00);
                (code, hi)
            };
            let pred = q.preds.iter().find(|(p, _)| *p == i).map(|(_, p)| p);
            let (class_ranges, oids, required) = match pred {
                None => (vec![region.clone()], OidSel::Any, false),
                Some(p) => {
                    let mut ranges = Vec::new();
                    self.resolve_class_sel(&p.class, &region, &mut ranges)?;
                    ranges.sort();
                    ranges.dedup();
                    let mut merged: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
                    for r in ranges {
                        // Clamp to the position region.
                        let lo = r.0.max(region.0.clone());
                        let hi = r.1.min(region.1.clone());
                        if lo >= hi {
                            continue;
                        }
                        match merged.last_mut() {
                            Some(last) if lo <= last.1 => {
                                if hi > last.1 {
                                    last.1 = hi;
                                }
                            }
                            _ => merged.push((lo, hi)),
                        }
                    }
                    if merged.is_empty() {
                        return Err(Error::BadQuery(format!(
                            "class selector at position {i} selects nothing in this index"
                        )));
                    }
                    let required = !p.class.is_any() || !p.oid.is_any();
                    (merged, p.oid.clone(), required)
                }
            };
            positions.push(PosConstraint {
                region,
                class_ranges,
                oids,
                required,
            });
        }
        for (p, _) in &q.preds {
            if *p >= spec.positions.len() {
                return Err(Error::BadQuery(format!(
                    "predicate on position {p}, index has {}",
                    spec.positions.len()
                )));
            }
        }
        Ok(Matcher {
            index_id: q.index,
            value_ranges,
            positions,
        })
    }
}
