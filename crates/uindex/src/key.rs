//! Composite index-key encoding.
//!
//! ```text
//! key := index_id(u16 BE) ++ value_enc ++ 0x00 ++ elem*
//! elem := class_code_bytes ++ 0x00 ++ oid(u32 BE)
//! ```
//!
//! * `value_enc` is [`Value::encode_ordered`] (self-delimiting);
//! * class-code bytes never contain `0x00`, so the `0x00` after the code is
//!   an unambiguous terminator;
//! * OIDs are fixed-width, so no separator is needed before the next code;
//! * elements appear in ascending class-code order (guaranteed by the spec
//!   validation), giving the paper's clustering.

use objstore::{Oid, Value};

use crate::error::{Error, Result};

/// Separator written after the value and after each class code.
pub const FIELD_SEP: u8 = 0x00;

/// One path element of an entry: the object's class code and its OID.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathElem {
    /// The byte encoding of the object's class code.
    pub code: Vec<u8>,
    /// The object.
    pub oid: Oid,
}

/// A decoded index entry key.
#[derive(Debug, Clone, PartialEq)]
pub struct EntryKey {
    /// Which index this entry belongs to.
    pub index_id: u16,
    /// The indexed attribute value.
    pub value: Value,
    /// Path elements in ascending class-code order; a class-hierarchy entry
    /// has exactly one.
    pub path: Vec<PathElem>,
}

impl EntryKey {
    /// Serialize to the B-tree key bytes.
    ///
    /// Returns an error for non-indexable (reference) values.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let venc = self
            .value
            .encode_ordered()
            .ok_or_else(|| Error::BadKey("reference values are not indexable".into()))?;
        let mut out = Vec::with_capacity(2 + venc.len() + 1 + self.path.len() * 12);
        out.extend_from_slice(&self.index_id.to_be_bytes());
        out.extend_from_slice(&venc);
        out.push(FIELD_SEP);
        for e in &self.path {
            debug_assert!(!e.code.contains(&FIELD_SEP));
            out.extend_from_slice(&e.code);
            out.push(FIELD_SEP);
            out.extend_from_slice(&e.oid.to_bytes());
        }
        Ok(out)
    }

    /// Decode B-tree key bytes.
    pub fn decode(bytes: &[u8]) -> Result<EntryKey> {
        if bytes.len() < 2 {
            return Err(Error::BadKey("key shorter than index id".into()));
        }
        let index_id = u16::from_be_bytes([bytes[0], bytes[1]]);
        let rest = &bytes[2..];
        let (value, used) = Value::decode_ordered(rest)
            .ok_or_else(|| Error::BadKey("undecodable value field".into()))?;
        let mut pos = used;
        if rest.get(pos) != Some(&FIELD_SEP) {
            return Err(Error::BadKey("missing separator after value".into()));
        }
        pos += 1;
        let mut path = Vec::new();
        while pos < rest.len() {
            let code_end = rest[pos..]
                .iter()
                .position(|&b| b == FIELD_SEP)
                .ok_or_else(|| Error::BadKey("unterminated class code".into()))?;
            let code = rest[pos..pos + code_end].to_vec();
            if code.is_empty() {
                return Err(Error::BadKey("empty class code".into()));
            }
            pos += code_end + 1;
            let oid_bytes: [u8; 4] = rest
                .get(pos..pos + 4)
                .ok_or_else(|| Error::BadKey("truncated oid".into()))?
                .try_into()
                .expect("length checked");
            pos += 4;
            path.push(PathElem {
                code,
                oid: Oid::from_bytes(oid_bytes),
            });
        }
        if path.is_empty() {
            return Err(Error::BadKey("entry has no path elements".into()));
        }
        Ok(EntryKey {
            index_id,
            value,
            path,
        })
    }

    /// Key prefix selecting an entire index: `[index_id]`.
    pub fn index_prefix(index_id: u16) -> Vec<u8> {
        index_id.to_be_bytes().to_vec()
    }

    /// Key prefix selecting one value within an index:
    /// `[index_id][value][sep]`.
    pub fn value_prefix(index_id: u16, value: &Value) -> Result<Vec<u8>> {
        let venc = value
            .encode_ordered()
            .ok_or_else(|| Error::BadKey("reference values are not indexable".into()))?;
        let mut out = Vec::with_capacity(2 + venc.len() + 1);
        out.extend_from_slice(&index_id.to_be_bytes());
        out.extend_from_slice(&venc);
        out.push(FIELD_SEP);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: Value, path: Vec<(&[u8], u32)>) -> EntryKey {
        EntryKey {
            index_id: 7,
            value: v,
            path: path
                .into_iter()
                .map(|(c, o)| PathElem {
                    code: c.to_vec(),
                    oid: Oid(o),
                })
                .collect(),
        }
    }

    #[test]
    fn roundtrip_single_position() {
        let k = key(Value::Str("Red".into()), vec![(&[b'N', 1], 42)]);
        let enc = k.encode().unwrap();
        assert_eq!(EntryKey::decode(&enc).unwrap(), k);
    }

    #[test]
    fn roundtrip_path() {
        let k = key(
            Value::Int(50),
            vec![
                (&[b'B', 1], 3),
                (&[b'C', 1], 12),
                (&[b'E', 1, b'B', 1], 123),
            ],
        );
        let enc = k.encode().unwrap();
        assert_eq!(EntryKey::decode(&enc).unwrap(), k);
    }

    #[test]
    fn ordering_groups_by_value_then_code_then_oid() {
        let ks = [
            key(Value::Int(1), vec![(&[b'B', 1], 9)]),
            key(Value::Int(1), vec![(&[b'B', 1, b'C', 1], 1)]),
            key(Value::Int(1), vec![(&[b'C', 1], 1)]),
            key(Value::Int(2), vec![(&[b'B', 1], 1)]),
        ];
        let encs: Vec<Vec<u8>> = ks.iter().map(|k| k.encode().unwrap()).collect();
        for w in encs.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn subtree_entries_cluster() {
        // Entries for code B and descendants B.C, B.C.D must be contiguous:
        // between B-entries and the next sibling's entries.
        let parent = key(Value::Int(1), vec![(&[b'B', 1], 1)]);
        let child = key(Value::Int(1), vec![(&[b'B', 1, b'C', 1], 1)]);
        let sibling = key(Value::Int(1), vec![(&[b'C', 1], 1)]);
        let pe = parent.encode().unwrap();
        let ce = child.encode().unwrap();
        let se = sibling.encode().unwrap();
        assert!(pe < ce && ce < se);
    }

    #[test]
    fn different_indexes_do_not_interleave() {
        let a = key(Value::Int(999), vec![(&[b'Z', 1], u32::MAX)]);
        let mut b = key(Value::Int(-999), vec![(&[b'B', 1], 0)]);
        b.index_id = 8;
        assert!(a.encode().unwrap() < b.encode().unwrap());
    }

    #[test]
    fn value_prefix_bounds_value_group() {
        let p = EntryKey::value_prefix(7, &Value::Int(5)).unwrap();
        let inside = key(Value::Int(5), vec![(&[b'B', 1], 3)]).encode().unwrap();
        let below = key(Value::Int(4), vec![(&[b'Z', 1], 9)]).encode().unwrap();
        let above = key(Value::Int(6), vec![(&[b'B', 1], 0)]).encode().unwrap();
        assert!(inside.starts_with(&p));
        assert!(below < p);
        assert!(above > p && !above.starts_with(&p));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(EntryKey::decode(&[]).is_err());
        assert!(EntryKey::decode(&[0, 7]).is_err());
        assert!(EntryKey::decode(&[0, 7, 0x10, 1, 2]).is_err());
        // Valid value but no path.
        let p = EntryKey::value_prefix(7, &Value::Int(5)).unwrap();
        assert!(EntryKey::decode(&p).is_err());
        // Unterminated code.
        let mut k = p.clone();
        k.extend_from_slice(&[b'N', 1]);
        assert!(EntryKey::decode(&k).is_err());
        // Truncated oid.
        let mut k = p;
        k.extend_from_slice(&[b'N', 1, 0, 1, 2]);
        assert!(EntryKey::decode(&k).is_err());
    }

    #[test]
    fn ref_value_not_encodable() {
        let k = key(Value::Ref(Oid(1)), vec![(&[b'B', 1], 1)]);
        assert!(k.encode().is_err());
    }
}
