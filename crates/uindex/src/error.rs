use std::fmt;

/// Errors from index definition, maintenance, and querying.
#[derive(Debug)]
pub enum Error {
    /// Underlying page/B-tree failure.
    Page(pagestore::Error),
    /// Underlying object-store failure.
    Store(objstore::Error),
    /// Schema/encoding failure.
    Schema(schema::Error),
    /// An index definition that cannot be supported (reasons in message).
    BadSpec(String),
    /// Query referenced an index id that does not exist.
    UnknownIndex(u16),
    /// Query shape does not fit the index (e.g. constraint on a position
    /// the index does not have).
    BadQuery(String),
    /// Key bytes that failed to decode (index corruption).
    BadKey(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Page(e) => write!(f, "page store: {e}"),
            Error::Store(e) => write!(f, "object store: {e}"),
            Error::Schema(e) => write!(f, "schema: {e}"),
            Error::BadSpec(m) => write!(f, "bad index spec: {m}"),
            Error::UnknownIndex(i) => write!(f, "unknown index id {i}"),
            Error::BadQuery(m) => write!(f, "bad query: {m}"),
            Error::BadKey(m) => write!(f, "bad key: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Page(e) => Some(e),
            Error::Store(e) => Some(e),
            Error::Schema(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pagestore::Error> for Error {
    fn from(e: pagestore::Error) -> Self {
        Error::Page(e)
    }
}

impl From<objstore::Error> for Error {
    fn from(e: objstore::Error) -> Self {
        Error::Store(e)
    }
}

impl From<schema::Error> for Error {
    fn from(e: schema::Error) -> Self {
        Error::Schema(e)
    }
}

/// Result alias for U-index operations.
pub type Result<T> = std::result::Result<T, Error>;
