//! Query translation and the two retrieval algorithms (§3.4).
//!
//! A [`Matcher`] holds, per key field, the allowed byte ranges implied by
//! the query: one list for the value field and, for every path position,
//! class-code ranges plus an OID selector. Scanning then works like this:
//!
//! * **forward scanning** — seek to the first candidate, then step entry by
//!   entry until the value field passes the last allowed range;
//! * **parallel algorithm** (Algorithm 1) — same, but on a mismatch the
//!   matcher computes the *smallest possible key* that could still match
//!   (keep the matched prefix fields, advance the offending field to its
//!   next allowed range — or, when exhausted, advance the previous field to
//!   its successor) and the scan re-descends there. Pages already touched in
//!   this query are counted once by the buffer pool, which is exactly the
//!   paper's "scan relevant B-tree nodes only and utilize them for all
//!   possible key values".

use btree::ReadView;
use objstore::{Oid, Value};
use pagestore::PageStore;

use crate::error::{Error, Result};
use crate::key::{EntryKey, FIELD_SEP};
use crate::query::{OidSel, QueryHit};

/// Which retrieval algorithm a query uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanAlgorithm {
    /// The paper's Algorithm 1: skip-seek over the B-tree, re-descending
    /// hierarchically from the lowest retained ancestor that covers each
    /// skip target (see `BTree::reseek`).
    Parallel,
    /// Algorithm 1 with every skip paying a full root-to-leaf descent —
    /// the pre-reseek behavior, kept selectable as the benchmark baseline.
    ParallelFlat,
    /// Naive forward scanning from the first relevant entry.
    Forward,
}

impl ScanAlgorithm {
    fn skips(self) -> bool {
        !matches!(self, ScanAlgorithm::Forward)
    }
}

/// Per-query cost counters (the numbers the paper's experiments report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Distinct pages touched (experiment 2's "page reads"; also experiment
    /// 1's "visited nodes").
    pub pages_read: u64,
    /// Total node visits including revisits.
    pub node_visits: u64,
    /// Index entries the matcher examined.
    pub entries_examined: u64,
    /// Entries that matched.
    pub matches: u64,
    /// Skip-seeks performed (0 for forward scans).
    pub seeks: u64,
    /// Tree descents that fetched at least one node: the initial seek plus
    /// every skip-seek that could not be resolved inside the current leaf.
    /// With hierarchical reseek this is typically far below `seeks`.
    pub descents: u64,
    /// Total nodes fetched by those descents (a flat descent fetches the
    /// full tree height; an LCA re-descent only the levels below the LCA).
    pub reseek_depth_total: u64,
}

/// Executed-query trace: everything [`ScanStats`] reports plus the
/// registry-derived breakdowns a single counter struct cannot carry — how
/// the skip-seeks resolved (within-leaf / LCA re-descent / full descent),
/// how the buffer pool behaved, how many partial keys the matcher expanded
/// — and the per-phase timing span tree (`query` → `plan`/`descend`/`scan`)
/// when produced via `Database::explain_*`.
#[derive(Debug, Clone, Default)]
pub struct QueryTrace {
    /// Skip targets the matcher computed ("next possible key values" in the
    /// paper's Algorithm 1), whether or not a seek was issued for them.
    pub partial_keys_expanded: u64,
    /// Skip-seeks actually issued (`== ScanStats::seeks`).
    pub skips: u64,
    pub entries_examined: u64,
    pub matches: u64,
    pub pages_read: u64,
    pub node_visits: u64,
    pub descents: u64,
    pub reseek_depth_total: u64,
    /// Skip-seeks resolved inside the current leaf (zero fetches).
    pub reseeks_leaf: u64,
    /// Skip-seeks resolved by LCA re-descent over the retained path.
    pub reseeks_lca: u64,
    /// Skip-seeks that fell back to a full root descent.
    pub reseeks_full: u64,
    pub pool_hits: u64,
    pub pool_misses: u64,
    /// Root span of the query ("query" → "plan"/"descend"/"scan"), when
    /// collected by the caller.
    pub span: Option<telemetry::SpanNode>,
}

/// Constraints for one path position.
#[derive(Debug, Clone)]
pub(crate) struct PosConstraint {
    /// Full code region this position covers (for attributing entry
    /// elements to positions).
    pub region: (Vec<u8>, Vec<u8>),
    /// Allowed code ranges (subset of `region`), sorted and disjoint.
    pub class_ranges: Vec<(Vec<u8>, Vec<u8>)>,
    /// OID restriction.
    pub oids: OidSel,
    /// Whether an entry must include this position to match.
    pub required: bool,
}

/// A translated query.
#[derive(Debug, Clone)]
pub(crate) struct Matcher {
    pub index_id: u16,
    /// Allowed `[lo, hi)` ranges on the raw value-field bytes, sorted and
    /// disjoint.
    pub value_ranges: Vec<(Vec<u8>, Vec<u8>)>,
    pub positions: Vec<PosConstraint>,
}

/// What to do with the entry under the cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Advice {
    /// Entry matches; `assignment[pos]` is the entry element occupying each
    /// spec position.
    Match(Vec<Option<usize>>),
    /// Entry cannot match but the next entry might (no useful skip target).
    Step,
    /// No entry below this key can match; seek to it.
    SkipTo(Vec<u8>),
    /// No further entry can match.
    Done,
}

enum RangePos<'a> {
    Within,
    Below(&'a [u8]),
    Above,
}

fn range_position<'a>(field: &[u8], ranges: &'a [(Vec<u8>, Vec<u8>)]) -> RangePos<'a> {
    let idx = ranges.partition_point(|r| r.1.as_slice() <= field);
    if idx == ranges.len() {
        RangePos::Above
    } else if field >= ranges[idx].0.as_slice() {
        RangePos::Within
    } else {
        RangePos::Below(&ranges[idx].0)
    }
}

struct ElemOffsets {
    /// Offset of the code's first byte within the key.
    start: usize,
    /// Offset of the separator byte after the code.
    sep: usize,
    /// Offset of the OID's first byte.
    oid_start: usize,
}

/// Reusable per-scan scratch space so examining an entry allocates
/// nothing: element offsets and the position assignment are parsed into
/// these buffers in place; only an actual `Match` clones the assignment
/// out.
#[derive(Default)]
pub(crate) struct ScanScratch {
    elems: Vec<ElemOffsets>,
    assignment: Vec<Option<usize>>,
}

/// Parse a key's element offsets into `elems` (cleared first), returning
/// the offset of the separator after the value field.
fn parse_offsets_into(key: &[u8], elems: &mut Vec<ElemOffsets>) -> Result<usize> {
    elems.clear();
    if key.len() < 2 {
        return Err(Error::BadKey("key shorter than index id".into()));
    }
    let rest = &key[2..];
    let (_, vlen) = Value::decode_ordered(rest)
        .ok_or_else(|| Error::BadKey("undecodable value field".into()))?;
    let val_sep = 2 + vlen;
    if key.get(val_sep) != Some(&FIELD_SEP) {
        return Err(Error::BadKey("missing separator after value".into()));
    }
    let mut offset = val_sep + 1;
    while offset < key.len() {
        let code_len = key[offset..]
            .iter()
            .position(|&b| b == FIELD_SEP)
            .ok_or_else(|| Error::BadKey("unterminated class code".into()))?;
        let sep = offset + code_len;
        let oid_start = sep + 1;
        if oid_start + 4 > key.len() || code_len == 0 {
            return Err(Error::BadKey("truncated element".into()));
        }
        elems.push(ElemOffsets {
            start: offset,
            sep,
            oid_start,
        });
        offset = oid_start + 4;
    }
    Ok(val_sep)
}

/// Parse a key into (value-separator offset, element offsets).
fn parse_offsets(key: &[u8]) -> Result<(usize, Vec<ElemOffsets>)> {
    let mut elems = Vec::new();
    let val_sep = parse_offsets_into(key, &mut elems)?;
    Ok((val_sep, elems))
}

impl Matcher {
    /// The first key that could possibly match.
    pub fn initial_seek(&self) -> Vec<u8> {
        let mut t = self.index_id.to_be_bytes().to_vec();
        if let Some((lo, _)) = self.value_ranges.first() {
            t.extend_from_slice(lo);
        }
        t
    }

    /// Smallest key strictly greater than `key` in the field *before* the
    /// element starting at `elem_idx` (or before the first element, i.e.
    /// the value field, when `elem_idx == 0`).
    fn bump_before(
        &self,
        key: &[u8],
        val_sep: usize,
        elems: &[ElemOffsets],
        elem_idx: usize,
    ) -> Advice {
        if elem_idx == 0 {
            // Successor of the value field: the 0x00 separator after the
            // value becomes 0x01, stepping past every key with this value.
            let mut t = key[..val_sep].to_vec();
            t.push(0x01);
            return Advice::SkipTo(t);
        }
        let prev = &elems[elem_idx - 1];
        let oid = u32::from_be_bytes(key[prev.oid_start..prev.oid_start + 4].try_into().unwrap());
        match oid.checked_add(1) {
            Some(next) => {
                let mut t = key[..prev.oid_start].to_vec();
                t.extend_from_slice(&next.to_be_bytes());
                Advice::SkipTo(t)
            }
            None => self.bump_code(key, prev),
        }
    }

    /// Smallest key whose code field at `elem` is strictly greater than the
    /// current code (covers both later siblings and descendants).
    fn bump_code(&self, key: &[u8], elem: &ElemOffsets) -> Advice {
        let mut t = key[..elem.sep].to_vec();
        t.push(0x01);
        Advice::SkipTo(t)
    }

    /// Evaluate `key` (convenience wrapper allocating fresh scratch; the
    /// scan loop uses [`Matcher::advise_with`]).
    #[cfg(test)]
    pub fn advise(&self, key: &[u8]) -> Result<Advice> {
        self.advise_with(key, &mut ScanScratch::default())
    }

    /// Evaluate `key`, parsing into `scratch` instead of allocating.
    pub(crate) fn advise_with(&self, key: &[u8], scratch: &mut ScanScratch) -> Result<Advice> {
        let ScanScratch { elems, assignment } = scratch;
        let myid = self.index_id.to_be_bytes();
        match key.get(..2) {
            None => return Err(Error::BadKey("key shorter than index id".into())),
            Some(kid) if kid < &myid[..] => return Ok(Advice::SkipTo(myid.to_vec())),
            Some(kid) if kid > &myid[..] => return Ok(Advice::Done),
            _ => {}
        }
        let val_sep = parse_offsets_into(key, elems)?;
        let vfield = &key[2..val_sep];
        match range_position(vfield, &self.value_ranges) {
            RangePos::Within => {}
            RangePos::Below(lo) => {
                let mut t = myid.to_vec();
                t.extend_from_slice(lo);
                return Ok(Advice::SkipTo(t));
            }
            RangePos::Above => return Ok(Advice::Done),
        }
        assignment.clear();
        assignment.resize(self.positions.len(), None);
        let mut pos_idx = 0;
        for (ei, elem) in elems.iter().enumerate() {
            let code = &key[elem.start..elem.sep];
            // Attribute this element to the next position whose region
            // contains its code.
            loop {
                if pos_idx >= self.positions.len() {
                    return Ok(Advice::Step); // element beyond all positions
                }
                let pc = &self.positions[pos_idx];
                if code < pc.region.0.as_slice() {
                    return Ok(Advice::Step); // code in a region gap
                }
                if code < pc.region.1.as_slice() {
                    break; // attributed to pos_idx
                }
                // Entry skipped past this position entirely.
                if pc.required {
                    // Keys are grouped by earlier fields; within this group
                    // every later entry jumps past the position too.
                    return Ok(self.bump_before(key, val_sep, elems, ei));
                }
                pos_idx += 1;
            }
            let pc = &self.positions[pos_idx];
            match range_position(code, &pc.class_ranges) {
                RangePos::Within => {}
                RangePos::Below(lo) => {
                    let mut t = key[..elem.start].to_vec();
                    t.extend_from_slice(lo);
                    return Ok(Advice::SkipTo(t));
                }
                RangePos::Above => {
                    return Ok(self.bump_before(key, val_sep, elems, ei));
                }
            }
            let oid_bytes: [u8; 4] = key[elem.oid_start..elem.oid_start + 4]
                .try_into()
                .expect("parsed");
            match &pc.oids {
                OidSel::Any => {}
                OidSel::Is(o) => {
                    let want = o.to_bytes();
                    if oid_bytes < want {
                        let mut t = key[..elem.oid_start].to_vec();
                        t.extend_from_slice(&want);
                        return Ok(Advice::SkipTo(t));
                    } else if oid_bytes > want {
                        return Ok(self.bump_code(key, elem));
                    }
                }
                OidSel::In(set) => {
                    let cur = Oid::from_bytes(oid_bytes);
                    match set.range(cur..).next() {
                        Some(&o) if o == cur => {}
                        Some(&o) => {
                            let mut t = key[..elem.oid_start].to_vec();
                            t.extend_from_slice(&o.to_bytes());
                            return Ok(Advice::SkipTo(t));
                        }
                        None => return Ok(self.bump_code(key, elem)),
                    }
                }
            }
            assignment[pos_idx] = Some(ei);
            pos_idx += 1;
        }
        // Positions after the last element: a longer key sharing this whole
        // key as prefix may still include them, so only Step on a miss.
        if self.positions[pos_idx..].iter().any(|p| p.required) {
            return Ok(Advice::Step);
        }
        Ok(Advice::Match(assignment.clone()))
    }

    /// After a match, the target that skips the rest of the combination
    /// fixed through element `elem_idx` (for `distinct_through`).
    pub fn skip_past_match(&self, key: &[u8], elem_idx: usize) -> Result<Option<Vec<u8>>> {
        let (_, elems) = parse_offsets(key)?;
        let Some(elem) = elems.get(elem_idx) else {
            return Ok(None);
        };
        let oid = u32::from_be_bytes(key[elem.oid_start..elem.oid_start + 4].try_into().unwrap());
        Ok(Some(match oid.checked_add(1) {
            Some(next) => {
                let mut t = key[..elem.oid_start].to_vec();
                t.extend_from_slice(&next.to_be_bytes());
                t
            }
            None => {
                let mut t = key[..elem.sep].to_vec();
                t.push(0x01);
                t
            }
        }))
    }
}

/// Skip-seek the cursor to `target`: hierarchically for `Parallel`
/// (LCA re-descent over the retained path), with a full root descent for
/// the `ParallelFlat` baseline.
fn skip_seek<S: PageStore>(
    view: &ReadView<'_, S>,
    cur: &mut btree::Cursor,
    target: &[u8],
    algorithm: ScanAlgorithm,
) -> Result<()> {
    if algorithm == ScanAlgorithm::ParallelFlat {
        // In place so the cursor keeps its accumulated seek stats.
        view.seek_into(cur, target)?;
    } else {
        view.reseek(cur, target)?;
    }
    Ok(())
}

/// Run a translated query against the shared B-tree.
///
/// The loop reads entries through `cursor_entry_ref` — a borrowed view into
/// the shared decoded leaf — and parses them into reusable scratch, so
/// examining an entry copies no key or value bytes and performs no
/// allocation; only actual matches materialize owned data.
///
/// Registry counter deltas captured around the scan attribute the
/// skip-seeks to their resolution tier and the page fetches to pool hits
/// vs misses, forming the returned [`QueryTrace`]. All cumulative
/// `uindex.*` registry counters and the per-query histograms are fed here,
/// so every query path (UQL, programmatic, benches) reports through one
/// place.
pub(crate) fn execute_traced<S: PageStore>(
    view: &ReadView<'_, S>,
    matcher: &Matcher,
    algorithm: ScanAlgorithm,
    distinct_upto: Option<usize>,
) -> Result<(Vec<QueryHit>, ScanStats, QueryTrace)> {
    view.pool().begin_query();
    let reseek_leaf_0 = telemetry::counter_value("btree.reseek.leaf");
    let reseek_lca_0 = telemetry::counter_value("btree.reseek.lca");
    let reseek_full_0 = telemetry::counter_value("btree.reseek.full");
    let pool_hits_0 = telemetry::counter_value("pagestore.pool.hits");
    let pool_misses_0 = telemetry::counter_value("pagestore.pool.misses");
    let mut stats = ScanStats::default();
    let mut trace = QueryTrace::default();
    let mut scratch = ScanScratch::default();
    let mut hits = Vec::new();
    let mut cur = {
        let _descend = telemetry::Span::enter("descend");
        view.seek(&matcher.initial_seek())?
    };
    let scan_span = telemetry::Span::enter("scan");
    while let Some(e) = view.cursor_entry_ref(&mut cur)? {
        stats.entries_examined += 1;
        match matcher.advise_with(e.key(), &mut scratch)? {
            Advice::Match(assignment) => {
                stats.matches += 1;
                let skip = match distinct_upto {
                    Some(pos) => match assignment.get(pos).copied().flatten() {
                        Some(ei) => matcher.skip_past_match(e.key(), ei)?,
                        None => None,
                    },
                    None => None,
                };
                hits.push(QueryHit {
                    key: EntryKey::decode(e.key())?,
                    assignment,
                });
                if skip.is_some() {
                    trace.partial_keys_expanded += 1;
                }
                match skip {
                    Some(t) if algorithm.skips() && t.as_slice() > e.key() => {
                        stats.seeks += 1;
                        skip_seek(view, &mut cur, &t, algorithm)?;
                    }
                    _ => cur.advance(),
                }
            }
            Advice::Step => cur.advance(),
            Advice::SkipTo(t) => {
                trace.partial_keys_expanded += 1;
                if t.as_slice() <= e.key() {
                    // A non-advancing skip target would loop the scan
                    // forever. It cannot arise from a well-formed matcher,
                    // but if one slips through (corrupt key bytes, a bad
                    // hand-built matcher), degrade to a plain step: every
                    // key still gets examined, only the skip is lost.
                    cur.advance();
                } else if algorithm.skips() {
                    stats.seeks += 1;
                    skip_seek(view, &mut cur, &t, algorithm)?;
                } else {
                    cur.advance();
                }
            }
            Advice::Done => break,
        }
    }
    drop(scan_span);
    let q = view.pool().query_stats();
    stats.pages_read = q.distinct_pages;
    stats.node_visits = q.node_visits;
    let s = cur.seek_stats();
    stats.descents = s.descents;
    stats.reseek_depth_total = s.depth_total;

    trace.skips = stats.seeks;
    trace.entries_examined = stats.entries_examined;
    trace.matches = stats.matches;
    trace.pages_read = stats.pages_read;
    trace.node_visits = stats.node_visits;
    trace.descents = stats.descents;
    trace.reseek_depth_total = stats.reseek_depth_total;
    trace.reseeks_leaf = telemetry::counter_value("btree.reseek.leaf") - reseek_leaf_0;
    trace.reseeks_lca = telemetry::counter_value("btree.reseek.lca") - reseek_lca_0;
    trace.reseeks_full = telemetry::counter_value("btree.reseek.full") - reseek_full_0;
    trace.pool_hits = telemetry::counter_value("pagestore.pool.hits") - pool_hits_0;
    trace.pool_misses = telemetry::counter_value("pagestore.pool.misses") - pool_misses_0;

    telemetry::counter("uindex.query.count").inc();
    telemetry::counter("uindex.scan.entries_examined").add(stats.entries_examined);
    telemetry::counter("uindex.scan.matches").add(stats.matches);
    telemetry::counter("uindex.scan.skips").add(stats.seeks);
    telemetry::counter("uindex.scan.partial_keys").add(trace.partial_keys_expanded);
    telemetry::counter("uindex.scan.pages").add(stats.pages_read);
    telemetry::counter("uindex.scan.node_visits").add(stats.node_visits);
    telemetry::counter("uindex.scan.descents").add(stats.descents);
    telemetry::counter("uindex.scan.reseek_depth").add(stats.reseek_depth_total);
    telemetry::histogram("uindex.query.pages").record(stats.pages_read);
    telemetry::histogram("uindex.query.entries").record(stats.entries_examined);
    Ok((hits, stats, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::PathElem;

    fn enc(v: i64, path: &[(&[u8], u32)]) -> Vec<u8> {
        EntryKey {
            index_id: 1,
            value: Value::Int(v),
            path: path
                .iter()
                .map(|(c, o)| PathElem {
                    code: c.to_vec(),
                    oid: Oid(*o),
                })
                .collect(),
        }
        .encode()
        .unwrap()
    }

    fn int_point(v: i64) -> (Vec<u8>, Vec<u8>) {
        let e = Value::Int(v).encode_ordered().unwrap();
        let mut hi = e.clone();
        hi.push(0x00);
        (e, hi)
    }

    /// One position over code region [B, C) with no constraints.
    fn matcher_one_pos(required: bool) -> Matcher {
        Matcher {
            index_id: 1,
            value_ranges: vec![int_point(5)],
            positions: vec![PosConstraint {
                region: (vec![b'B', 1], vec![b'B', 2]),
                class_ranges: vec![(vec![b'B', 1], vec![b'B', 2])],
                oids: OidSel::Any,
                required,
            }],
        }
    }

    #[test]
    fn match_and_done() {
        let m = matcher_one_pos(false);
        let k = enc(5, &[(&[b'B', 1], 7)]);
        assert_eq!(m.advise(&k).unwrap(), Advice::Match(vec![Some(0)]));
        // Value above the only allowed range: done.
        let k = enc(6, &[(&[b'B', 1], 7)]);
        assert_eq!(m.advise(&k).unwrap(), Advice::Done);
        // Other index id after ours: done.
        let mut k = enc(5, &[(&[b'B', 1], 7)]);
        k[1] = 2;
        assert_eq!(m.advise(&k).unwrap(), Advice::Done);
    }

    #[test]
    fn skip_below_value() {
        let m = matcher_one_pos(false);
        let k = enc(3, &[(&[b'B', 1], 7)]);
        match m.advise(&k).unwrap() {
            Advice::SkipTo(t) => {
                assert!(t.as_slice() > k.as_slice());
                // Target is id ++ enc(5).
                let mut want = 1u16.to_be_bytes().to_vec();
                want.extend(Value::Int(5).encode_ordered().unwrap());
                assert_eq!(t, want);
            }
            a => panic!("expected SkipTo, got {a:?}"),
        }
    }

    #[test]
    fn oid_is_constraint_skips() {
        let mut m = matcher_one_pos(true);
        m.positions[0].oids = OidSel::Is(Oid(10));
        // Below the wanted oid: skip directly to it.
        let k = enc(5, &[(&[b'B', 1], 3)]);
        match m.advise(&k).unwrap() {
            Advice::SkipTo(t) => {
                assert!(t.as_slice() > k.as_slice());
                assert!(t.ends_with(&Oid(10).to_bytes()));
            }
            a => panic!("{a:?}"),
        }
        // Exact hit.
        let k = enc(5, &[(&[b'B', 1], 10)]);
        assert!(matches!(m.advise(&k).unwrap(), Advice::Match(_)));
        // Past it: bump the code field.
        let k = enc(5, &[(&[b'B', 1], 11)]);
        match m.advise(&k).unwrap() {
            Advice::SkipTo(t) => assert!(t.as_slice() > k.as_slice()),
            a => panic!("{a:?}"),
        }
    }

    #[test]
    fn class_range_below_skips_to_range() {
        let mut m = matcher_one_pos(true);
        // Only sub-tree [B.C, B.D) allowed.
        m.positions[0].class_ranges = vec![(vec![b'B', 1, b'C', 1], vec![b'B', 1, b'C', 2])];
        let k = enc(5, &[(&[b'B', 1], 3)]);
        match m.advise(&k).unwrap() {
            Advice::SkipTo(t) => assert!(t.as_slice() > k.as_slice()),
            a => panic!("{a:?}"),
        }
        let k = enc(5, &[(&[b'B', 1, b'C', 1], 3)]);
        assert!(matches!(m.advise(&k).unwrap(), Advice::Match(_)));
        // Above the allowed range, inside region: bump value.
        let k = enc(5, &[(&[b'B', 1, b'D', 1], 3)]);
        match m.advise(&k).unwrap() {
            Advice::SkipTo(t) => assert!(t.as_slice() > k.as_slice()),
            a => panic!("{a:?}"),
        }
    }

    #[test]
    fn missing_required_position() {
        let m = Matcher {
            index_id: 1,
            value_ranges: vec![int_point(5)],
            positions: vec![
                PosConstraint {
                    region: (vec![b'B', 1], vec![b'B', 2]),
                    class_ranges: vec![(vec![b'B', 1], vec![b'B', 2])],
                    oids: OidSel::Any,
                    required: false,
                },
                PosConstraint {
                    region: (vec![b'C', 1], vec![b'C', 2]),
                    class_ranges: vec![(vec![b'C', 1], vec![b'C', 2])],
                    oids: OidSel::Is(Oid(5)),
                    required: true,
                },
            ],
        };
        // Entry with only position 0: required position 1 may appear in a
        // longer key sharing this prefix, so Step.
        let k = enc(5, &[(&[b'B', 1], 1)]);
        assert_eq!(m.advise(&k).unwrap(), Advice::Step);
        // Entry with both: match.
        let k = enc(5, &[(&[b'B', 1], 1), (&[b'C', 1], 5)]);
        assert_eq!(m.advise(&k).unwrap(), Advice::Match(vec![Some(0), Some(1)]));
        // Entry jumping past position 1 (code region D): bump previous oid.
        let m2 = Matcher {
            positions: vec![
                m.positions[0].clone(),
                m.positions[1].clone(),
                PosConstraint {
                    region: (vec![b'D', 1], vec![b'D', 2]),
                    class_ranges: vec![(vec![b'D', 1], vec![b'D', 2])],
                    oids: OidSel::Any,
                    required: false,
                },
            ],
            ..m.clone()
        };
        let k = enc(5, &[(&[b'B', 1], 1), (&[b'D', 1], 9)]);
        match m2.advise(&k).unwrap() {
            Advice::SkipTo(t) => {
                assert!(t.as_slice() > k.as_slice());
                // Skips to oid 2 at position 0.
                assert!(t.ends_with(&Oid(2).to_bytes()));
            }
            a => panic!("{a:?}"),
        }
    }

    #[test]
    fn value_any_matches_everything_in_index() {
        let m = Matcher {
            index_id: 1,
            value_ranges: vec![(vec![], vec![0xFF])],
            positions: vec![PosConstraint {
                region: (vec![b'B', 1], vec![b'B', 2]),
                class_ranges: vec![(vec![b'B', 1], vec![b'B', 2])],
                oids: OidSel::Any,
                required: false,
            }],
        };
        for v in [-100, 0, 9999] {
            let k = enc(v, &[(&[b'B', 1], 1)]);
            assert!(matches!(m.advise(&k).unwrap(), Advice::Match(_)));
        }
    }

    #[test]
    fn non_advancing_skip_target_degrades_to_step() {
        use btree::{BTree, BTreeConfig};
        use pagestore::{BufferPool, MemStore};

        // A malformed matcher whose class range lower bound extends the
        // stored code with a FIELD_SEP byte: for a key carrying code
        // [B, 1], advise emits SkipTo(prefix ++ [B, 1, 0x00]), which is a
        // strict prefix of the key itself — i.e. it does NOT advance.
        // The old debug_assert! aborted debug builds here and looped
        // forever in release; now the scan degrades to stepping.
        let m = Matcher {
            index_id: 1,
            value_ranges: vec![int_point(5)],
            positions: vec![PosConstraint {
                region: (vec![b'B', 1], vec![b'B', 2]),
                class_ranges: vec![(vec![b'B', 1, 0x00], vec![b'B', 1, 0x00, 0xFF])],
                oids: OidSel::Any,
                required: true,
            }],
        };
        let pool = BufferPool::new(MemStore::new(1024), 1 << 10);
        let mut tree = BTree::create(pool, BTreeConfig::default()).unwrap();
        for oid in [3u32, 7, 9] {
            tree.insert(&enc(5, &[(&[b'B', 1], oid)]), b"").unwrap();
        }
        // Confirm the advice really is a non-advancing skip for these keys.
        let k = enc(5, &[(&[b'B', 1], 3)]);
        match m.advise(&k).unwrap() {
            Advice::SkipTo(t) => assert!(t.as_slice() <= k.as_slice(), "premise: target stalls"),
            a => panic!("expected SkipTo, got {a:?}"),
        }
        for alg in [ScanAlgorithm::Parallel, ScanAlgorithm::Forward] {
            let (hits, stats, _) = execute_traced(&tree.view(), &m, alg, None).unwrap();
            assert!(hits.is_empty(), "nothing can match the bogus class range");
            assert_eq!(
                stats.entries_examined, 3,
                "every key stepped over exactly once"
            );
            assert_eq!(stats.seeks, 0, "stalled skips must not seek");
        }
    }
}

/// Property tests pitting [`Matcher::advise`] against the semantic oracle
/// in [`crate::oracle`]: on randomly generated databases and queries,
/// every piece of advice must be *sound* — `Match` agrees with the oracle
/// including the assignment, `Step`/`SkipTo`/`Done` only reject keys the
/// oracle rejects, every `SkipTo` target strictly advances, and no skip
/// or `Done` ever jumps past a key the oracle says matches.
#[cfg(test)]
mod advise_props {
    use super::*;
    use crate::oracle::{self, Rng64};
    use proptest::prelude::*;

    fn check_seed(tseed: u64, qseed: u64) {
        let t = oracle::gen_trial(tseed).expect("trial generation");
        let keys: Vec<Vec<u8>> =
            t.db.index()
                .tree()
                .scan_all()
                .expect("tree scan")
                .into_iter()
                .map(|(k, _)| k)
                .collect();
        let mut rng = Rng64::new(qseed);
        for _ in 0..4 {
            let q = oracle::gen_query(&t, &mut rng);
            let matcher = match t.db.index().matcher(&q) {
                Ok(m) => m,
                Err(_) => continue, // BadQuery path is covered by run_trials
            };
            let index = t.db.index();
            let spec = index.spec(q.index).expect("spec");
            let store = t.db.store();
            let oracle_match = |k: &[u8]| -> Option<Vec<Option<usize>>> {
                let e = EntryKey::decode(k).ok()?;
                oracle::entry_matches(store.schema(), index.encoding(), spec, &q, &e)
            };
            for (i, k) in keys.iter().enumerate() {
                match matcher.advise(k).expect("advise on well-formed key") {
                    Advice::Match(a) => assert_eq!(
                        oracle_match(k),
                        Some(a),
                        "advise matched a key the oracle rejects (or with a \
                         different assignment): seeds {tseed:#x}/{qseed:#x}, query {q:?}"
                    ),
                    Advice::Step => assert!(
                        oracle_match(k).is_none(),
                        "advise stepped over a matching key: seeds \
                         {tseed:#x}/{qseed:#x}, query {q:?}"
                    ),
                    Advice::SkipTo(target) => {
                        assert!(
                            target.as_slice() > k.as_slice(),
                            "SkipTo target does not advance: seeds \
                             {tseed:#x}/{qseed:#x}, query {q:?}"
                        );
                        assert!(
                            oracle_match(k).is_none(),
                            "advise skipped from a matching key: seeds \
                             {tseed:#x}/{qseed:#x}, query {q:?}"
                        );
                        for k2 in &keys[i + 1..] {
                            if k2.as_slice() >= target.as_slice() {
                                break;
                            }
                            assert!(
                                oracle_match(k2).is_none(),
                                "SkipTo jumps past a key the oracle matches: \
                                 seeds {tseed:#x}/{qseed:#x}, query {q:?}"
                            );
                        }
                    }
                    Advice::Done => {
                        for k2 in &keys[i..] {
                            assert!(
                                oracle_match(k2).is_none(),
                                "Done discards a key the oracle matches: \
                                 seeds {tseed:#x}/{qseed:#x}, query {q:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn advise_is_sound_against_oracle(tseed in any::<u64>(), qseed in any::<u64>()) {
            check_seed(tseed, qseed);
        }
    }
}
