//! Index definitions.
//!
//! One [`IndexSpec`] describes one logical index:
//!
//! * **class-hierarchy index** — one position (the hierarchy root), indexing
//!   an attribute over the root and all its sub-classes;
//! * **path / nested index** — a chain of positions linked by reference
//!   attributes, e.g. `Vehicle.ManufacturedBy → Company.President →
//!   Employee`, indexing `Employee.Age`;
//! * **combined index** — a path whose positions include their sub-classes
//!   (answering queries like "domestic automobiles manufactured by a
//!   Japanese auto company whose president's age is above 50", which neither
//!   classical index can);
//! * **multi-path index** — several paths sharing their lower positions
//!   (§3.3 "Multiple Paths": divisions *and* vehicles of companies by
//!   president's age) stored as a position *forest*.
//!
//! Positions are kept in ascending class-code order, which the encoding
//! guarantees for REF chains; every entry's elements then appear in key
//! order and the clustering properties of §3 hold.

use schema::{AttrId, ClassId, Encoding, Schema};

use crate::error::{Error, Result};

/// One position in an index's path forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// The class anchoring this position (with its sub-tree if the spec
    /// includes sub-classes).
    pub class: ClassId,
    /// Index of the position this one references, `None` for the attribute
    /// owner (position 0).
    pub parent: Option<usize>,
    /// The reference attribute on `class` (or an ancestor) whose value
    /// points at the parent position's object. `None` for position 0.
    pub via: Option<(ClassId, AttrId)>,
}

/// A logical index definition hosted by [`crate::UIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSpec {
    /// Human-readable name (unique within a [`crate::UIndex`]).
    pub name: String,
    /// The indexed attribute, as (declaring class, attr id). Must be an
    /// indexable (non-reference) attribute resolvable on position 0's class.
    pub attr: (ClassId, AttrId),
    /// The path forest; `positions[0]` owns the indexed attribute.
    pub positions: Vec<PathStep>,
    /// Whether each position covers its whole class sub-tree (true for
    /// class-hierarchy and combined indexes) or only direct instances.
    pub include_subclasses: bool,
}

impl IndexSpec {
    /// A class-hierarchy index: `attr_name` over `root` and all sub-classes.
    pub fn class_hierarchy(name: &str, root: ClassId, attr_name: &str) -> SpecBuilder {
        SpecBuilder {
            name: name.to_string(),
            top: root,
            chain: Vec::new(),
            attr_name: attr_name.to_string(),
            include_subclasses: true,
        }
    }

    /// A path (nested) index described top-down, paper style:
    /// `path("idx", vehicle, &["ManufacturedBy", "President"], "Age")`
    /// indexes `Employee.Age` reachable from `Vehicle`.
    ///
    /// By default sub-classes are included at every position (a *combined*
    /// index); call [`SpecBuilder::exact_classes`] for a classic path index
    /// over the listed classes only.
    pub fn path(name: &str, top: ClassId, refs: &[&str], attr_name: &str) -> SpecBuilder {
        SpecBuilder {
            name: name.to_string(),
            top,
            chain: refs.iter().map(|s| s.to_string()).collect(),
            attr_name: attr_name.to_string(),
            include_subclasses: true,
        }
    }

    /// Resolve the attribute's value-owner position count (1 = pure
    /// class-hierarchy index).
    pub fn is_class_hierarchy(&self) -> bool {
        self.positions.len() == 1
    }

    /// Merge another spec into this one, sharing equal positions (same
    /// class, same via, same parent chain). Both specs must index the same
    /// attribute and agree on `include_subclasses`. The result is a
    /// multi-path index (§3.3).
    pub fn merge(mut self, other: &IndexSpec) -> Result<IndexSpec> {
        if self.attr != other.attr {
            return Err(Error::BadSpec(
                "multi-path specs must index the same attribute".into(),
            ));
        }
        if self.include_subclasses != other.include_subclasses {
            return Err(Error::BadSpec(
                "multi-path specs must agree on sub-class inclusion".into(),
            ));
        }
        // Map other's position indexes into self.
        let mut mapping: Vec<usize> = Vec::with_capacity(other.positions.len());
        for step in &other.positions {
            let mapped_parent = step.parent.map(|p| mapping[p]);
            let existing = self.positions.iter().position(|s| {
                s.class == step.class && s.via == step.via && s.parent == mapped_parent
            });
            let idx = match existing {
                Some(i) => i,
                None => {
                    self.positions.push(PathStep {
                        class: step.class,
                        parent: mapped_parent,
                        via: step.via,
                    });
                    self.positions.len() - 1
                }
            };
            mapping.push(idx);
        }
        Ok(self)
    }

    /// Validate against the schema and encoding, and normalize: positions
    /// sorted by class code (parents before children), parent indexes
    /// remapped.
    pub fn normalize(&mut self, schema: &Schema, encoding: &Encoding) -> Result<()> {
        if self.positions.is_empty() {
            return Err(Error::BadSpec("index needs at least one position".into()));
        }
        if self.positions[0].parent.is_some() || self.positions[0].via.is_some() {
            return Err(Error::BadSpec(
                "position 0 must be the attribute owner".into(),
            ));
        }
        // Attribute must resolve on position 0's class and be indexable.
        let ty = schema.attr_type(self.attr.0, self.attr.1);
        if ty.ref_target().is_some() {
            return Err(Error::BadSpec(
                "indexed attribute must not be a reference".into(),
            ));
        }
        if !schema.is_subclass_of(self.positions[0].class, self.attr.0) {
            return Err(Error::BadSpec(
                "indexed attribute not declared on position 0's class".into(),
            ));
        }
        // Each non-root position: via attr exists, is a reference, and its
        // target is hierarchy-compatible with the parent's class.
        for (i, step) in self.positions.iter().enumerate().skip(1) {
            let parent = step
                .parent
                .ok_or_else(|| Error::BadSpec(format!("position {i} missing parent")))?;
            if parent >= self.positions.len() {
                return Err(Error::BadSpec(format!("position {i} parent out of range")));
            }
            let (decl, attr) = step
                .via
                .ok_or_else(|| Error::BadSpec(format!("position {i} missing via attr")))?;
            if !schema.is_subclass_of(step.class, decl) {
                return Err(Error::BadSpec(format!(
                    "position {i}: via attribute not declared on its class"
                )));
            }
            let target = schema
                .attr_type(decl, attr)
                .ref_target()
                .ok_or_else(|| Error::BadSpec(format!("position {i}: via is not a reference")))?;
            let pclass = self.positions[parent].class;
            if !schema.is_subclass_of(pclass, target) && !schema.is_subclass_of(target, pclass) {
                return Err(Error::BadSpec(format!(
                    "position {i}: reference target incompatible with parent position"
                )));
            }
        }
        // Sort positions by class code; parents must end up before children.
        let mut order: Vec<usize> = (0..self.positions.len()).collect();
        let code_of = |c: ClassId| -> Result<Vec<u8>> {
            Ok(encoding
                .code(c)
                .ok_or_else(|| Error::BadSpec(format!("class {c:?} has no code")))?
                .as_bytes()
                .to_vec())
        };
        let mut codes = Vec::with_capacity(self.positions.len());
        for s in &self.positions {
            codes.push(code_of(s.class)?);
        }
        order.sort_by(|&a, &b| codes[a].cmp(&codes[b]));
        let mut remap = vec![0usize; order.len()];
        for (new, &old) in order.iter().enumerate() {
            remap[old] = new;
        }
        let mut sorted: Vec<PathStep> = order
            .iter()
            .map(|&old| {
                let s = &self.positions[old];
                PathStep {
                    class: s.class,
                    parent: s.parent.map(|p| remap[p]),
                    via: s.via,
                }
            })
            .collect();
        for (i, s) in sorted.iter().enumerate() {
            if let Some(p) = s.parent {
                if p >= i {
                    return Err(Error::BadSpec(
                        "encoding does not order REF targets before sources on this path; \
                         use a cycle-broken encoding for this index"
                            .into(),
                    ));
                }
            } else if i != 0 {
                return Err(Error::BadSpec(
                    "attribute owner does not have the smallest class code on this path".into(),
                ));
            }
        }
        // Position code regions must be pairwise disjoint so entry elements
        // can be attributed to positions unambiguously.
        let mut regions: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(sorted.len());
        for s in &sorted {
            let (lo, hi) = if self.include_subclasses {
                encoding
                    .subtree_range(s.class)
                    .ok_or_else(|| Error::BadSpec("class has no code".into()))?
            } else {
                let c = code_of(s.class)?;
                let mut hi = c.clone();
                hi.push(0x00);
                (c, hi)
            };
            regions.push((lo, hi));
        }
        for w in regions.windows(2) {
            if w[1].0 < w[0].1 {
                return Err(Error::BadSpec(
                    "position class regions overlap; positions must come from \
                     disjoint sub-trees"
                        .into(),
                ));
            }
        }
        self.positions = std::mem::take(&mut sorted);
        Ok(())
    }
}

/// Ergonomic builder produced by [`IndexSpec::class_hierarchy`] and
/// [`IndexSpec::path`].
pub struct SpecBuilder {
    name: String,
    top: ClassId,
    chain: Vec<String>,
    attr_name: String,
    include_subclasses: bool,
}

impl SpecBuilder {
    /// Restrict every position to its exact class (classic nested/path
    /// index instead of the combined form).
    pub fn exact_classes(mut self) -> Self {
        self.include_subclasses = false;
        self
    }

    /// Resolve names against `schema` and produce the spec.
    ///
    /// The path was given top-down (`Vehicle`, refs `["ManufacturedBy",
    /// "President"]`, attr `"Age"`); the spec stores it attribute-owner
    /// first.
    pub fn build(self, schema: &Schema) -> Result<IndexSpec> {
        // Walk the reference chain downwards to find each position's class.
        let mut chain_classes = vec![self.top];
        let mut vias: Vec<(ClassId, AttrId)> = Vec::new();
        let mut cur = self.top;
        for ref_name in &self.chain {
            let (decl, attr) = schema
                .resolve_attr(cur, ref_name)
                .ok_or_else(|| Error::BadSpec(format!("no attribute {ref_name:?}")))?;
            let target = schema
                .attr_type(decl, attr)
                .ref_target()
                .ok_or_else(|| Error::BadSpec(format!("{ref_name:?} is not a reference")))?;
            vias.push((decl, attr));
            chain_classes.push(target);
            cur = target;
        }
        let owner = *chain_classes.last().expect("non-empty");
        let (attr_decl, attr_id) = schema
            .resolve_attr(owner, &self.attr_name)
            .ok_or_else(|| Error::BadSpec(format!("no attribute {:?}", self.attr_name)))?;
        // Reverse into owner-first order: position i references position
        // i-1 via the chain attribute.
        let n = chain_classes.len();
        let positions: Vec<PathStep> = (0..n)
            .map(|i| {
                let class = chain_classes[n - 1 - i];
                if i == 0 {
                    PathStep {
                        class,
                        parent: None,
                        via: None,
                    }
                } else {
                    PathStep {
                        class,
                        parent: Some(i - 1),
                        via: Some(vias[n - 1 - i]),
                    }
                }
            })
            .collect();
        Ok(IndexSpec {
            name: self.name,
            attr: (attr_decl, attr_id),
            positions,
            include_subclasses: self.include_subclasses,
        })
    }
}
