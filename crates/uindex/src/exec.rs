//! Concurrent query execution: [`DatabaseReader`] handles that query a
//! [`Database`] from other threads against epoch snapshots, plus a
//! work-claiming thread-pool executor ([`parallel_query`]).
//!
//! The reader owns everything a query needs — a [`TreeReader`] into the
//! shared tree plus cloned planning metadata (specs, encoding, schema) —
//! so it is `Send + Clone` and never touches the `Database` again after
//! construction. Queries run against an explicit [`DbSnapshot`]: the
//! writer keeps mutating and publishing while scans see a frozen epoch.
//!
//! Telemetry is thread-local; worker threads hand their registry snapshot
//! back and the calling thread folds them in with [`telemetry::absorb`],
//! so aggregate counters look exactly like a single-threaded run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use btree::{TreeReader, TreeSnapshot};
use pagestore::PageStore;
use schema::{Encoding, Schema};

use crate::error::Result;
use crate::index::{IndexId, Planner};
use crate::query::{Query, QueryHit};
use crate::scan::{self, ScanStats};
use crate::spec::IndexSpec;

/// A frozen, consistent view of the index tree at one published epoch.
/// Holding it pins the pages of that epoch (the writer defers their
/// reclamation); drop it promptly when done scanning.
pub struct DbSnapshot {
    snap: TreeSnapshot,
}

impl DbSnapshot {
    /// The writer epoch this snapshot observes.
    pub fn epoch(&self) -> u64 {
        self.snap.epoch()
    }

    /// Number of index entries (all logical indexes plus catalog) visible.
    pub fn entries(&self) -> u64 {
        self.snap.len()
    }
}

/// A shareable read handle into a [`Database`]'s index: cloned planning
/// metadata plus a [`TreeReader`]. Obtain one from
/// [`Database::reader`][crate::Database::reader]; clone it freely across
/// threads.
///
/// The metadata is a snapshot of the database's spec table and encoding at
/// construction time — define further indexes or evolve the schema and
/// you need a fresh reader.
pub struct DatabaseReader<P: PageStore> {
    tree: TreeReader<P>,
    encoding: Encoding,
    specs: Vec<IndexSpec>,
    schema: Schema,
}

impl<P: PageStore> Clone for DatabaseReader<P> {
    fn clone(&self) -> Self {
        DatabaseReader {
            tree: self.tree.clone(),
            encoding: self.encoding.clone(),
            specs: self.specs.clone(),
            schema: self.schema.clone(),
        }
    }
}

impl<P: PageStore> DatabaseReader<P> {
    pub(crate) fn new(
        tree: TreeReader<P>,
        encoding: Encoding,
        specs: Vec<IndexSpec>,
        schema: Schema,
    ) -> Self {
        DatabaseReader {
            tree,
            encoding,
            specs,
            schema,
        }
    }

    /// A reader over a bare [`crate::UIndex`] (no object store): benches
    /// and harnesses that drive the index directly get the same concurrent
    /// read path as [`Database::reader`][crate::Database::reader]. Enables
    /// snapshot mode on the tree; like `Database::reader`, the spec table
    /// and encoding are captured as of this call.
    pub fn for_index(index: &mut crate::UIndex<P>, schema: &Schema) -> Self {
        index.tree_mut().enable_snapshots();
        DatabaseReader::new(
            index.tree().reader(),
            index.encoding().clone(),
            index.specs().to_vec(),
            schema.clone(),
        )
    }

    /// The schema as of reader construction.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Look up an index id by name (reader-side spec table).
    pub fn index_by_name(&self, name: &str) -> Option<IndexId> {
        self.specs
            .iter()
            .position(|s| s.name == name)
            .map(|i| i as IndexId)
    }

    /// Pin the latest published epoch.
    pub fn snapshot(&self) -> DbSnapshot {
        DbSnapshot {
            snap: self.tree.snapshot(),
        }
    }

    /// Run `q` against `snap`, returning hits and scan cost counters.
    /// Concurrent calls from different threads are independent; each
    /// accumulates into its own thread-local telemetry registry.
    pub fn query_at(&self, snap: &DbSnapshot, q: &Query) -> Result<(Vec<QueryHit>, ScanStats)> {
        let matcher = Planner {
            specs: &self.specs,
            encoding: &self.encoding,
        }
        .matcher(q)?;
        let view = self.tree.read(&snap.snap);
        let (hits, stats, _) = scan::execute_traced(&view, &matcher, q.algorithm, q.distinct_upto)?;
        Ok((hits, stats))
    }

    /// Convenience: pin the latest epoch and run one query against it.
    pub fn query(&self, q: &Query) -> Result<(Vec<QueryHit>, ScanStats)> {
        let snap = self.snapshot();
        self.query_at(&snap, q)
    }

    /// Parse a [`crate::uql`] query string against the reader's captured
    /// metadata without executing it — the serving layer's prepared-plan
    /// path (parse and plan once, execute many times via
    /// [`DatabaseReader::query_at`]).
    pub fn parse_uql(&self, input: &str) -> Result<Query> {
        crate::uql::parse_with_specs(&self.specs, &self.schema, input)
    }

    /// Parse a [`crate::uql`] query string against the reader's metadata
    /// and run it at the latest epoch.
    pub fn query_uql(&self, input: &str) -> Result<(Vec<QueryHit>, ScanStats)> {
        let q = self.parse_uql(input)?;
        self.query(&q)
    }
}

/// Run every query in `queries` against one shared snapshot using
/// `threads` worker threads, returning per-query results in input order.
///
/// Work is claimed dynamically (an atomic cursor, not pre-chunking), so
/// skewed query costs still balance. Each worker accumulates telemetry in
/// its own thread-local registry; the snapshots are folded into the
/// calling thread's registry before returning, so counter totals match a
/// single-threaded execution of the same stream.
pub fn parallel_query<P>(
    reader: &DatabaseReader<P>,
    queries: &[Query],
    threads: usize,
) -> Result<Vec<(Vec<QueryHit>, ScanStats)>>
where
    P: PageStore + Send + Sync,
{
    let threads = threads.max(1);
    let snap = reader.snapshot();
    if threads == 1 || queries.len() <= 1 {
        // Inline fast path: no thread or telemetry hand-off needed.
        return queries.iter().map(|q| reader.query_at(&snap, q)).collect();
    }

    type QuerySlot = Option<Result<(Vec<QueryHit>, ScanStats)>>;
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<QuerySlot>> = Mutex::new((0..queries.len()).map(|_| None).collect());

    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let reader = reader.clone();
            let (snap, next, results) = (&snap, &next, &results);
            workers.push(scope.spawn(move || {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    let r = reader.query_at(snap, &queries[i]);
                    results.lock().unwrap()[i] = Some(r);
                }
                telemetry::snapshot()
            }));
        }
        for w in workers {
            let worker_metrics = w.join().expect("query worker panicked");
            telemetry::absorb(&worker_metrics);
        }
    });

    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("work claiming covered every query"))
        .collect()
}
