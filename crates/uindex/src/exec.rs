//! Concurrent query execution: [`DatabaseReader`] handles that query a
//! [`Database`] from other threads against epoch snapshots, plus a
//! work-claiming thread-pool executor ([`parallel_query`]).
//!
//! The reader owns everything a query needs — a [`TreeReader`] into the
//! shared tree plus cloned planning metadata (specs, encoding, schema) —
//! so it is `Send + Clone` and never touches the `Database` again after
//! construction. Queries run against an explicit [`DbSnapshot`]: the
//! writer keeps mutating and publishing while scans see a frozen epoch.
//!
//! Telemetry is thread-local; worker threads hand their registry snapshot
//! back and the calling thread folds them in with [`telemetry::absorb`],
//! so aggregate counters look exactly like a single-threaded run.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use btree::{TreeReader, TreeSnapshot};
use objstore::ObjectStore;
use pagestore::PageStore;
use schema::{Encoding, Schema};

use crate::error::{Error, Result};
use crate::index::{IndexId, Planner};
use crate::query::{Query, QueryHit};
use crate::scan::{self, ScanStats};
use crate::spec::IndexSpec;

/// A frozen, consistent view of the index tree at one published epoch.
/// Holding it pins the pages of that epoch (the writer defers their
/// reclamation); drop it promptly when done scanning.
pub struct DbSnapshot {
    snap: TreeSnapshot,
}

impl DbSnapshot {
    /// The writer epoch this snapshot observes.
    pub fn epoch(&self) -> u64 {
        self.snap.epoch()
    }

    /// Number of index entries (all logical indexes plus catalog) visible.
    pub fn entries(&self) -> u64 {
        self.snap.len()
    }
}

/// A shareable read handle into a [`Database`]'s index: cloned planning
/// metadata plus a [`TreeReader`]. Obtain one from
/// [`Database::reader`][crate::Database::reader]; clone it freely across
/// threads.
///
/// The metadata is a snapshot of the database's spec table and encoding at
/// construction time — define further indexes or evolve the schema and
/// you need a fresh reader.
pub struct DatabaseReader<P: PageStore> {
    tree: TreeReader<P>,
    encoding: Encoding,
    specs: Vec<IndexSpec>,
    schema: Schema,
    /// Armed by [`crate::Database::reader_with_fallback`]: everything the
    /// degraded path needs to answer without the tree.
    degraded: Option<DegradedSource>,
}

/// The degraded path's inputs: a frozen clone of the object store (taken
/// at reader construction, like the rest of the reader's metadata) plus
/// the quarantine flag shared with the owning [`crate::Database`] — a
/// writer-side quarantine degrades every armed reader, and a clean
/// `check()`/`repair()` restores them all.
struct DegradedSource {
    store: Arc<ObjectStore>,
    flag: Arc<AtomicBool>,
}

impl<P: PageStore> Clone for DatabaseReader<P> {
    fn clone(&self) -> Self {
        DatabaseReader {
            tree: self.tree.clone(),
            encoding: self.encoding.clone(),
            specs: self.specs.clone(),
            schema: self.schema.clone(),
            degraded: self.degraded.as_ref().map(|d| DegradedSource {
                store: Arc::clone(&d.store),
                flag: Arc::clone(&d.flag),
            }),
        }
    }
}

impl<P: PageStore> DatabaseReader<P> {
    pub(crate) fn new(
        tree: TreeReader<P>,
        encoding: Encoding,
        specs: Vec<IndexSpec>,
        schema: Schema,
    ) -> Self {
        DatabaseReader {
            tree,
            encoding,
            specs,
            schema,
            degraded: None,
        }
    }

    /// Arm the degraded-mode fallback (see
    /// [`crate::Database::reader_with_fallback`]).
    pub(crate) fn enable_fallback(&mut self, store: Arc<ObjectStore>, flag: Arc<AtomicBool>) {
        self.degraded = Some(DegradedSource { store, flag });
    }

    /// A reader over a bare [`crate::UIndex`] (no object store): benches
    /// and harnesses that drive the index directly get the same concurrent
    /// read path as [`Database::reader`][crate::Database::reader]. Enables
    /// snapshot mode on the tree; like `Database::reader`, the spec table
    /// and encoding are captured as of this call.
    pub fn for_index(index: &mut crate::UIndex<P>, schema: &Schema) -> Self {
        index.tree_mut().enable_snapshots();
        DatabaseReader::new(
            index.tree().reader(),
            index.encoding().clone(),
            index.specs().to_vec(),
            schema.clone(),
        )
    }

    /// The schema as of reader construction.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Look up an index id by name (reader-side spec table).
    pub fn index_by_name(&self, name: &str) -> Option<IndexId> {
        self.specs
            .iter()
            .position(|s| s.name == name)
            .map(|i| i as IndexId)
    }

    /// Pin the latest published epoch.
    pub fn snapshot(&self) -> DbSnapshot {
        DbSnapshot {
            snap: self.tree.snapshot(),
        }
    }

    /// Run `q` against `snap`, returning hits and scan cost counters.
    /// Concurrent calls from different threads are independent; each
    /// accumulates into its own thread-local telemetry registry.
    pub fn query_at(&self, snap: &DbSnapshot, q: &Query) -> Result<(Vec<QueryHit>, ScanStats)> {
        let matcher = Planner {
            specs: &self.specs,
            encoding: &self.encoding,
        }
        .matcher(q)?;
        let view = self.tree.read(&snap.snap);
        let (hits, stats, _) = scan::execute_traced(&view, &matcher, q.algorithm, q.distinct_upto)?;
        Ok((hits, stats))
    }

    /// Convenience: pin the latest epoch and run one query against it.
    pub fn query(&self, q: &Query) -> Result<(Vec<QueryHit>, ScanStats)> {
        let snap = self.snapshot();
        self.query_at(&snap, q)
    }

    /// Whether this reader carries a degraded-mode fallback source.
    pub fn has_fallback(&self) -> bool {
        self.degraded.is_some()
    }

    /// Whether the shared quarantine flag is currently set. Always false
    /// for a reader without a fallback source.
    pub fn quarantined(&self) -> bool {
        self.degraded
            .as_ref()
            .is_some_and(|d| d.flag.load(Ordering::Acquire))
    }

    /// Answer `q` from the fallback object store via the differential
    /// oracle's evaluator — slower, but immune to index damage, and proven
    /// hit-for-hit equivalent to the scans by the oracle's trial harness.
    fn degraded_eval(&self, src: &DegradedSource, q: &Query) -> Result<Vec<QueryHit>> {
        telemetry::counter("uindex.degraded.queries").inc();
        let hits = crate::oracle::eval_with(&self.specs, &self.encoding, &src.store, q)?;
        Ok(match q.distinct_upto {
            Some(pos) => crate::oracle::distinct_filter(&hits, pos),
            None => hits,
        })
    }

    /// Run `q` against `snap` with graceful degradation: when the index is
    /// quarantined — or the scan hits storage trouble on the spot — the
    /// answer is recomputed from the fallback object store instead of
    /// failing (or worse, trusting damaged pages). The returned flag says
    /// whether the degraded path answered.
    ///
    /// Fault policy, mirroring [`crate::Database::query_traced_guarded`]:
    ///
    /// * detected **corruption** quarantines the index immediately (flag
    ///   shared with the writer) and answers degraded;
    /// * a transient **I/O error** — the buffer pool's bounded retries
    ///   already exhausted — answers degraded *without* quarantining, so
    ///   the next query tries the index again;
    /// * anything else (bad queries, planning errors) propagates, and a
    ///   reader without a fallback source propagates every error.
    pub fn query_guarded_at(
        &self,
        snap: &DbSnapshot,
        q: &Query,
    ) -> Result<(Vec<QueryHit>, ScanStats, bool)> {
        let Some(src) = &self.degraded else {
            return self.query_at(snap, q).map(|(h, s)| (h, s, false));
        };
        if src.flag.load(Ordering::Acquire) {
            return Ok((self.degraded_eval(src, q)?, ScanStats::default(), true));
        }
        match self.query_at(snap, q) {
            Ok((h, s)) => Ok((h, s, false)),
            Err(Error::Page(e)) if e.is_corruption() => {
                src.flag.store(true, Ordering::Release);
                telemetry::counter("uindex.degraded.quarantines").inc();
                Ok((self.degraded_eval(src, q)?, ScanStats::default(), true))
            }
            Err(Error::Page(pagestore::Error::Io(_))) => {
                Ok((self.degraded_eval(src, q)?, ScanStats::default(), true))
            }
            Err(e) => Err(e),
        }
    }

    /// Convenience: pin the latest epoch and run one guarded query.
    pub fn query_guarded(&self, q: &Query) -> Result<(Vec<QueryHit>, ScanStats, bool)> {
        let snap = self.snapshot();
        self.query_guarded_at(&snap, q)
    }

    /// Parse a [`crate::uql`] query string against the reader's captured
    /// metadata without executing it — the serving layer's prepared-plan
    /// path (parse and plan once, execute many times via
    /// [`DatabaseReader::query_at`]).
    pub fn parse_uql(&self, input: &str) -> Result<Query> {
        crate::uql::parse_with_specs(&self.specs, &self.schema, input)
    }

    /// Parse a [`crate::uql`] query string against the reader's metadata
    /// and run it at the latest epoch.
    pub fn query_uql(&self, input: &str) -> Result<(Vec<QueryHit>, ScanStats)> {
        let q = self.parse_uql(input)?;
        self.query(&q)
    }
}

/// Run every query in `queries` against one shared snapshot using
/// `threads` worker threads, returning per-query results in input order.
///
/// Work is claimed dynamically (an atomic cursor, not pre-chunking), so
/// skewed query costs still balance. Each worker accumulates telemetry in
/// its own thread-local registry; the snapshots are folded into the
/// calling thread's registry before returning, so counter totals match a
/// single-threaded execution of the same stream.
pub fn parallel_query<P>(
    reader: &DatabaseReader<P>,
    queries: &[Query],
    threads: usize,
) -> Result<Vec<(Vec<QueryHit>, ScanStats)>>
where
    P: PageStore + Send + Sync,
{
    let threads = threads.max(1);
    let snap = reader.snapshot();
    if threads == 1 || queries.len() <= 1 {
        // Inline fast path: no thread or telemetry hand-off needed.
        return queries.iter().map(|q| reader.query_at(&snap, q)).collect();
    }

    type QuerySlot = Option<Result<(Vec<QueryHit>, ScanStats)>>;
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<QuerySlot>> = Mutex::new((0..queries.len()).map(|_| None).collect());

    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let reader = reader.clone();
            let (snap, next, results) = (&snap, &next, &results);
            workers.push(scope.spawn(move || {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    let r = reader.query_at(snap, &queries[i]);
                    results.lock().unwrap()[i] = Some(r);
                }
                telemetry::snapshot()
            }));
        }
        for w in workers {
            let worker_metrics = w.join().expect("query worker panicked");
            telemetry::absorb(&worker_metrics);
        }
    });

    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("work claiming covered every query"))
        .collect()
}
