//! [`Database`]: an object store plus a U-index, kept consistent.
//!
//! Every mutation recomputes exactly the affected index entries by
//! snapshotting the entry keys of the affected *anchors* before the change
//! and diffing against the recomputation afterwards. The paper's update
//! cases fall out: an attribute update on an end-of-path object touches one
//! entry per index (§3.5 case 2/3); a mid-path reference change (the
//! "president switches companies" example) deletes and re-inserts the
//! clustered entry group.

use std::collections::BTreeSet;

use btree::BTreeConfig;
use objstore::{ObjectStore, Oid, Value};
use pagestore::{BufferPool, MemStore};
use schema::{ClassId, Encoding, Schema};

use crate::error::Result;
use crate::index::{IndexId, UIndex};
use crate::query::{Query, QueryHit};
use crate::scan::ScanStats;
use crate::spec::{IndexSpec, SpecBuilder};

/// An OODB with automatically maintained U-indexes.
pub struct Database {
    store: ObjectStore,
    index: UIndex<MemStore>,
    /// Classes added by schema evolution whose codes are not assigned yet.
    /// Assignment is deferred until first use so that REF attributes
    /// declared after the class still constrain its code position
    /// (paper Fig. 4b: a new hierarchy slots between the hierarchies it
    /// references and is referenced by).
    pending_codes: BTreeSet<ClassId>,
}

impl Database {
    /// Build a database over `schema`, generating the class-code encoding.
    /// Fails if the schema's REF graph is cyclic (see
    /// [`schema::cycles::partition_acyclic`] to split it).
    pub fn in_memory(schema: Schema) -> Result<Self> {
        Self::with_page_size(schema, 1024, 1 << 16)
    }

    /// Like [`Database::in_memory`] with explicit page geometry.
    pub fn with_page_size(schema: Schema, page_size: usize, pool_pages: usize) -> Result<Self> {
        Self::with_config(schema, page_size, pool_pages, BTreeConfig::default())
    }

    /// Full control over the index B-tree configuration (the paper's first
    /// experiment caps nodes at 10 entries).
    pub fn with_config(
        schema: Schema,
        page_size: usize,
        pool_pages: usize,
        config: BTreeConfig,
    ) -> Result<Self> {
        let encoding = Encoding::generate(&schema)?;
        let pool = BufferPool::new(MemStore::new(page_size), pool_pages);
        let index = UIndex::new(pool, config, encoding)?;
        Ok(Database {
            store: ObjectStore::new(schema),
            index,
            pending_codes: BTreeSet::new(),
        })
    }

    /// The object store.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        self.store.schema()
    }

    /// The U-index.
    pub fn index(&self) -> &UIndex<MemStore> {
        &self.index
    }

    /// Mutable U-index access (e.g. for statistics resets).
    pub fn index_mut(&mut self) -> &mut UIndex<MemStore> {
        &mut self.index
    }

    // ----- schema evolution ---------------------------------------------

    /// Add a new hierarchy root class (paper Fig. 4b). Its code is
    /// assigned lazily — declare the class's reference attributes first and
    /// the code will respect them; force assignment with
    /// [`Database::encode_class`].
    pub fn add_class(&mut self, name: &str) -> Result<ClassId> {
        let id = self.store.schema_mut().add_class(name)?;
        self.pending_codes.insert(id);
        Ok(id)
    }

    /// Add a sub-class (paper Fig. 4a); its code is assigned lazily.
    pub fn add_subclass(&mut self, name: &str, parent: ClassId) -> Result<ClassId> {
        let id = self.store.schema_mut().add_subclass(name, parent)?;
        self.pending_codes.insert(id);
        Ok(id)
    }

    /// Assign a code now to `class` (and any pending ancestors), honouring
    /// the REF edges declared so far.
    pub fn encode_class(&mut self, class: ClassId) -> Result<()> {
        if !self.pending_codes.contains(&class) {
            return Ok(());
        }
        if let Some(&parent) = self.store.schema().parents(class).first() {
            self.encode_class(parent)?;
        }
        let schema = self.store.schema().clone();
        self.index.encoding_mut().assign_class(&schema, class)?;
        self.pending_codes.remove(&class);
        Ok(())
    }

    fn encode_all_pending(&mut self) -> Result<()> {
        let pending: Vec<ClassId> = self.pending_codes.iter().copied().collect();
        for c in pending {
            self.encode_class(c)?;
        }
        Ok(())
    }

    /// Declare an attribute.
    pub fn add_attr(
        &mut self,
        class: ClassId,
        name: &str,
        ty: schema::AttrType,
    ) -> Result<schema::AttrId> {
        Ok(self.store.schema_mut().add_attr(class, name, ty)?)
    }

    // ----- index definition ----------------------------------------------

    /// Define an index from a builder and populate it from current data.
    pub fn define_index(&mut self, builder: SpecBuilder) -> Result<IndexId> {
        let spec = builder.build(self.store.schema())?;
        self.define_index_spec(spec)
    }

    /// Define an index from an explicit spec and populate it.
    pub fn define_index_spec(&mut self, spec: IndexSpec) -> Result<IndexId> {
        self.encode_all_pending()?;
        let id = self.index.define(self.store.schema(), spec)?;
        self.index.build(&self.store, id)?;
        Ok(id)
    }

    // ----- object mutations (index-maintaining) ---------------------------

    /// Create an object (no attributes yet, so no index entries).
    pub fn create_object(&mut self, class: ClassId) -> Result<Oid> {
        self.encode_class(class)?;
        Ok(self.store.create(class)?)
    }

    /// For every index, the encoded keys of all entries containing `oid` —
    /// exactly the entries a mutation of `oid` can add or remove.
    fn involved_entries(&self, oid: Oid) -> Result<Vec<BTreeSet<Vec<u8>>>> {
        let mut out = Vec::with_capacity(self.index.specs().len());
        for id in 0..self.index.specs().len() as IndexId {
            let mut set = BTreeSet::new();
            for e in self.index.entries_involving(&self.store, id, oid)? {
                set.insert(e.encode()?);
            }
            out.push(set);
        }
        Ok(out)
    }

    fn apply_diff(
        &mut self,
        before: Vec<BTreeSet<Vec<u8>>>,
        after: Vec<BTreeSet<Vec<u8>>>,
    ) -> Result<()> {
        for (b, a) in before.iter().zip(&after) {
            for key in b.difference(a) {
                self.index.tree_mut().delete(key)?;
            }
            for key in a.difference(b) {
                self.index.tree_mut().insert(key, &[])?;
            }
        }
        Ok(())
    }

    /// Set an attribute, keeping every index consistent. Only the entries
    /// containing `oid` are recomputed, so the cost matches the paper's
    /// §3.5 analysis (one entry for an end-of-path attribute update, the
    /// clustered group for a mid-path reference change).
    pub fn set_attr(&mut self, oid: Oid, name: &str, value: Value) -> Result<Option<Value>> {
        let before = self.involved_entries(oid)?;
        let old = self.store.set_attr(oid, name, value)?;
        let after = self.involved_entries(oid)?;
        self.apply_diff(before, after)?;
        Ok(old)
    }

    /// Delete an object, keeping every index consistent. With `force`,
    /// dangling references from other objects are allowed (their path
    /// entries through this object disappear).
    pub fn delete_object(&mut self, oid: Oid, force: bool) -> Result<()> {
        let before = self.involved_entries(oid)?;
        self.store.delete(oid, force)?;
        // The object no longer exists, so no entry can involve it.
        let after = vec![BTreeSet::new(); before.len()];
        self.apply_diff(before, after)?;
        Ok(())
    }

    // ----- persistence -----------------------------------------------------

    /// Save the database into a directory: `objects.bin` (schema + objects)
    /// and `specs.bin` (index definitions). Opening rebuilds the indexes
    /// deterministically from the data.
    pub fn save(&self, dir: &std::path::Path) -> Result<()> {
        std::fs::create_dir_all(dir).map_err(pagestore::Error::Io)?;
        std::fs::write(dir.join("objects.bin"), self.store.to_bytes())
            .map_err(pagestore::Error::Io)?;
        let mut specs = Vec::new();
        specs.extend_from_slice(b"UIDXSPC1");
        specs.extend_from_slice(&(self.index.specs().len() as u32).to_le_bytes());
        for spec in self.index.specs() {
            let enc = crate::catalog::encode_spec(spec);
            specs.extend_from_slice(&(enc.len() as u32).to_le_bytes());
            specs.extend_from_slice(&enc);
        }
        std::fs::write(dir.join("specs.bin"), specs).map_err(pagestore::Error::Io)?;
        Ok(())
    }

    /// Open a database saved by [`Database::save`], rebuilding all indexes.
    pub fn open(dir: &std::path::Path) -> Result<Self> {
        let objects = std::fs::read(dir.join("objects.bin")).map_err(pagestore::Error::Io)?;
        let store = ObjectStore::from_bytes(&objects)?;
        let schema = store.schema().clone();
        let mut db = Database::in_memory(schema)?;
        db.store = store;
        let specs = std::fs::read(dir.join("specs.bin")).map_err(pagestore::Error::Io)?;
        if specs.get(..8) != Some(b"UIDXSPC1".as_slice()) {
            return Err(crate::Error::BadKey("bad specs.bin magic".into()));
        }
        let n = u32::from_le_bytes(
            specs
                .get(8..12)
                .ok_or_else(|| crate::Error::BadKey("truncated specs.bin".into()))?
                .try_into()
                .unwrap(),
        ) as usize;
        let mut pos = 12;
        for _ in 0..n {
            let len = u32::from_le_bytes(
                specs
                    .get(pos..pos + 4)
                    .ok_or_else(|| crate::Error::BadKey("truncated specs.bin".into()))?
                    .try_into()
                    .unwrap(),
            ) as usize;
            pos += 4;
            let spec = crate::catalog::decode_spec(
                specs
                    .get(pos..pos + len)
                    .ok_or_else(|| crate::Error::BadKey("truncated specs.bin".into()))?,
            )?;
            pos += len;
            db.define_index_spec(spec)?;
        }
        Ok(db)
    }

    // ----- queries ---------------------------------------------------------

    /// Run a query, returning the hits.
    pub fn query(&mut self, q: &Query) -> Result<Vec<QueryHit>> {
        Ok(self.index.query(q)?.0)
    }

    /// Parse and run a [`crate::uql`] query string.
    pub fn query_uql(&mut self, input: &str) -> Result<(Vec<QueryHit>, ScanStats)> {
        let q = crate::uql::parse(&self.index, self.store.schema(), input)?;
        self.index.query(&q)
    }

    /// Run a query, returning hits and scan cost counters.
    pub fn query_with_stats(&mut self, q: &Query) -> Result<(Vec<QueryHit>, ScanStats)> {
        self.index.query(q)
    }

    /// Execute `q` and build an EXPLAIN ANALYZE report: the translated plan
    /// plus the executed [`crate::QueryTrace`].
    pub fn explain_query(&mut self, q: &Query) -> Result<crate::ExplainReport> {
        crate::explain::explain(self, q)
    }

    /// Parse a [`crate::uql`] string (an optional leading `explain analyze`
    /// is accepted and stripped) and build an EXPLAIN ANALYZE report.
    pub fn explain_uql(&mut self, input: &str) -> Result<crate::ExplainReport> {
        let stripped = strip_explain_prefix(input);
        let q = crate::uql::parse(&self.index, self.store.schema(), stripped)?;
        self.explain_query(&q)
    }
}

/// Strip a case-insensitive leading `explain analyze` / `explain`, so both
/// `explain analyze color: ...` and a bare query string reach the parser.
fn strip_explain_prefix(input: &str) -> &str {
    let trimmed = input.trim_start();
    for kw in ["explain analyze", "explain"] {
        if trimmed.len() >= kw.len() && trimmed[..kw.len()].eq_ignore_ascii_case(kw) {
            let rest = &trimmed[kw.len()..];
            // Keyword must end at a word boundary ("explainx" is not it).
            if rest.starts_with(char::is_whitespace) {
                return rest.trim_start();
            }
        }
    }
    trimmed
}
