//! [`Database`]: an object store plus a U-index, kept consistent.
//!
//! Every mutation recomputes exactly the affected index entries by
//! snapshotting the entry keys of the affected *anchors* before the change
//! and diffing against the recomputation afterwards. The paper's update
//! cases fall out: an attribute update on an end-of-path object touches one
//! entry per index (§3.5 case 2/3); a mid-path reference change (the
//! "president switches companies" example) deletes and re-inserts the
//! clustered entry group.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use btree::{BTree, BTreeConfig};
use objstore::{ObjectStore, Oid, Value};
use pagestore::{
    BufferPool, ChecksumStore, FaultStore, MemStore, PageStore, RetryPolicy, ScrubReport,
    Scrubbable, TRAILER_LEN,
};
use schema::{ClassId, Encoding, Schema};

use crate::error::{Error, Result};
use crate::index::{IndexId, UIndex};
use crate::query::{Query, QueryHit};
use crate::scan::{QueryTrace, ScanStats};
use crate::spec::{IndexSpec, SpecBuilder};

/// The page-store stack under a [`Database`] index: checksum verification
/// above deterministic fault injection above memory. The fault layer is
/// below the checksums on purpose — injected silent damage must be caught
/// by the trailer, exactly like real bit rot. With an empty fault schedule
/// the middle layer is a pass-through.
pub type DbStore = ChecksumStore<FaultStore<MemStore>>;

/// Result of [`Database::check`]: scrub outcome, tree verification, and
/// the entry-level cross-check against the object store.
#[derive(Debug)]
pub struct CheckReport {
    /// Checksum scrub over every live page.
    pub scrub: ScrubReport,
    /// Structural B-tree verification outcome (`None` when it passed).
    pub tree_error: Option<String>,
    /// Whether the tree's entries matched a recomputation from the object
    /// store (`false` also when the comparison could not run).
    pub content_ok: bool,
    /// Whether the index is quarantined after this check.
    pub quarantined: bool,
}

impl CheckReport {
    /// Whether every layer of the check passed.
    pub fn clean(&self) -> bool {
        self.scrub.clean() && self.tree_error.is_none() && self.content_ok
    }
}

/// An OODB with automatically maintained U-indexes.
///
/// Generic over the page-store stack `P` under the index: the default
/// [`DbStore`] is the in-memory production stack; the durable tier runs
/// the same `Database` over [`crate::DiskStore`] (see
/// [`crate::DiskDatabase`]). Everything except construction, persistence
/// and repair is backend-agnostic.
pub struct Database<P: PageStore = DbStore> {
    store: ObjectStore,
    index: UIndex<P>,
    /// Classes added by schema evolution whose codes are not assigned yet.
    /// Assignment is deferred until first use so that REF attributes
    /// declared after the class still constrain its code position
    /// (paper Fig. 4b: a new hierarchy slots between the hierarchies it
    /// references and is referenced by).
    pending_codes: BTreeSet<ClassId>,
    /// Geometry retained for [`Database::repair`], which rebuilds the
    /// index on a fresh store rather than trusting damaged pages.
    page_size: usize,
    pool_pages: usize,
    config: BTreeConfig,
    /// Set when corruption was detected in the index; queries fall back
    /// to a sequential scan of the object store until a clean
    /// [`Database::check`] or a [`Database::repair`] clears it. Atomic so
    /// the whole query path stays `&self` (shared across reader threads)
    /// while still able to impose a quarantine on the spot; `Arc`-shared
    /// so readers armed via [`Database::reader_with_fallback`] see — and
    /// can impose — the same quarantine from other threads.
    quarantined: Arc<AtomicBool>,
}

impl Database {
    // ----- construction (in-memory tier) ---------------------------------

    /// Build a database over `schema`, generating the class-code encoding.
    /// Fails if the schema's REF graph is cyclic (see
    /// [`schema::cycles::partition_acyclic`] to split it).
    pub fn in_memory(schema: Schema) -> Result<Self> {
        Self::with_page_size(schema, 1024, 1 << 16)
    }

    /// Like [`Database::in_memory`] with explicit page geometry.
    pub fn with_page_size(schema: Schema, page_size: usize, pool_pages: usize) -> Result<Self> {
        Self::with_config(schema, page_size, pool_pages, BTreeConfig::default())
    }

    /// The pool over a fresh checksummed store. The inner store's pages are
    /// [`TRAILER_LEN`] bytes larger so the exposed page size — the one the
    /// tree sees and the experiments' page counts are measured in — stays
    /// exactly `page_size`.
    fn fresh_pool(page_size: usize, pool_pages: usize) -> BufferPool<DbStore> {
        let store = ChecksumStore::new(FaultStore::new(MemStore::new(page_size + TRAILER_LEN)));
        let pool = BufferPool::new(store, pool_pages);
        pool.set_retry_policy(RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        });
        pool
    }

    /// Full control over the index B-tree configuration (the paper's first
    /// experiment caps nodes at 10 entries).
    pub fn with_config(
        schema: Schema,
        page_size: usize,
        pool_pages: usize,
        config: BTreeConfig,
    ) -> Result<Self> {
        let encoding = Encoding::generate(&schema)?;
        let pool = Self::fresh_pool(page_size, pool_pages);
        let index = UIndex::new(pool, config, encoding)?;
        Ok(Database {
            store: ObjectStore::new(schema),
            index,
            pending_codes: BTreeSet::new(),
            page_size,
            pool_pages,
            config,
            quarantined: Arc::new(AtomicBool::new(false)),
        })
    }
}

impl<P: PageStore> Database<P> {
    /// Assemble a database from an already-built index and object store
    /// (the disk tier's open/rebuild paths). `page_size`/`pool_pages`/
    /// `config` record the geometry for later rebuilds.
    pub(crate) fn from_raw_parts(
        store: ObjectStore,
        index: UIndex<P>,
        page_size: usize,
        pool_pages: usize,
        config: BTreeConfig,
    ) -> Self {
        Database {
            store,
            index,
            pending_codes: BTreeSet::new(),
            page_size,
            pool_pages,
            config,
            quarantined: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Replace the object store (disk-tier open: objects come from their
    /// own snapshot file, not the index).
    pub(crate) fn set_store(&mut self, store: ObjectStore) {
        self.store = store;
    }

    /// The B-tree configuration this database was built with.
    pub fn config(&self) -> BTreeConfig {
        self.config
    }

    /// The object store.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        self.store.schema()
    }

    /// The U-index.
    pub fn index(&self) -> &UIndex<P> {
        &self.index
    }

    /// Mutable U-index access (e.g. for statistics resets).
    pub fn index_mut(&mut self) -> &mut UIndex<P> {
        &mut self.index
    }

    /// Whether the index is quarantined (queries run degraded).
    pub fn quarantined(&self) -> bool {
        self.quarantined.load(Ordering::Acquire)
    }

    /// A `Send + Clone` read handle for concurrent queries from other
    /// threads (see [`crate::DatabaseReader`]). Enables snapshot mode on
    /// the index tree — from here on the writer preserves pre-images for
    /// live snapshots and every mutation publishes a new epoch.
    ///
    /// `&mut self` on purpose: the reader captures the spec table, class
    /// encoding and schema as of this call, so take it after defining
    /// indexes and loading data.
    pub fn reader(&mut self) -> crate::DatabaseReader<P> {
        self.index.tree_mut().enable_snapshots();
        crate::DatabaseReader::new(
            self.index.tree().reader(),
            self.index.encoding().clone(),
            self.index.specs().to_vec(),
            self.store.schema().clone(),
        )
    }

    /// Like [`Database::reader`], additionally arming the reader with a
    /// degraded-mode fallback: a frozen clone of the object store plus the
    /// database's own quarantine flag. Such a reader answers queries from
    /// the object store when the index is quarantined or faulting (see
    /// [`crate::DatabaseReader::query_guarded_at`]) instead of failing —
    /// the serving tier's availability path. Costs one object-store clone;
    /// the plain [`Database::reader`] stays clone-free for perf paths.
    pub fn reader_with_fallback(&mut self) -> crate::DatabaseReader<P> {
        let mut reader = self.reader();
        reader.enable_fallback(Arc::new(self.store.clone()), Arc::clone(&self.quarantined));
        reader
    }

    /// The shared quarantine flag: set on detected corruption (by the
    /// writer or any fallback-armed reader), cleared by a clean
    /// [`Database::check`] or a repair.
    pub fn quarantine_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.quarantined)
    }

    // ----- schema evolution ---------------------------------------------

    /// Add a new hierarchy root class (paper Fig. 4b). Its code is
    /// assigned lazily — declare the class's reference attributes first and
    /// the code will respect them; force assignment with
    /// [`Database::encode_class`].
    pub fn add_class(&mut self, name: &str) -> Result<ClassId> {
        let id = self.store.schema_mut().add_class(name)?;
        self.pending_codes.insert(id);
        Ok(id)
    }

    /// Add a sub-class (paper Fig. 4a); its code is assigned lazily.
    pub fn add_subclass(&mut self, name: &str, parent: ClassId) -> Result<ClassId> {
        let id = self.store.schema_mut().add_subclass(name, parent)?;
        self.pending_codes.insert(id);
        Ok(id)
    }

    /// Assign a code now to `class` (and any pending ancestors), honouring
    /// the REF edges declared so far.
    pub fn encode_class(&mut self, class: ClassId) -> Result<()> {
        if !self.pending_codes.contains(&class) {
            return Ok(());
        }
        if let Some(&parent) = self.store.schema().parents(class).first() {
            self.encode_class(parent)?;
        }
        let schema = self.store.schema().clone();
        self.index.encoding_mut().assign_class(&schema, class)?;
        self.pending_codes.remove(&class);
        Ok(())
    }

    fn encode_all_pending(&mut self) -> Result<()> {
        let pending: Vec<ClassId> = self.pending_codes.iter().copied().collect();
        for c in pending {
            self.encode_class(c)?;
        }
        Ok(())
    }

    /// Declare an attribute.
    pub fn add_attr(
        &mut self,
        class: ClassId,
        name: &str,
        ty: schema::AttrType,
    ) -> Result<schema::AttrId> {
        Ok(self.store.schema_mut().add_attr(class, name, ty)?)
    }

    // ----- index definition ----------------------------------------------

    /// Define an index from a builder and populate it from current data.
    pub fn define_index(&mut self, builder: SpecBuilder) -> Result<IndexId> {
        let spec = builder.build(self.store.schema())?;
        self.define_index_spec(spec)
    }

    /// Define an index from an explicit spec and populate it.
    pub fn define_index_spec(&mut self, spec: IndexSpec) -> Result<IndexId> {
        self.encode_all_pending()?;
        let id = self.index.define(self.store.schema(), spec)?;
        self.index.build(&self.store, id)?;
        self.index.tree_mut().publish()?;
        Ok(id)
    }

    // ----- object mutations (index-maintaining) ---------------------------

    /// Create an object (no attributes yet, so no index entries).
    pub fn create_object(&mut self, class: ClassId) -> Result<Oid> {
        self.encode_class(class)?;
        Ok(self.store.create(class)?)
    }

    /// For every index, the encoded keys of all entries containing `oid` —
    /// exactly the entries a mutation of `oid` can add or remove.
    fn involved_entries(&self, oid: Oid) -> Result<Vec<BTreeSet<Vec<u8>>>> {
        let mut out = Vec::with_capacity(self.index.specs().len());
        for id in 0..self.index.specs().len() as IndexId {
            let mut set = BTreeSet::new();
            for e in self.index.entries_involving(&self.store, id, oid)? {
                set.insert(e.encode()?);
            }
            out.push(set);
        }
        Ok(out)
    }

    fn apply_diff(
        &mut self,
        before: Vec<BTreeSet<Vec<u8>>>,
        after: Vec<BTreeSet<Vec<u8>>>,
    ) -> Result<()> {
        for (b, a) in before.iter().zip(&after) {
            for key in b.difference(a) {
                self.index.tree_mut().delete(key)?;
            }
            for key in a.difference(b) {
                self.index.tree_mut().insert(key, &[])?;
            }
        }
        // Expose the mutated tree to snapshot readers: every Database
        // mutation is one atomic publish, so concurrent scans only ever
        // see entry sets that correspond to a completed mutation.
        self.index.tree_mut().publish()?;
        Ok(())
    }

    /// Set an attribute, keeping every index consistent. Only the entries
    /// containing `oid` are recomputed, so the cost matches the paper's
    /// §3.5 analysis (one entry for an end-of-path attribute update, the
    /// clustered group for a mid-path reference change).
    pub fn set_attr(&mut self, oid: Oid, name: &str, value: Value) -> Result<Option<Value>> {
        let before = self.involved_entries(oid)?;
        let old = self.store.set_attr(oid, name, value)?;
        let after = self.involved_entries(oid)?;
        self.apply_diff(before, after)?;
        Ok(old)
    }

    /// Delete an object, keeping every index consistent. With `force`,
    /// dangling references from other objects are allowed (their path
    /// entries through this object disappear).
    pub fn delete_object(&mut self, oid: Oid, force: bool) -> Result<()> {
        let before = self.involved_entries(oid)?;
        self.store.delete(oid, force)?;
        // The object no longer exists, so no entry can involve it.
        let after = vec![BTreeSet::new(); before.len()];
        self.apply_diff(before, after)?;
        Ok(())
    }
}

// ----- persistence (in-memory tier) -----------------------------------------

impl Database {
    /// Save the database into a directory: `objects.bin` (schema + objects)
    /// and `specs.bin` (index definitions). Opening rebuilds the indexes
    /// deterministically from the data.
    pub fn save(&self, dir: &std::path::Path) -> Result<()> {
        std::fs::create_dir_all(dir).map_err(pagestore::Error::Io)?;
        std::fs::write(dir.join("objects.bin"), self.store.to_bytes())
            .map_err(pagestore::Error::Io)?;
        let specs = crate::catalog::encode_spec_file(self.index.specs());
        std::fs::write(dir.join("specs.bin"), specs).map_err(pagestore::Error::Io)?;
        Ok(())
    }

    /// Open a database saved by [`Database::save`], rebuilding all indexes.
    pub fn open(dir: &std::path::Path) -> Result<Self> {
        let objects = std::fs::read(dir.join("objects.bin")).map_err(pagestore::Error::Io)?;
        let store = ObjectStore::from_bytes(&objects)?;
        let schema = store.schema().clone();
        let mut db = Database::in_memory(schema)?;
        db.store = store;
        let specs = std::fs::read(dir.join("specs.bin")).map_err(pagestore::Error::Io)?;
        for spec in crate::catalog::decode_spec_file(&specs)? {
            db.define_index_spec(spec)?;
        }
        Ok(db)
    }

    /// Salvage the index: rebuild every registered index from the object
    /// store into a brand-new checksummed store via the bulk loader, verify
    /// it, and swap it in. The damaged tree is never walked — the object
    /// store is the source of truth. Returns the number of entries loaded
    /// and clears any quarantine.
    pub fn repair(&mut self) -> Result<u64> {
        let pool = Self::fresh_pool(self.page_size, self.pool_pages);
        let tree = BTree::create(pool, self.config)?;
        let mut index = UIndex::from_parts(
            tree,
            self.index.encoding().clone(),
            self.index.specs().to_vec(),
        );
        let n = index.build_all(&self.store)?;
        index.verify()?;
        self.index = index;
        self.index.tree_mut().publish()?;
        self.quarantined.store(false, Ordering::Release);
        telemetry::counter("uindex.degraded.repairs").inc();
        Ok(n)
    }

    /// A clonable handle onto the in-memory stack's fault-injection
    /// schedule — the live chaos channel for tests and harnesses. Faults
    /// land *below* the checksum layer, so injected silent damage is
    /// detected like real bit rot.
    pub fn fault_handle(&self) -> pagestore::FaultHandle {
        self.index.tree().pool().store_lock().inner().handle()
    }
}

// ----- integrity: check / repair / degraded queries --------------------------

impl<P: Scrubbable> Database<P> {
    /// Scrub every live index page, verify the B-tree structurally, and
    /// cross-check its entries against a recomputation from the object
    /// store. A clean check lifts an existing quarantine; a failed one
    /// imposes it, so queries degrade instead of trusting damaged pages.
    pub fn check(&mut self) -> Result<CheckReport> {
        // Make the backing store authoritative, then drop the cache so the
        // scrub and the verification below actually re-read (and re-verify)
        // every page instead of being served stale frames.
        let pool = self.index.tree().pool();
        pool.flush()?;
        pool.invalidate_cache()?;
        let scrub = pool.store_lock().scrub_pages();

        let tree_error = if scrub.clean() {
            match self.index.verify() {
                Ok(_) => None,
                Err(e) => Some(e.to_string()),
            }
        } else {
            Some("scrub found damaged pages".to_string())
        };

        let content_ok = tree_error.is_none() && self.content_matches_store()?;

        let quarantined = !(scrub.clean() && tree_error.is_none() && content_ok);
        self.quarantined.store(quarantined, Ordering::Release);
        if quarantined {
            telemetry::counter("uindex.degraded.quarantines").inc();
        }
        Ok(CheckReport {
            scrub,
            tree_error,
            content_ok,
            quarantined,
        })
    }
}

impl<P: PageStore> Database<P> {
    /// Compare the tree's entry keys (catalog entries excluded) with a
    /// fresh recomputation from the object store.
    fn content_matches_store(&self) -> Result<bool> {
        let catalog_prefix = crate::catalog::CATALOG_ID.to_be_bytes();
        let mut tree_keys: Vec<Vec<u8>> = self
            .index
            .tree()
            .scan_all()?
            .into_iter()
            .map(|(k, _)| k)
            .filter(|k| !k.starts_with(&catalog_prefix))
            .collect();
        tree_keys.sort();
        let mut expected: Vec<Vec<u8>> = Vec::new();
        for id in 0..self.index.specs().len() as IndexId {
            for e in crate::oracle::all_entries(&self.index, &self.store, id)? {
                expected.push(e.encode()?);
            }
        }
        expected.sort();
        Ok(tree_keys == expected)
    }

    /// Answer `q` without the index: recompute matching entries from the
    /// object store (the differential oracle's evaluator, proven
    /// equivalent to all scan algorithms by its trial harness). Slower,
    /// but immune to index damage.
    fn degraded_eval(&self, q: &Query) -> Result<Vec<QueryHit>> {
        let hits = crate::oracle::eval(&self.index, &self.store, q)?;
        telemetry::counter("uindex.degraded.queries").inc();
        Ok(match q.distinct_upto {
            Some(pos) => crate::oracle::distinct_filter(&hits, pos),
            None => hits,
        })
    }

    /// Run `q` through the index, falling back to [`Database::degraded_eval`]
    /// when the index is quarantined — or quarantining it on the spot when
    /// the scan hits corruption. The returned flag reports whether the
    /// degraded path answered. Queries never silently return wrong data:
    /// damage either surfaces as [`pagestore::Error::Corruption`] inside
    /// the scan (caught here) or was already flagged by a check.
    pub fn query_traced_guarded(
        &self,
        q: &Query,
    ) -> Result<(Vec<QueryHit>, ScanStats, QueryTrace, bool)> {
        if !self.quarantined.load(Ordering::Acquire) {
            match self.index.query_traced(q) {
                Ok((hits, stats, trace)) => return Ok((hits, stats, trace, false)),
                Err(Error::Page(e)) if e.is_corruption() => {
                    self.quarantined.store(true, Ordering::Release);
                    telemetry::counter("uindex.degraded.quarantines").inc();
                }
                Err(e) => return Err(e),
            }
        }
        let hits = self.degraded_eval(q)?;
        Ok((hits, ScanStats::default(), QueryTrace::default(), true))
    }

    // ----- queries ---------------------------------------------------------

    /// Run a query, returning the hits.
    pub fn query(&self, q: &Query) -> Result<Vec<QueryHit>> {
        Ok(self.query_traced_guarded(q)?.0)
    }

    /// Parse and run a [`crate::uql`] query string.
    pub fn query_uql(&self, input: &str) -> Result<(Vec<QueryHit>, ScanStats)> {
        let q = crate::uql::parse(&self.index, self.store.schema(), input)?;
        self.query_with_stats(&q)
    }

    /// Run a query, returning hits and scan cost counters.
    pub fn query_with_stats(&self, q: &Query) -> Result<(Vec<QueryHit>, ScanStats)> {
        let (hits, stats, _, _) = self.query_traced_guarded(q)?;
        Ok((hits, stats))
    }

    /// Execute `q` and build an EXPLAIN ANALYZE report: the translated plan
    /// plus the executed [`crate::QueryTrace`].
    pub fn explain_query(&self, q: &Query) -> Result<crate::ExplainReport> {
        crate::explain::explain(self, q)
    }

    /// Parse a [`crate::uql`] string (an optional leading `explain analyze`
    /// is accepted and stripped) and build an EXPLAIN ANALYZE report.
    pub fn explain_uql(&self, input: &str) -> Result<crate::ExplainReport> {
        let stripped = strip_explain_prefix(input);
        let q = crate::uql::parse(&self.index, self.store.schema(), stripped)?;
        self.explain_query(&q)
    }
}

/// Strip a case-insensitive leading `explain analyze` / `explain`, so both
/// `explain analyze color: ...` and a bare query string reach the parser.
fn strip_explain_prefix(input: &str) -> &str {
    let trimmed = input.trim_start();
    for kw in ["explain analyze", "explain"] {
        if trimmed.len() >= kw.len() && trimmed[..kw.len()].eq_ignore_ascii_case(kw) {
            let rest = &trimmed[kw.len()..];
            // Keyword must end at a word boundary ("explainx" is not it).
            if rest.starts_with(char::is_whitespace) {
                return rest.trim_start();
            }
        }
    }
    trimmed
}
