//! The durable tier: a [`Database`] over the file-backed, WAL-protected
//! page-store stack.
//!
//! A [`DiskDatabase`] lives in one directory:
//!
//! | file             | contents                                            |
//! |------------------|-----------------------------------------------------|
//! | `meta.bin`       | static geometry: page size, pool size, B-tree config, group-commit interval, checkpoint period |
//! | `pages.db`       | the index B-tree's pages ([`pagestore::FileStore`], checksummed trailers) |
//! | `pages.db.free`  | the file store's free-list manifest                  |
//! | `wal.log`        | write-ahead log over the page file                   |
//! | `objects.udb`    | epoch-stamped object-store snapshot                  |
//! | `specs.bin`      | index definitions (rebuild source when the in-tree catalog is unreadable) |
//!
//! Page 0 of the store is the **meta page**: the tree's root, length and
//! the *object epoch*, all WAL-protected so they move atomically with the
//! tree's pages at each commit. The object store has its own durability
//! domain (`objects.udb`, replaced atomically per commit) stamped with the
//! same epoch; [`DiskDatabase::open`] compares the two stamps, and on any
//! mismatch — or any damage to the index files — rebuilds the index from
//! the object snapshot, which is the source of truth (the same salvage
//! philosophy as the in-memory [`Database::repair`]).
//!
//! Commit ordering (crash safety): tree pages and the meta page are
//! flushed into the WAL overlay, then `objects.udb` is atomically
//! replaced, then the WAL commit marker is appended. A crash between the
//! last two steps leaves the objects one epoch ahead of the committed
//! index — detected at open, healed by rebuild. Group commit batches the
//! WAL fsyncs ([`pagestore::WalStore::set_group_commit`]), and every
//! `checkpoint_every` commits the overlay is checkpointed into the page
//! file so the log stays short.

use std::fs::File;
use std::io::Write as _;
use std::ops::{Deref, DerefMut};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

use btree::{BTreeConfig, Capacity};
use objstore::ObjectStore;
use pagestore::disk as pdisk;
use pagestore::{BufferPool, PageId, RecoveryReport, RetryPolicy, ScrubReport, Scrubbable};
use schema::{Encoding, Schema};

use crate::db::Database;
use crate::error::{Error, Result};
use crate::index::UIndex;

/// The page-store stack under a [`DiskDatabase`]'s index.
pub type DiskStore = pdisk::DiskStack;

const DB_META_MAGIC: &[u8; 8] = b"UIDXDBM1";
const META_PAGE_MAGIC: &[u8; 8] = b"UIDXMETA";
const OBJECTS_MAGIC: &[u8; 8] = b"UIDXOBJ1";

/// The WAL-protected meta page holding root/len/epoch.
const META_PAGE: PageId = PageId(0);

/// Geometry file inside a database directory.
pub const DB_META_FILE: &str = "meta.bin";
/// Object-store snapshot inside a database directory.
pub const OBJECTS_FILE: &str = "objects.udb";
/// Index-spec sidecar inside a database directory.
pub const SPECS_FILE: &str = "specs.bin";

/// Tuning knobs for a [`DiskDatabase`], fixed at create time and recorded
/// in `meta.bin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskOptions {
    /// Exposed page size (the B-tree's view; the file adds the checksum
    /// trailer below).
    pub page_size: usize,
    /// Buffer-pool capacity in pages.
    pub pool_pages: usize,
    /// Index B-tree configuration.
    pub config: BTreeConfig,
    /// Fsync the WAL every this many commits (1 = every commit).
    pub group_commit: u32,
    /// Checkpoint the WAL into the page file every this many commits
    /// (0 = only on explicit [`DiskDatabase::checkpoint`]/close).
    pub checkpoint_every: u32,
}

impl Default for DiskOptions {
    fn default() -> Self {
        DiskOptions {
            page_size: 1024,
            pool_pages: 1 << 16,
            config: BTreeConfig::default(),
            group_commit: 8,
            checkpoint_every: 64,
        }
    }
}

/// What [`DiskDatabase::open`] found while bringing the store up: WAL
/// replay, checksum scrub, tree verification, and whether the index had
/// to be rebuilt from the object snapshot.
#[derive(Debug)]
pub struct OpenReport {
    /// WAL replay outcome (None only if the log was missing entirely).
    pub recovery: Option<RecoveryReport>,
    /// Checksum scrub over the page file after replay + checkpoint.
    pub scrub: ScrubReport,
    /// Whether the tree passed structural verification before serving.
    pub tree_ok: bool,
    /// Whether the index was rebuilt from `objects.udb` (epoch mismatch,
    /// scrub damage, unreadable catalog, or failed verification).
    pub rebuilt: bool,
}

impl OpenReport {
    /// Whether the store came up from its own files, no salvage needed.
    pub fn clean(&self) -> bool {
        self.tree_ok && !self.rebuilt && self.scrub.clean()
    }
}

/// A [`Database`] over [`DiskStore`] plus the directory bookkeeping that
/// makes it durable. Dereferences to the inner [`Database`] for all
/// querying, mutation and schema evolution; mutations become durable at
/// the next [`DiskDatabase::commit`] (or [`DiskDatabase::checkpoint`]) —
/// dropping the handle without committing loses everything since the
/// last commit, exactly like a crash.
pub struct DiskDatabase {
    db: Database<DiskStore>,
    dir: PathBuf,
    options: DiskOptions,
    /// Epoch stamped into both the meta page and `objects.udb` at the
    /// last commit; bumped on each commit.
    object_epoch: u64,
    commits_since_checkpoint: u32,
    /// Background checkpointer, when enabled: periodic checkpoints run
    /// off the commit path (see
    /// [`DiskDatabase::enable_background_checkpoints`]).
    bg: Option<BgCheckpointer>,
}

enum BgMsg {
    Tick,
    Shutdown,
}

/// Handle to the background checkpoint thread. The thread owns an
/// `Arc` of the buffer pool and checkpoints through the store mutex, so
/// it serializes naturally with the writer; it only ever checkpoints at
/// commit boundaries ([`pagestore::WalStore::checkpoint_if_quiescent`]),
/// never mid-mutation. Dropping the handle shuts the thread down.
struct BgCheckpointer {
    tx: mpsc::Sender<BgMsg>,
    handle: Option<std::thread::JoinHandle<()>>,
    completed: Arc<AtomicU64>,
    skipped: Arc<AtomicU64>,
    /// Last `completed` value the commit path observed — lets it reset
    /// its inline-fallback counter only when the thread actually ran.
    seen: u64,
}

impl Drop for BgCheckpointer {
    fn drop(&mut self) {
        let _ = self.tx.send(BgMsg::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Deref for DiskDatabase {
    type Target = Database<DiskStore>;
    fn deref(&self) -> &Self::Target {
        &self.db
    }
}

impl DerefMut for DiskDatabase {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.db
    }
}

// ----- small file helpers ----------------------------------------------------

fn io(e: std::io::Error) -> Error {
    Error::Page(pagestore::Error::Io(e))
}

/// Write `bytes` to `path` atomically: tmp file, fsync, rename, fsync of
/// the parent directory (so the rename itself is durable).
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp).map_err(io)?;
        f.write_all(bytes).map_err(io)?;
        f.sync_all().map_err(io)?;
    }
    std::fs::rename(&tmp, path).map_err(io)?;
    if let Some(parent) = path.parent() {
        if let Ok(d) = File::open(parent) {
            d.sync_all().ok();
        }
    }
    Ok(())
}

fn encode_db_meta(o: &DiskOptions) -> Vec<u8> {
    let mut v = Vec::with_capacity(36);
    v.extend_from_slice(DB_META_MAGIC);
    v.extend_from_slice(&(o.page_size as u32).to_le_bytes());
    v.extend_from_slice(&(o.pool_pages as u32).to_le_bytes());
    let (kind, cap) = match o.config.capacity {
        Capacity::Bytes => (0u8, 0u32),
        Capacity::Entries(m) => (1u8, m as u32),
    };
    v.push(kind);
    v.extend_from_slice(&cap.to_le_bytes());
    v.push(u8::from(o.config.front_compression));
    v.push(u8::from(o.config.suffix_truncation));
    v.extend_from_slice(&o.group_commit.to_le_bytes());
    v.extend_from_slice(&o.checkpoint_every.to_le_bytes());
    let crc = pagestore::crc32(&v);
    v.extend_from_slice(&crc.to_le_bytes());
    v
}

fn decode_db_meta(v: &[u8]) -> Result<DiskOptions> {
    let corrupt = |what: &str| Error::Page(pagestore::Error::Corrupt(format!("meta.bin: {what}")));
    if v.len() != 31 + 4 {
        return Err(corrupt("truncated"));
    }
    if &v[..8] != DB_META_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let crc = u32::from_le_bytes(v[31..35].try_into().unwrap());
    if pagestore::crc32(&v[..31]) != crc {
        return Err(corrupt("failed its CRC"));
    }
    let page_size = u32::from_le_bytes(v[8..12].try_into().unwrap()) as usize;
    let pool_pages = u32::from_le_bytes(v[12..16].try_into().unwrap()) as usize;
    let cap = u32::from_le_bytes(v[17..21].try_into().unwrap()) as usize;
    let capacity = match v[16] {
        0 => Capacity::Bytes,
        1 => Capacity::Entries(cap),
        _ => return Err(corrupt("unknown capacity kind")),
    };
    Ok(DiskOptions {
        page_size,
        pool_pages,
        config: BTreeConfig {
            capacity,
            front_compression: v[21] != 0,
            suffix_truncation: v[22] != 0,
        },
        group_commit: u32::from_le_bytes(v[23..27].try_into().unwrap()),
        checkpoint_every: u32::from_le_bytes(v[27..31].try_into().unwrap()),
    })
}

fn encode_objects(epoch: u64, payload: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(24 + payload.len() + 4);
    v.extend_from_slice(OBJECTS_MAGIC);
    v.extend_from_slice(&epoch.to_le_bytes());
    v.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    v.extend_from_slice(payload);
    let crc = pagestore::crc32(&v);
    v.extend_from_slice(&crc.to_le_bytes());
    v
}

fn decode_objects(v: &[u8]) -> Result<(u64, &[u8])> {
    let corrupt =
        |what: &str| Error::Page(pagestore::Error::Corrupt(format!("objects.udb: {what}")));
    if v.len() < 28 || &v[..8] != OBJECTS_MAGIC {
        return Err(corrupt("truncated or bad magic"));
    }
    let epoch = u64::from_le_bytes(v[8..16].try_into().unwrap());
    let len = u64::from_le_bytes(v[16..24].try_into().unwrap()) as usize;
    if v.len() != 24 + len + 4 {
        return Err(corrupt("length mismatch"));
    }
    let crc = u32::from_le_bytes(v[24 + len..].try_into().unwrap());
    if pagestore::crc32(&v[..24 + len]) != crc {
        return Err(corrupt("failed its CRC"));
    }
    Ok((epoch, &v[24..24 + len]))
}

fn fresh_disk_pool(stack: DiskStore, pool_pages: usize) -> BufferPool<DiskStore> {
    let pool = BufferPool::new(stack, pool_pages);
    pool.set_retry_policy(RetryPolicy {
        max_attempts: 3,
        ..RetryPolicy::default()
    });
    pool
}

impl DiskDatabase {
    // ----- create ---------------------------------------------------------

    /// Create a fresh on-disk database in `dir` (created if missing; any
    /// existing store there is truncated). Ends with a checkpoint, so a
    /// crash immediately after returns an openable, empty database.
    pub fn create(schema: Schema, dir: &Path, options: DiskOptions) -> Result<Self> {
        std::fs::create_dir_all(dir).map_err(io)?;
        let encoding = Encoding::generate(&schema)?;
        let mut stack = pdisk::create(dir, options.page_size)?;
        stack.set_group_commit(options.group_commit);
        let pool = fresh_disk_pool(stack, options.pool_pages);
        let (meta_id, page) = pool.allocate()?;
        drop(page);
        debug_assert_eq!(meta_id, META_PAGE, "meta page must be the first allocation");
        let mut index = UIndex::new(pool, options.config, encoding)?;
        index.save_catalog(&schema)?;
        let db = Database::from_raw_parts(
            ObjectStore::new(schema),
            index,
            options.page_size,
            options.pool_pages,
            options.config,
        );
        write_atomic(&dir.join(DB_META_FILE), &encode_db_meta(&options))?;
        let mut this = DiskDatabase {
            db,
            dir: dir.to_path_buf(),
            options,
            object_epoch: 0,
            commits_since_checkpoint: 0,
            bg: None,
        };
        this.checkpoint()?;
        Ok(this)
    }

    // ----- open -----------------------------------------------------------

    /// Open an existing on-disk database: replay the WAL, checkpoint the
    /// replayed state, scrub every page's checksum, and verify the tree
    /// before serving. Any damage — scrub errors, an unreadable meta page
    /// or catalog, a failed verification, or an epoch mismatch between the
    /// index and the object snapshot — triggers a rebuild from
    /// `objects.udb` instead of failing.
    pub fn open(dir: &Path) -> Result<(Self, OpenReport)> {
        let meta = std::fs::read(dir.join(DB_META_FILE)).map_err(io)?;
        let options = decode_db_meta(&meta)?;
        let objects_raw = std::fs::read(dir.join(OBJECTS_FILE)).map_err(io)?;
        let (object_epoch, payload) = decode_objects(&objects_raw)?;
        let store = ObjectStore::from_bytes(payload)?;

        let mut stack = pdisk::open(dir)?;
        let recovery = stack.recovery().copied();
        stack.set_group_commit(options.group_commit);
        // Make the replayed state durable in the page file, then scrub it.
        stack.checkpoint()?;
        let scrub = stack.scrub_pages();
        let mut report = OpenReport {
            recovery,
            scrub,
            tree_ok: false,
            rebuilt: false,
        };
        if !report.scrub.clean() {
            return Self::rebuild(dir, options, store, object_epoch, report);
        }

        let mut pool = fresh_disk_pool(stack, options.pool_pages);
        let header = Self::read_meta_page(&mut pool);
        let Ok((root, len, meta_epoch)) = header else {
            return Self::rebuild(dir, options, store, object_epoch, report);
        };
        if meta_epoch != object_epoch {
            telemetry::counter("uindex.disk.epoch_mismatches").inc();
            return Self::rebuild(dir, options, store, object_epoch, report);
        }
        match UIndex::open_with_catalog(pool, options.config, root, len) {
            Ok((index, _catalog_schema)) => {
                if index.verify().is_err() {
                    return Self::rebuild(dir, options, store, object_epoch, report);
                }
                report.tree_ok = true;
                let mut db = Database::from_raw_parts(
                    ObjectStore::new(store.schema().clone()),
                    index,
                    options.page_size,
                    options.pool_pages,
                    options.config,
                );
                db.set_store(store);
                Ok((
                    DiskDatabase {
                        db,
                        dir: dir.to_path_buf(),
                        options,
                        object_epoch,
                        commits_since_checkpoint: 0,
                        bg: None,
                    },
                    report,
                ))
            }
            Err(_) => Self::rebuild(dir, options, store, object_epoch, report),
        }
    }

    /// Whether `dir` holds an on-disk database.
    pub fn exists(dir: &Path) -> bool {
        dir.join(DB_META_FILE).is_file() && pdisk::exists(dir)
    }

    fn read_meta_page(pool: &mut BufferPool<DiskStore>) -> Result<(PageId, u64, u64)> {
        let corrupt =
            |what: &str| Error::Page(pagestore::Error::Corrupt(format!("meta page: {what}")));
        let page = pool.fetch(META_PAGE)?;
        let data = page.read();
        if data.len() < 32 || &data[..8] != META_PAGE_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let crc = u32::from_le_bytes(data[28..32].try_into().unwrap());
        if pagestore::crc32(&data[..28]) != crc {
            return Err(corrupt("failed its CRC"));
        }
        let root = PageId(u32::from_le_bytes(data[8..12].try_into().unwrap()));
        let len = u64::from_le_bytes(data[12..20].try_into().unwrap());
        let epoch = u64::from_le_bytes(data[20..28].try_into().unwrap());
        Ok((root, len, epoch))
    }

    /// Rebuild the index files from the object snapshot: blow away
    /// `pages.db`/`wal.log`, bulk-load every spec from `specs.bin`, verify,
    /// and checkpoint. The object data is never at risk — only the
    /// derived index is recreated (PR-4's salvage philosophy on disk).
    fn rebuild(
        dir: &Path,
        options: DiskOptions,
        store: ObjectStore,
        object_epoch: u64,
        mut report: OpenReport,
    ) -> Result<(Self, OpenReport)> {
        telemetry::counter("uindex.disk.rebuilds").inc();
        let specs = match std::fs::read(dir.join(SPECS_FILE)) {
            Ok(bytes) => crate::catalog::decode_spec_file(&bytes)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io(e)),
        };
        let mut stack = pdisk::create(dir, options.page_size)?;
        stack.set_group_commit(options.group_commit);
        let pool = fresh_disk_pool(stack, options.pool_pages);
        let (meta_id, page) = pool.allocate()?;
        drop(page);
        debug_assert_eq!(meta_id, META_PAGE, "meta page must be the first allocation");
        let encoding = Encoding::generate(store.schema())?;
        let mut index = UIndex::new(pool, options.config, encoding)?;
        for spec in specs {
            index.define(store.schema(), spec)?;
        }
        index.build_all(&store)?;
        index.verify()?;
        index.save_catalog(store.schema())?;
        let mut db = Database::from_raw_parts(
            ObjectStore::new(store.schema().clone()),
            index,
            options.page_size,
            options.pool_pages,
            options.config,
        );
        db.set_store(store);
        let mut this = DiskDatabase {
            db,
            dir: dir.to_path_buf(),
            options,
            object_epoch,
            commits_since_checkpoint: 0,
            bg: None,
        };
        this.checkpoint()?;
        report.rebuilt = true;
        report.tree_ok = true;
        Ok((this, report))
    }

    // ----- durability -----------------------------------------------------

    /// Persist the logical state into the WAL overlay and the sidecar
    /// files: refresh the in-tree catalog, stamp the meta page with the
    /// next epoch, flush dirty frames, and atomically replace `specs.bin`
    /// and `objects.udb`. The caller follows with a WAL commit or
    /// checkpoint — until then the new tree state is not durable.
    fn persist_logical_state(&mut self) -> Result<()> {
        let schema = self.db.schema().clone();
        self.db.index_mut().save_catalog(&schema)?;
        self.object_epoch += 1;
        let (root, len) = {
            let tree = self.db.index().tree();
            (tree.root(), tree.len())
        };
        let epoch = self.object_epoch;
        let pool = self.db.index().tree().pool();
        {
            let page = pool.fetch(META_PAGE)?;
            let mut w = page.write();
            w[..8].copy_from_slice(META_PAGE_MAGIC);
            w[8..12].copy_from_slice(&root.0.to_le_bytes());
            w[12..20].copy_from_slice(&len.to_le_bytes());
            w[20..28].copy_from_slice(&epoch.to_le_bytes());
            let crc = pagestore::crc32(&w[..28]);
            w[28..32].copy_from_slice(&crc.to_le_bytes());
        }
        pool.flush_to_store_only()?;
        let specs = crate::catalog::encode_spec_file(self.db.index().specs());
        write_atomic(&self.dir.join(SPECS_FILE), &specs)?;
        let objects = encode_objects(epoch, &self.db.store().to_bytes());
        write_atomic(&self.dir.join(OBJECTS_FILE), &objects)?;
        Ok(())
    }

    /// Test hook: run the pre-commit persistence step (meta page, specs,
    /// objects snapshot) *without* the WAL commit, simulating a crash in
    /// the window where the object snapshot is one epoch ahead of the
    /// committed index.
    #[doc(hidden)]
    pub fn persist_logical_state_for_tests(&mut self) -> Result<()> {
        self.persist_logical_state()
    }

    /// Make everything since the last commit durable (subject to the
    /// group-commit fsync policy; see [`DiskDatabase::sync`] to force the
    /// fsync). Triggers a checkpoint every `checkpoint_every` commits —
    /// inline, or handed to the background thread when
    /// [`DiskDatabase::enable_background_checkpoints`] is on.
    pub fn commit(&mut self) -> Result<()> {
        self.persist_logical_state()?;
        self.db.index().tree().pool().store_lock().commit()?;
        telemetry::counter("uindex.disk.commits").inc();
        if let Some(bg) = &mut self.bg {
            // Credit checkpoints the thread finished since we last looked.
            let done = bg.completed.load(Ordering::Acquire);
            if done != bg.seen {
                bg.seen = done;
                self.commits_since_checkpoint = 0;
            }
        }
        self.commits_since_checkpoint += 1;
        if self.options.checkpoint_every > 0
            && self.commits_since_checkpoint >= self.options.checkpoint_every
        {
            match &self.bg {
                // Inline fallback: if the background thread is starved or
                // failing, the log must not grow without bound — after 4
                // missed intervals the commit path checkpoints itself.
                Some(_)
                    if self.commits_since_checkpoint
                        < self.options.checkpoint_every.saturating_mul(4) =>
                {
                    let bg = self.bg.as_ref().unwrap();
                    let _ = bg.tx.send(BgMsg::Tick);
                }
                _ => self.force_checkpoint()?,
            }
        }
        Ok(())
    }

    /// Move periodic checkpoints off the commit path onto a dedicated
    /// thread. Commits signal the thread at checkpoint intervals; it
    /// checkpoints through the shared store mutex, and only at commit
    /// boundaries — a mutation mid-flight makes it skip and retry at the
    /// next signal. Explicit [`DiskDatabase::checkpoint`]/
    /// [`DiskDatabase::close`] still checkpoint inline (the store mutex
    /// and the WAL's idempotent checkpoint make the overlap safe), and
    /// the commit path falls back to an inline checkpoint if the thread
    /// falls 4 intervals behind. Off by default; a no-op if already on.
    pub fn enable_background_checkpoints(&mut self) {
        if self.bg.is_some() {
            return;
        }
        let pool = self.db.index().tree().pool_arc();
        let (tx, rx) = mpsc::channel();
        let completed = Arc::new(AtomicU64::new(0));
        let skipped = Arc::new(AtomicU64::new(0));
        let (done, missed) = (Arc::clone(&completed), Arc::clone(&skipped));
        let handle = std::thread::Builder::new()
            .name("uindex-bg-checkpoint".into())
            .spawn(move || {
                while let Ok(BgMsg::Tick) = rx.recv() {
                    // Collapse a backlog of ticks into one checkpoint.
                    loop {
                        match rx.try_recv() {
                            Ok(BgMsg::Tick) => {}
                            Ok(BgMsg::Shutdown) => return,
                            Err(_) => break,
                        }
                    }
                    match pool.store_lock().checkpoint_if_quiescent() {
                        Ok(true) => {
                            done.fetch_add(1, Ordering::Release);
                        }
                        // Mid-mutation or I/O error: leave the log as is;
                        // the writer retries at the next interval (or
                        // inline once the fallback cap is hit, surfacing
                        // any persistent error on the commit path).
                        Ok(false) | Err(_) => {
                            missed.fetch_add(1, Ordering::Release);
                        }
                    }
                }
            })
            .expect("spawn background checkpoint thread");
        self.bg = Some(BgCheckpointer {
            tx,
            handle: Some(handle),
            completed,
            skipped,
            seen: 0,
        });
    }

    /// Whether background checkpointing is on.
    pub fn background_checkpoints_enabled(&self) -> bool {
        self.bg.is_some()
    }

    /// Checkpoints completed by the background thread so far (0 when
    /// disabled). Skipped signals are not counted.
    pub fn background_checkpoints_completed(&self) -> u64 {
        self.bg
            .as_ref()
            .map_or(0, |bg| bg.completed.load(Ordering::Acquire))
    }

    /// Background signals that did not result in a checkpoint (writer
    /// mid-mutation, or an I/O error left for the inline fallback).
    pub fn background_checkpoints_skipped(&self) -> u64 {
        self.bg
            .as_ref()
            .map_or(0, |bg| bg.skipped.load(Ordering::Acquire))
    }

    /// Force the WAL fsync for any commits still pending one under group
    /// commit.
    pub fn sync(&mut self) -> Result<()> {
        Ok(self.db.index().tree().pool().store_lock().sync_log()?)
    }

    /// Commit and checkpoint: apply the WAL overlay to the page file,
    /// fsync everything, truncate the log.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.persist_logical_state()?;
        self.force_checkpoint()
    }

    fn force_checkpoint(&mut self) -> Result<()> {
        self.db.index().tree().pool().store_lock().checkpoint()?;
        telemetry::counter("uindex.disk.checkpoints").inc();
        self.commits_since_checkpoint = 0;
        Ok(())
    }

    /// Checkpoint and consume the handle — the clean way to close.
    pub fn close(mut self) -> Result<()> {
        self.checkpoint()
    }

    /// Rebuild the index files in place from the object store (the disk
    /// tier's [`Database::repair`]): the current tree is discarded, every
    /// index is bulk-loaded from scratch, verified and checkpointed.
    /// Returns the number of entries loaded.
    pub fn repair(&mut self) -> Result<u64> {
        // Snapshot the objects (the only state worth keeping), then let
        // the rebuild path recreate everything else from it.
        let store = ObjectStore::from_bytes(&self.db.store().to_bytes())?;
        let report = OpenReport {
            recovery: None,
            scrub: ScrubReport::default(),
            tree_ok: false,
            rebuilt: false,
        };
        // The rebuild swaps in a brand-new pool: shut the old pool's
        // background thread down first and re-arm it on the new one after.
        let had_bg = self.bg.take().is_some();
        let (rebuilt, _) = Self::rebuild(
            &self.dir.clone(),
            self.options,
            store,
            self.object_epoch,
            report,
        )?;
        let n = rebuilt.db.index().tree().len();
        *self = rebuilt;
        if had_bg {
            self.enable_background_checkpoints();
        }
        telemetry::counter("uindex.degraded.repairs").inc();
        Ok(n)
    }

    // ----- accessors ------------------------------------------------------

    /// The directory this database lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The options the store was created with.
    pub fn options(&self) -> &DiskOptions {
        &self.options
    }

    /// The epoch stamped at the last commit.
    pub fn object_epoch(&self) -> u64 {
        self.object_epoch
    }

    /// A clonable handle onto the on-disk stack's fault-injection
    /// schedule — the live chaos channel for crash/degradation drills.
    /// Faults land below the checksum layer (above the file), so injected
    /// silent damage is detected exactly like real bit rot.
    pub fn fault_handle(&self) -> pagestore::FaultHandle {
        pdisk::fault_handle(&self.db.index().tree().pool().store_lock())
    }

    /// The inner database, by value (drops durability bookkeeping).
    pub fn into_database(self) -> Database<DiskStore> {
        self.db
    }
}

impl Database {
    /// Create a file-backed database in `dir` — see [`DiskDatabase`].
    pub fn create_on_disk(
        schema: Schema,
        dir: &Path,
        options: DiskOptions,
    ) -> Result<DiskDatabase> {
        DiskDatabase::create(schema, dir, options)
    }

    /// Open a file-backed database — see [`DiskDatabase::open`].
    pub fn open_on_disk(dir: &Path) -> Result<(DiskDatabase, OpenReport)> {
        DiskDatabase::open(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_meta_roundtrip() {
        for options in [
            DiskOptions::default(),
            DiskOptions {
                page_size: 256,
                pool_pages: 32,
                config: BTreeConfig::with_max_entries(10).without_compression(),
                group_commit: 1,
                checkpoint_every: 0,
            },
        ] {
            let enc = encode_db_meta(&options);
            assert_eq!(decode_db_meta(&enc).unwrap(), options);
        }
    }

    #[test]
    fn db_meta_rejects_damage() {
        let mut enc = encode_db_meta(&DiskOptions::default());
        assert!(decode_db_meta(&enc[..10]).is_err(), "truncation");
        enc[9] ^= 0xFF;
        assert!(decode_db_meta(&enc).is_err(), "CRC catches a flipped byte");
    }

    #[test]
    fn objects_file_roundtrip_and_damage() {
        let enc = encode_objects(7, b"payload");
        let (epoch, payload) = decode_objects(&enc).unwrap();
        assert_eq!(epoch, 7);
        assert_eq!(payload, b"payload");
        let mut bad = enc.clone();
        bad[25] ^= 1;
        assert!(decode_objects(&bad).is_err());
        assert!(decode_objects(&enc[..20]).is_err());
    }
}
