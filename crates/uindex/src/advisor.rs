//! Index configuration advisor.
//!
//! Bertino's index-configuration problem (reference \[2\] in the paper)
//! asks how to split a path into sub-paths, each carried by its own nested or path
//! index. §3.3 argues the U-index makes the whole question moot: *"with
//! the encoding scheme presented above and the range-queries algorithm
//! presented below such splitting is not necessary, and therefore both the
//! retrieval code and the designer's task are much simpler."*
//!
//! [`advise`] operationalizes that: give it the query templates of a
//! workload and it returns the **minimal set of U-index definitions** that
//! answers all of them — one (possibly multi-path) index per indexed
//! attribute, with paths sharing their common suffix merged (§3.3
//! "Multiple Paths"), instead of one structure per (path, class-hierarchy)
//! combination as the classical schemes need.

use schema::{ClassId, Schema};

use crate::error::{Error, Result};
use crate::spec::IndexSpec;

/// One query template of the workload.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// The class whose objects the query retrieves.
    pub target: ClassId,
    /// Reference-attribute chain from `target` down to the class owning the
    /// valued attribute (empty for a plain class-hierarchy query).
    pub chain: Vec<String>,
    /// The attribute the query's predicate tests.
    pub attr: String,
    /// Whether the query restricts sub-classes along the path (needs a
    /// combined index rather than an exact-class path index).
    pub uses_subclasses: bool,
    /// Relative frequency (used only for reporting).
    pub frequency: f64,
}

impl WorkloadQuery {
    /// A class-hierarchy query template.
    pub fn hierarchy(target: ClassId, attr: &str) -> Self {
        WorkloadQuery {
            target,
            chain: Vec::new(),
            attr: attr.to_string(),
            uses_subclasses: true,
            frequency: 1.0,
        }
    }

    /// A path query template.
    pub fn path(target: ClassId, chain: &[&str], attr: &str) -> Self {
        WorkloadQuery {
            target,
            chain: chain.iter().map(|s| s.to_string()).collect(),
            attr: attr.to_string(),
            uses_subclasses: true,
            frequency: 1.0,
        }
    }
}

/// One recommendation: the index to build and the queries it serves.
#[derive(Debug)]
pub struct Recommendation {
    /// The (merged) index definition.
    pub spec: IndexSpec,
    /// Indexes into the workload slice this spec answers.
    pub serves: Vec<usize>,
    /// Summed frequency of the served queries.
    pub coverage: f64,
}

/// Recommend the minimal U-index set for a workload: queries over the same
/// indexed attribute collapse into one multi-path index regardless of how
/// many distinct paths reach it.
pub fn advise(schema: &Schema, workload: &[WorkloadQuery]) -> Result<Vec<Recommendation>> {
    let mut recs: Vec<Recommendation> = Vec::new();
    for (i, q) in workload.iter().enumerate() {
        let refs: Vec<&str> = q.chain.iter().map(|s| s.as_str()).collect();
        let builder = if refs.is_empty() {
            IndexSpec::class_hierarchy(&format!("auto-{i}"), q.target, &q.attr)
        } else {
            IndexSpec::path(&format!("auto-{i}"), q.target, &refs, &q.attr)
        };
        let builder = if q.uses_subclasses {
            builder
        } else {
            builder.exact_classes()
        };
        let spec = builder.build(schema)?;
        // Merge into an existing recommendation on the same attribute.
        let mut merged = false;
        for rec in &mut recs {
            if rec.spec.attr == spec.attr && rec.spec.include_subclasses == spec.include_subclasses
            {
                rec.spec = rec.spec.clone().merge(&spec)?;
                rec.serves.push(i);
                rec.coverage += q.frequency;
                merged = true;
                break;
            }
        }
        if !merged {
            recs.push(Recommendation {
                spec,
                serves: vec![i],
                coverage: q.frequency,
            });
        }
    }
    // Give merged specs stable descriptive names.
    for rec in &mut recs {
        let attr_name = schema.attr_name(rec.spec.attr.0, rec.spec.attr.1);
        let owner = schema.class_name(rec.spec.attr.0);
        rec.spec.name = format!("u-{owner}-{attr_name}");
        if rec.spec.name.len() > 64 {
            rec.spec.name.truncate(64);
        }
    }
    // Sanity: names must be unique (same attr can appear once per
    // include_subclasses mode).
    for a in 0..recs.len() {
        for b in a + 1..recs.len() {
            if recs[a].spec.name == recs[b].spec.name {
                recs[b].spec.name.push_str("-exact");
            }
        }
    }
    if recs.iter().any(|r| r.spec.positions.is_empty()) {
        return Err(Error::BadSpec("advisor produced an empty spec".into()));
    }
    Ok(recs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::AttrType;

    fn schema() -> (Schema, ClassId, ClassId, ClassId, ClassId) {
        let mut s = Schema::new();
        let employee = s.add_class("Employee").unwrap();
        s.add_attr(employee, "Age", AttrType::Int).unwrap();
        let company = s.add_class("Company").unwrap();
        s.add_attr(company, "President", AttrType::Ref(employee))
            .unwrap();
        let division = s.add_class("Division").unwrap();
        s.add_attr(division, "Belong", AttrType::Ref(company))
            .unwrap();
        let vehicle = s.add_class("Vehicle").unwrap();
        s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
        s.add_attr(vehicle, "MadeBy", AttrType::Ref(company))
            .unwrap();
        (s, employee, company, division, vehicle)
    }

    #[test]
    fn shared_suffix_paths_merge_into_one_index() {
        let (s, _, _, division, vehicle) = schema();
        // The paper's §3.3 example: vehicles AND divisions of companies by
        // president's age — classical schemes need two path indexes, the
        // advisor yields ONE multi-path U-index.
        let workload = vec![
            WorkloadQuery::path(vehicle, &["MadeBy", "President"], "Age"),
            WorkloadQuery::path(division, &["Belong", "President"], "Age"),
        ];
        let recs = advise(&s, &workload).unwrap();
        assert_eq!(recs.len(), 1, "one index for both paths");
        assert_eq!(recs[0].serves, vec![0, 1]);
        // Positions: Employee, Company shared; Division and Vehicle branch.
        assert_eq!(recs[0].spec.positions.len(), 4);
    }

    #[test]
    fn distinct_attributes_stay_separate() {
        let (s, employee, _, _, vehicle) = schema();
        let workload = vec![
            WorkloadQuery::hierarchy(vehicle, "Color"),
            WorkloadQuery::path(vehicle, &["MadeBy", "President"], "Age"),
            WorkloadQuery::hierarchy(employee, "Age"),
        ];
        let recs = advise(&s, &workload).unwrap();
        // Color and Age-of-Employee... note queries 2 and 3 both index
        // Employee.Age: the hierarchy query is the path index's position 0,
        // so they merge.
        assert_eq!(recs.len(), 2);
        let names: Vec<&str> = recs.iter().map(|r| r.spec.name.as_str()).collect();
        assert!(names.contains(&"u-Vehicle-Color"));
        assert!(names.contains(&"u-Employee-Age"));
        let age_rec = recs
            .iter()
            .find(|r| r.spec.name == "u-Employee-Age")
            .unwrap();
        assert_eq!(age_rec.serves, vec![1, 2]);
    }

    #[test]
    fn recommendations_are_definable() {
        use crate::index::UIndex;
        use btree::BTreeConfig;
        use pagestore::{BufferPool, MemStore};
        use schema::Encoding;

        let (s, _, _, division, vehicle) = schema();
        let workload = vec![
            WorkloadQuery::hierarchy(vehicle, "Color"),
            WorkloadQuery::path(vehicle, &["MadeBy", "President"], "Age"),
            WorkloadQuery::path(division, &["Belong", "President"], "Age"),
        ];
        let recs = advise(&s, &workload).unwrap();
        let enc = Encoding::generate(&s).unwrap();
        let pool = BufferPool::new(MemStore::new(1024), 256);
        let mut index = UIndex::new(pool, BTreeConfig::default(), enc).unwrap();
        for rec in recs {
            index.define(&s, rec.spec).unwrap();
        }
        assert_eq!(index.specs().len(), 2);
    }
}
