//! UQL — a small textual query language over U-indexes.
//!
//! The paper writes queries in a translated form like
//! `(Color-Red, [C5A*, C5B], ?)` (§3.4). UQL is the human-facing
//! equivalent, resolved against an index's path positions by class name:
//!
//! ```text
//! color: Color = 'Red' and Vehicle in [Automobile*, Truck]
//! age:   Age between 40 and 60 and Company in [JapaneseAutoCompany*]
//!        and Vehicle.oid = 12 distinct Company forward
//! ```
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query    := index ':' [clause ('and' clause)*] [modifier*]
//! clause   := attr ( '=' lit | '>=' lit | '<=' lit
//!                  | 'between' lit 'and' lit
//!                  | 'in' '(' lit (',' lit)* ')' )
//!           | class 'is' classref
//!           | class 'in' '[' classref (',' classref)* ']'
//!           | class '.oid' ( '=' int | 'in' '(' int (',' int)* ')' )
//! classref := ClassName ['*']          -- '*' = the whole sub-tree
//! modifier := 'distinct' ClassName | 'forward'
//! lit      := integer | float | 'string' | true | false
//! ```
//!
//! Position references name the *position class* (or any class inside the
//! position's sub-tree, which then also restricts the class selector).

use objstore::{Oid, Value};
use pagestore::PageStore;
use schema::Schema;

use crate::error::{Error, Result};
use crate::index::{IndexId, UIndex};
use crate::query::{ClassSel, OidSel, Query, ValuePred};
use crate::spec::IndexSpec;

/// Parse a UQL string against the index registry.
pub fn parse<S: PageStore>(index: &UIndex<S>, schema: &Schema, input: &str) -> Result<Query> {
    parse_with_specs(index.specs(), schema, input)
}

/// Parse against a bare spec table — the [`crate::DatabaseReader`] path,
/// which carries cloned specs instead of the index itself.
pub fn parse_with_specs(specs: &[IndexSpec], schema: &Schema, input: &str) -> Result<Query> {
    Parser {
        tokens: tokenize(input)?,
        pos: 0,
        specs,
        schema,
    }
    .parse_query()
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Sym(char), // : ( ) [ ] , * = plus multi-char handled as idents
    Ge,
    Le,
}

fn tokenize(input: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            ':' | '(' | ')' | '[' | ']' | ',' | '*' | '=' => {
                out.push(Tok::Sym(c));
                chars.next();
            }
            '>' | '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push(if c == '>' { Tok::Ge } else { Tok::Le });
                } else {
                    return Err(Error::BadQuery(format!(
                        "unsupported operator {c:?}; use >= or <="
                    )));
                }
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some(ch) => s.push(ch),
                        None => return Err(Error::BadQuery("unterminated string literal".into())),
                    }
                }
                out.push(Tok::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() || d == '.' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if s.contains('.') {
                    out.push(Tok::Float(s.parse().map_err(|_| {
                        Error::BadQuery(format!("bad float literal {s:?}"))
                    })?));
                } else {
                    out.push(Tok::Int(s.parse().map_err(|_| {
                        Error::BadQuery(format!("bad integer literal {s:?}"))
                    })?));
                }
            }
            c if c.is_alphanumeric() || c == '_' || c == '.' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '.' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok::Ident(s));
            }
            other => {
                return Err(Error::BadQuery(format!("unexpected character {other:?}")));
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: Vec<Tok>,
    pos: usize,
    specs: &'a [IndexSpec],
    schema: &'a Schema,
}

impl<'a> Parser<'a> {
    fn index_by_name(&self, name: &str) -> Option<IndexId> {
        self.specs
            .iter()
            .position(|s| s.name == name)
            .map(|i| i as IndexId)
    }

    fn spec(&self, id: IndexId) -> Result<&'a IndexSpec> {
        self.specs.get(id as usize).ok_or(Error::UnknownIndex(id))
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| Error::BadQuery("unexpected end of query".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_sym(&mut self, c: char) -> Result<()> {
        match self.next()? {
            Tok::Sym(s) if s == c => Ok(()),
            t => Err(Error::BadQuery(format!("expected {c:?}, got {t:?}"))),
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            t => Err(Error::BadQuery(format!("expected a name, got {t:?}"))),
        }
    }

    fn literal(&mut self) -> Result<Value> {
        match self.next()? {
            Tok::Int(i) => Ok(Value::Int(i)),
            Tok::Float(f) => Ok(Value::Float(f)),
            Tok::Str(s) => Ok(Value::Str(s)),
            Tok::Ident(s) if s.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Tok::Ident(s) if s.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            t => Err(Error::BadQuery(format!("expected a literal, got {t:?}"))),
        }
    }

    fn parse_query(&mut self) -> Result<Query> {
        let index_name = self.ident()?;
        let id = self
            .index_by_name(&index_name)
            .ok_or_else(|| Error::BadQuery(format!("no index named {index_name:?}")))?;
        self.expect_sym(':')?;
        let spec = self.spec(id)?;
        let attr_name = self.schema.attr_name(spec.attr.0, spec.attr.1).to_string();
        let mut q = Query::on(id);
        let mut first = true;
        while self.peek().is_some() {
            if self.keyword("forward") {
                q = q.forward_scan();
                continue;
            }
            if self.keyword("distinct") {
                let name = self.ident()?;
                let pos = self.resolve_position(id, &name)?;
                q = q.distinct_through(pos);
                continue;
            }
            if !first && !self.keyword("and") {
                return Err(Error::BadQuery(format!(
                    "expected 'and', got {:?}",
                    self.peek()
                )));
            }
            first = false;
            let name = self.ident()?;
            if let Some(base) = name.strip_suffix(".oid") {
                let pos = self.resolve_position(id, base)?;
                q = q.oid_at(pos, self.parse_oid_sel()?);
            } else if name.eq_ignore_ascii_case(&attr_name) {
                let pred = self.parse_value_pred()?;
                self.check_value_kinds(id, &pred)?;
                q = q.value(pred);
            } else {
                let pos = self.resolve_position(id, &name)?;
                let sel = self.parse_class_sel()?;
                q = q.class_at(pos, sel);
            }
        }
        Ok(q)
    }

    fn resolve_position(&self, id: crate::IndexId, class_name: &str) -> Result<usize> {
        let class = self
            .schema
            .class_by_name(class_name)
            .ok_or_else(|| Error::BadQuery(format!("unknown class {class_name:?}")))?;
        let spec = self.spec(id)?;
        spec.positions
            .iter()
            .position(|p| {
                self.schema.is_subclass_of(class, p.class)
                    || self.schema.is_subclass_of(p.class, class)
            })
            .ok_or_else(|| {
                Error::BadQuery(format!(
                    "class {class_name:?} is not on index {:?}'s path",
                    spec.name
                ))
            })
    }

    /// Literal kinds must match the indexed attribute's declared type —
    /// otherwise the query would silently match nothing.
    fn check_value_kinds(&self, id: crate::IndexId, pred: &ValuePred) -> Result<()> {
        use schema::AttrType;
        let spec = self.spec(id)?;
        let ty = self.schema.attr_type(spec.attr.0, spec.attr.1);
        let ok = |v: &Value| -> bool {
            matches!(
                (ty, v),
                (AttrType::Int, Value::Int(_))
                    | (AttrType::Str, Value::Str(_))
                    | (AttrType::Float, Value::Float(_))
                    | (AttrType::Float, Value::Int(_))
                    | (AttrType::Bool, Value::Bool(_))
            )
        };
        let bad = |v: &Value| -> Result<()> {
            Err(Error::BadQuery(format!(
                "literal {v:?} does not match the indexed attribute's type {ty:?}"
            )))
        };
        match pred {
            ValuePred::Any => {}
            ValuePred::Eq(v) => {
                if !ok(v) {
                    return bad(v);
                }
            }
            ValuePred::In(vs) => {
                for v in vs {
                    if !ok(v) {
                        return bad(v);
                    }
                }
            }
            ValuePred::Range { lo, hi, .. } => {
                for v in lo.iter().chain(hi.iter()) {
                    if !ok(v) {
                        return bad(v);
                    }
                }
            }
        }
        Ok(())
    }

    fn parse_value_pred(&mut self) -> Result<ValuePred> {
        if self.keyword("between") {
            let lo = self.literal()?;
            if !self.keyword("and") {
                return Err(Error::BadQuery("expected 'and' in between".into()));
            }
            let hi = self.literal()?;
            return Ok(ValuePred::between(lo, hi));
        }
        if self.keyword("in") {
            self.expect_sym('(')?;
            let mut vals = vec![self.literal()?];
            while matches!(self.peek(), Some(Tok::Sym(','))) {
                self.pos += 1;
                vals.push(self.literal()?);
            }
            self.expect_sym(')')?;
            return Ok(ValuePred::In(vals));
        }
        match self.next()? {
            Tok::Sym('=') => Ok(ValuePred::eq(self.literal()?)),
            Tok::Ge => Ok(ValuePred::at_least(self.literal()?)),
            Tok::Le => Ok(ValuePred::at_most(self.literal()?)),
            t => Err(Error::BadQuery(format!(
                "expected a value operator, got {t:?}"
            ))),
        }
    }

    fn parse_class_sel(&mut self) -> Result<ClassSel> {
        if self.keyword("is") {
            return self.parse_classref();
        }
        if self.keyword("in") {
            self.expect_sym('[')?;
            let mut sels = vec![self.parse_classref()?];
            while matches!(self.peek(), Some(Tok::Sym(','))) {
                self.pos += 1;
                sels.push(self.parse_classref()?);
            }
            self.expect_sym(']')?;
            return Ok(ClassSel::AnyOf(sels));
        }
        Err(Error::BadQuery(format!(
            "expected 'is' or 'in [..]', got {:?}",
            self.peek()
        )))
    }

    fn parse_classref(&mut self) -> Result<ClassSel> {
        let name = self.ident()?;
        let class = self
            .schema
            .class_by_name(&name)
            .ok_or_else(|| Error::BadQuery(format!("unknown class {name:?}")))?;
        if matches!(self.peek(), Some(Tok::Sym('*'))) {
            self.pos += 1;
            Ok(ClassSel::SubTree(class))
        } else {
            Ok(ClassSel::Exact(class))
        }
    }

    fn parse_oid_sel(&mut self) -> Result<OidSel> {
        if self.keyword("in") {
            self.expect_sym('(')?;
            let mut oids = std::collections::BTreeSet::new();
            loop {
                match self.next()? {
                    Tok::Int(i) if i >= 0 => {
                        oids.insert(Oid(i as u32));
                    }
                    t => return Err(Error::BadQuery(format!("expected an oid, got {t:?}"))),
                }
                match self.peek() {
                    Some(Tok::Sym(',')) => {
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            self.expect_sym(')')?;
            return Ok(OidSel::In(oids));
        }
        self.expect_sym('=')?;
        match self.next()? {
            Tok::Int(i) if i >= 0 => Ok(OidSel::Is(Oid(i as u32))),
            t => Err(Error::BadQuery(format!("expected an oid, got {t:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::PosPred;
    use crate::spec::IndexSpec;
    use btree::BTreeConfig;
    use pagestore::{BufferPool, MemStore};
    use schema::{AttrType, Encoding};

    fn setup() -> (UIndex<MemStore>, Schema) {
        let mut s = Schema::new();
        let employee = s.add_class("Employee").unwrap();
        s.add_attr(employee, "Age", AttrType::Int).unwrap();
        let company = s.add_class("Company").unwrap();
        s.add_attr(company, "President", AttrType::Ref(employee))
            .unwrap();
        let jap = s.add_subclass("JapaneseAutoCompany", company).unwrap();
        let _ = jap;
        let vehicle = s.add_class("Vehicle").unwrap();
        s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
        s.add_attr(vehicle, "MadeBy", AttrType::Ref(company))
            .unwrap();
        s.add_subclass("Automobile", vehicle).unwrap();
        s.add_subclass("Truck", vehicle).unwrap();
        let enc = Encoding::generate(&s).unwrap();
        let pool = BufferPool::new(MemStore::new(1024), 256);
        let mut index = UIndex::new(pool, BTreeConfig::default(), enc).unwrap();
        index
            .define(
                &s,
                IndexSpec::class_hierarchy("color", vehicle, "Color")
                    .build(&s)
                    .unwrap(),
            )
            .unwrap();
        index
            .define(
                &s,
                IndexSpec::path("age", vehicle, &["MadeBy", "President"], "Age")
                    .build(&s)
                    .unwrap(),
            )
            .unwrap();
        (index, s)
    }

    #[test]
    fn parse_exact_match() {
        let (index, s) = setup();
        let q = parse(&index, &s, "color: Color = 'Red'").unwrap();
        assert_eq!(q.index, 0);
        assert_eq!(q.value, ValuePred::Eq(Value::Str("Red".into())));
        assert!(q.preds.is_empty());
    }

    #[test]
    fn parse_class_selectors() {
        let (index, s) = setup();
        let auto = s.class_by_name("Automobile").unwrap();
        let truck = s.class_by_name("Truck").unwrap();
        let q = parse(
            &index,
            &s,
            "color: Color = 'Red' and Vehicle in [Automobile*, Truck]",
        )
        .unwrap();
        assert_eq!(
            q.preds,
            vec![(
                0,
                PosPred {
                    class: ClassSel::AnyOf(vec![ClassSel::SubTree(auto), ClassSel::Exact(truck)]),
                    oid: OidSel::Any,
                }
            )]
        );
    }

    #[test]
    fn parse_path_query_with_modifiers() {
        let (index, s) = setup();
        let q = parse(
            &index,
            &s,
            "age: Age between 40 and 60 and Company in [JapaneseAutoCompany*] \
             and Vehicle.oid = 12 distinct Company forward",
        )
        .unwrap();
        assert_eq!(q.index, 1);
        assert_eq!(
            q.value,
            ValuePred::Range {
                lo: Some(Value::Int(40)),
                hi: Some(Value::Int(60)),
                hi_inclusive: true,
            }
        );
        // Positions: Employee 0, Company 1, Vehicle 2 (code order).
        assert_eq!(q.distinct_upto, Some(1));
        assert_eq!(q.algorithm, crate::ScanAlgorithm::Forward);
        let vehicle_pred = q.preds.iter().find(|(p, _)| *p == 2).unwrap();
        assert_eq!(vehicle_pred.1.oid, OidSel::Is(Oid(12)));
    }

    #[test]
    fn parse_in_and_comparisons() {
        let (index, s) = setup();
        let q = parse(&index, &s, "age: Age in (40, 50, 60)").unwrap();
        assert_eq!(
            q.value,
            ValuePred::In(vec![Value::Int(40), Value::Int(50), Value::Int(60)])
        );
        let q = parse(&index, &s, "age: Age >= 41").unwrap();
        assert!(matches!(
            q.value,
            ValuePred::Range {
                lo: Some(_),
                hi: None,
                ..
            }
        ));
        let q = parse(&index, &s, "age: Age <= 41").unwrap();
        assert!(matches!(
            q.value,
            ValuePred::Range {
                lo: None,
                hi: Some(_),
                ..
            }
        ));
        // A sub-class name resolves to its position.
        let q = parse(
            &index,
            &s,
            "age: JapaneseAutoCompany is JapaneseAutoCompany*",
        )
        .unwrap();
        assert_eq!(q.preds[0].0, 1);
    }

    #[test]
    fn parse_errors() {
        let (index, s) = setup();
        for bad in [
            "nope: Color = 'Red'",                           // unknown index
            "color: Colour = 'Red'",                         // unknown attr/class
            "color: Color = 'Red' Vehicle is Truck",         // missing and
            "color: Color > 'Red'",                          // bare > unsupported
            "color: Color = 'Red' and Employee is Employee", // class not on path
            "color: Color = ",                               // truncated
            "color: Color = 'unterminated",                  // bad string
            "age: Vehicle.oid = -3",                         // negative oid
            "color: Color = 9999",                           // literal/attr type mismatch
            "age: Age in (1, 'x')",                          // mixed-kind In list
            "age: Age between 1 and 'z'",                    // mixed-kind range
        ] {
            assert!(parse(&index, &s, bad).is_err(), "should fail: {bad}");
        }
    }
}
