//! The paper's §4.2 analytic cost model, made checkable.
//!
//! For retrieval the paper argues:
//!
//! * single-class / single-value access costs `O(log_k N)` — one descent;
//! * a range query over `r` distinct values and `m` distinct (dispersed)
//!   class groups costs at worst `O(r · m · log_k N)` — one descent per
//!   searched group — while clustering and the parallel algorithm make the
//!   average much lower.
//!
//! [`CostModel`] turns those formulas into concrete page bounds for a
//! translated query, given the observed tree shape. The bounds are *sound*:
//! `tests` (and `tests/cost_model.rs`) assert every measured query cost
//! falls inside them.

use pagestore::PageStore;

use crate::error::Result;
use crate::index::UIndex;
use crate::query::Query;
use crate::scan::ScanStats;

/// Tree-shape parameters of the cost model.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// B-tree height (`log_k N`).
    pub height: u64,
    /// Average entries per leaf (`k` at the leaf level).
    pub entries_per_leaf: f64,
    /// Total leaves.
    pub leaves: u64,
}

/// Page-read bounds for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostBounds {
    /// No query reads fewer distinct pages (a single descent, capped by the
    /// tree size).
    pub min: u64,
    /// No query reads more: one descent per searched (value × class) group
    /// plus the leaves the matches occupy, capped by the whole tree.
    pub max: u64,
}

impl CostBounds {
    /// Whether a measured run landed inside the bounds.
    pub fn contains(&self, stats: &ScanStats) -> bool {
        (self.min..=self.max).contains(&stats.pages_read)
    }
}

impl CostModel {
    /// Extract the model parameters from verified tree statistics.
    pub fn from_stats(stats: &btree::TreeStats) -> CostModel {
        CostModel {
            height: stats.height as u64,
            entries_per_leaf: stats.entries as f64 / stats.leaf_nodes.max(1) as f64,
            leaves: stats.leaf_nodes as u64,
        }
    }

    /// Total pages in the tree (the trivial cap on any query).
    pub fn total_pages(&self) -> u64 {
        // Interior nodes are at most leaves/2 + … ≤ leaves for any fanout
        // ≥ 2; height covers the root chain of a skinny tree.
        self.leaves * 2 + self.height
    }

    /// The §4.2 bounds for a query that searches `r` distinct values over
    /// `m` class groups and produces `matches` entries.
    ///
    /// `r` and `m` are the paper's parameters: for an exact-match value
    /// predicate `r = 1`; for an enumerated (`In`) predicate, its length;
    /// for a contiguous range, the number of distinct values that actually
    /// occur in it. `m` is the number of disjoint class-code ranges the
    /// query constrains (1 when unconstrained — the whole index region is
    /// one contiguous group).
    pub fn bounds(&self, r: u64, m: u64, matches: u64) -> CostBounds {
        let groups = r.max(1) * m.max(1);
        // Each searched group costs at most one root-to-leaf descent; the
        // matched entries occupy at most ceil(matches / epl) + groups
        // leaves (each group can straddle one extra leaf boundary).
        let match_leaves = (matches as f64 / self.entries_per_leaf).ceil() as u64 + groups;
        let max = (groups * self.height + match_leaves).min(self.total_pages());
        CostBounds { min: 1, max }
    }
}

/// The number of class groups (`m`) a query constrains, derived from the
/// translated matcher: the product over positions of the number of disjoint
/// class-code ranges.
pub fn class_groups<S: PageStore>(index: &UIndex<S>, q: &Query) -> Result<u64> {
    let matcher = index.matcher(q)?;
    let mut m = 1u64;
    for pos in &matcher.positions {
        m = m.saturating_mul(pos.class_ranges.len().max(1) as u64);
    }
    Ok(m)
}

/// The number of value ranges (`r` lower bound) in the translated query.
/// For contiguous ranges the true `r` is the distinct values occurring in
/// the range, which only the caller can know; this returns the number of
/// disjoint byte ranges (1 for `Eq`/`Range`, the list length for `In`).
pub fn value_groups<S: PageStore>(index: &UIndex<S>, q: &Query) -> Result<u64> {
    let matcher = index.matcher(q)?;
    Ok(matcher.value_ranges.len().max(1) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_shapes() {
        let model = CostModel {
            height: 3,
            entries_per_leaf: 50.0,
            leaves: 100,
        };
        // Exact match, one class, one hit: a descent plus a couple leaves.
        let b = model.bounds(1, 1, 1);
        assert_eq!(b.min, 1);
        assert!(b.max >= 3 && b.max <= 8, "{b:?}");
        // 3 values × 2 class groups: 6 descents max.
        let b = model.bounds(3, 2, 10);
        assert!(b.max >= 6 * 3);
        // Everything is capped by the tree size.
        let b = model.bounds(1000, 1000, 1_000_000);
        assert_eq!(b.max, model.total_pages());
    }
}
