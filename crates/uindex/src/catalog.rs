//! Schema catalog in the index itself (paper §4.1).
//!
//! > "by using the name-encoding scheme above, schema information can be
//! > stored in the same index and retrieved easily. For example, the
//! > relations SUP or REF may be stored in the index and that information
//! > is also clustered."
//!
//! We reserve the top index id ([`CATALOG_ID`]) and store one entry per
//! schema fact, keyed by the owning class's code — so all facts about a
//! class (and, thanks to the prefix property, about its whole sub-tree)
//! cluster, exactly as the paper promises. The facts are sufficient to
//! reconstruct the [`Schema`], the [`Encoding`], and every [`IndexSpec`],
//! which makes a [`crate::UIndex`] fully self-describing: a persisted page
//! file can be reopened without any side channel (see
//! [`crate::UIndex::save_catalog`] / [`crate::UIndex::open_with_catalog`]).
//!
//! Entry layout (ordinary B-tree entries; the value carries the payload):
//!
//! ```text
//! key   := [CATALOG_ID][tag u8][class code][0x00][seq u16]
//! value := fact payload
//! ```

use btree::BTree;
use pagestore::{PageId, PageStore};
use schema::{AttrId, AttrType, ClassCode, ClassId, Encoding, Schema};

use crate::error::{Error, Result};
use crate::index::UIndex;
use crate::spec::{IndexSpec, PathStep};

/// The reserved logical index holding catalog entries.
pub const CATALOG_ID: u16 = u16::MAX;

const TAG_CLASS: u8 = 1; // payload: name; key code = class code
const TAG_SUP: u8 = 2; // payload: parent class id (u32); clustered at child
const TAG_ATTR: u8 = 3; // payload: attr record; clustered at declaring class
const TAG_SPEC: u8 = 4; // payload: spec record; seq = index id

fn catalog_key(tag: u8, code: &[u8], seq: u16) -> Vec<u8> {
    let mut k = Vec::with_capacity(2 + 1 + code.len() + 3);
    k.extend_from_slice(&CATALOG_ID.to_be_bytes());
    k.push(tag);
    k.extend_from_slice(code);
    k.push(0x00);
    k.extend_from_slice(&seq.to_be_bytes());
    k
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u16).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> Result<String> {
    let bad = || Error::BadKey("corrupt catalog string".into());
    let n =
        u16::from_le_bytes(buf.get(*pos..*pos + 2).ok_or_else(bad)?.try_into().unwrap()) as usize;
    *pos += 2;
    let s = std::str::from_utf8(buf.get(*pos..*pos + n).ok_or_else(bad)?)
        .map_err(|_| bad())?
        .to_string();
    *pos += n;
    Ok(s)
}

fn encode_attr_type(ty: AttrType) -> [u8; 5] {
    let (tag, target) = match ty {
        AttrType::Int => (0u8, 0u32),
        AttrType::Str => (1, 0),
        AttrType::Float => (2, 0),
        AttrType::Bool => (3, 0),
        AttrType::Ref(c) => (4, c.0),
        AttrType::RefSet(c) => (5, c.0),
    };
    let mut out = [0u8; 5];
    out[0] = tag;
    out[1..5].copy_from_slice(&target.to_le_bytes());
    out
}

fn decode_attr_type(buf: &[u8]) -> Result<AttrType> {
    let bad = || Error::BadKey("corrupt catalog attr type".into());
    let target = ClassId(u32::from_le_bytes(
        buf.get(1..5).ok_or_else(bad)?.try_into().unwrap(),
    ));
    Ok(match buf.first().ok_or_else(bad)? {
        0 => AttrType::Int,
        1 => AttrType::Str,
        2 => AttrType::Float,
        3 => AttrType::Bool,
        4 => AttrType::Ref(target),
        5 => AttrType::RefSet(target),
        _ => return Err(bad()),
    })
}

impl<S: PageStore> UIndex<S> {
    /// Write (or rewrite) the schema catalog into the shared B-tree: one
    /// clustered entry per class, SUP edge, attribute, and index spec.
    /// Returns the number of catalog entries written.
    pub fn save_catalog(&mut self, schema: &Schema) -> Result<u64> {
        // Clear any previous catalog.
        let prefix = CATALOG_ID.to_be_bytes().to_vec();
        let old: Vec<Vec<u8>> = self
            .tree_mut()
            .prefix_scan(&prefix)?
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        for k in old {
            self.tree_mut().delete(&k)?;
        }
        let mut n = 0u64;
        let mut items: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for class in schema.class_ids() {
            let Some(code) = self.encoding().code(class) else {
                continue; // pending evolution class: not yet materialized
            };
            let code = code.as_bytes().to_vec();
            let mut name = Vec::new();
            put_str(&mut name, schema.class_name(class));
            name.extend_from_slice(&class.0.to_le_bytes());
            items.push((catalog_key(TAG_CLASS, &code, 0), name));
            for (i, &parent) in schema.parents(class).iter().enumerate() {
                items.push((
                    catalog_key(TAG_SUP, &code, i as u16),
                    parent.0.to_le_bytes().to_vec(),
                ));
            }
            for (attr, attr_name, ty) in schema.own_attrs(class) {
                let mut payload = Vec::new();
                put_str(&mut payload, attr_name);
                payload.extend_from_slice(&encode_attr_type(ty));
                items.push((catalog_key(TAG_ATTR, &code, attr.0 as u16), payload));
            }
        }
        for (id, spec) in self.specs().iter().enumerate() {
            items.push((catalog_key(TAG_SPEC, &[], id as u16), encode_spec(spec)));
        }
        for (k, v) in items {
            self.tree_mut().insert(&k, &v)?;
            n += 1;
        }
        Ok(n)
    }

    /// Reconstruct the schema, encoding, and index specs from a catalog
    /// previously written by [`UIndex::save_catalog`], and attach to the
    /// existing tree (`root`/`len` as persisted by the caller).
    pub fn open_with_catalog(
        pool: pagestore::BufferPool<S>,
        config: btree::BTreeConfig,
        root: PageId,
        len: u64,
    ) -> Result<(Self, Schema)> {
        let tree = BTree::open(pool, config, root, len);
        let prefix = CATALOG_ID.to_be_bytes().to_vec();
        let entries = tree.prefix_scan(&prefix)?;

        // Pass 1: classes in code order (parents precede children because
        // codes are prefix-ordered — but class *ids* must keep their
        // original numbering, so collect first).
        struct RawClass {
            id: u32,
            name: String,
            code: Vec<u8>,
            parents: Vec<u32>,
            attrs: Vec<(u16, String, Vec<u8>)>,
        }
        let mut classes: Vec<RawClass> = Vec::new();
        let mut specs_raw: Vec<(u16, Vec<u8>)> = Vec::new();
        let bad = || Error::BadKey("corrupt catalog entry".into());
        for (k, v) in &entries {
            let tag = *k.get(2).ok_or_else(bad)?;
            let rest = &k[3..];
            let code_end = rest.iter().position(|&b| b == 0).ok_or_else(bad)?;
            let code = rest[..code_end].to_vec();
            let seq = u16::from_be_bytes(
                rest.get(code_end + 1..code_end + 3)
                    .ok_or_else(bad)?
                    .try_into()
                    .unwrap(),
            );
            match tag {
                TAG_CLASS => {
                    let mut pos = 0;
                    let name = get_str(v, &mut pos)?;
                    let id = u32::from_le_bytes(
                        v.get(pos..pos + 4).ok_or_else(bad)?.try_into().unwrap(),
                    );
                    classes.push(RawClass {
                        id,
                        name,
                        code,
                        parents: Vec::new(),
                        attrs: Vec::new(),
                    });
                }
                TAG_SUP => {
                    let parent =
                        u32::from_le_bytes(v.get(..4).ok_or_else(bad)?.try_into().unwrap());
                    let class = classes
                        .iter_mut()
                        .find(|c| c.code == code)
                        .ok_or_else(bad)?;
                    class.parents.push(parent);
                }
                TAG_ATTR => {
                    let mut pos = 0;
                    let name = get_str(v, &mut pos)?;
                    let ty = v.get(pos..).ok_or_else(bad)?.to_vec();
                    let class = classes
                        .iter_mut()
                        .find(|c| c.code == code)
                        .ok_or_else(bad)?;
                    class.attrs.push((seq, name, ty));
                }
                TAG_SPEC => specs_raw.push((seq, v.clone())),
                _ => return Err(bad()),
            }
        }

        // Rebuild the schema with original class ids: add classes in id
        // order (ids were dense).
        classes.sort_by_key(|c| c.id);
        let mut schema = Schema::new();
        for (expect, c) in classes.iter().enumerate() {
            if c.id as usize != expect {
                return Err(Error::BadKey("catalog class ids not dense".into()));
            }
            let id = match c.parents.first() {
                None => schema.add_class(&c.name)?,
                Some(&p) => schema.add_subclass(&c.name, ClassId(p))?,
            };
            debug_assert_eq!(id.0, c.id);
        }
        // Secondary (multiple-inheritance) parents may have higher ids than
        // their children, so link them only after every class exists.
        for c in &classes {
            for &extra in c.parents.iter().skip(1) {
                schema.add_parent(ClassId(c.id), ClassId(extra))?;
            }
        }
        // Attributes after all classes exist (Ref targets may be later ids).
        for c in &classes {
            let mut attrs = c.attrs.clone();
            attrs.sort_by_key(|(seq, ..)| *seq);
            for (_, name, ty) in attrs {
                schema.add_attr(ClassId(c.id), &name, decode_attr_type(&ty)?)?;
            }
        }
        // Rebuild the encoding from the stored codes.
        let mut encoding = Encoding::default();
        for c in &classes {
            let code = ClassCode::from_bytes(&c.code)
                .ok_or_else(|| Error::BadKey("corrupt class code in catalog".into()))?;
            encoding.set_raw(ClassId(c.id), code);
        }
        // Rebuild the specs.
        specs_raw.sort_by_key(|(seq, _)| *seq);
        let mut specs = Vec::new();
        for (expect, (seq, v)) in specs_raw.iter().enumerate() {
            if *seq as usize != expect {
                return Err(Error::BadKey("catalog spec ids not dense".into()));
            }
            specs.push(decode_spec(v)?);
        }
        let index = UIndex::from_parts(tree, encoding, specs);
        Ok((index, schema))
    }
}

/// Serialize one index spec (shared by the in-tree catalog and
/// [`crate::Database::save`]).
pub(crate) fn encode_spec(spec: &IndexSpec) -> Vec<u8> {
    let mut payload = Vec::new();
    put_str(&mut payload, &spec.name);
    payload.extend_from_slice(&spec.attr.0 .0.to_le_bytes());
    payload.extend_from_slice(&spec.attr.1 .0.to_le_bytes());
    payload.push(u8::from(spec.include_subclasses));
    payload.extend_from_slice(&(spec.positions.len() as u16).to_le_bytes());
    for p in &spec.positions {
        payload.extend_from_slice(&p.class.0.to_le_bytes());
        match (p.parent, p.via) {
            (Some(parent), Some((decl, attr))) => {
                payload.push(1);
                payload.extend_from_slice(&(parent as u16).to_le_bytes());
                payload.extend_from_slice(&decl.0.to_le_bytes());
                payload.extend_from_slice(&attr.0.to_le_bytes());
            }
            _ => payload.push(0),
        }
    }
    payload
}

/// Inverse of [`encode_spec`].
pub(crate) fn decode_spec(v: &[u8]) -> Result<IndexSpec> {
    let bad = || Error::BadKey("corrupt spec record".into());
    let mut pos = 0;
    let name = get_str(v, &mut pos)?;
    let read_u32 = |pos: &mut usize| -> Result<u32> {
        let x = u32::from_le_bytes(v.get(*pos..*pos + 4).ok_or_else(bad)?.try_into().unwrap());
        *pos += 4;
        Ok(x)
    };
    let attr_class = ClassId(read_u32(&mut pos)?);
    let attr_id = AttrId(read_u32(&mut pos)?);
    let include_subclasses = *v.get(pos).ok_or_else(bad)? != 0;
    pos += 1;
    let n = u16::from_le_bytes(v.get(pos..pos + 2).ok_or_else(bad)?.try_into().unwrap()) as usize;
    pos += 2;
    let mut positions = Vec::with_capacity(n);
    for _ in 0..n {
        let class = ClassId(read_u32(&mut pos)?);
        let has_via = *v.get(pos).ok_or_else(bad)? != 0;
        pos += 1;
        let (parent, via) = if has_via {
            let parent =
                u16::from_le_bytes(v.get(pos..pos + 2).ok_or_else(bad)?.try_into().unwrap())
                    as usize;
            pos += 2;
            let decl = ClassId(read_u32(&mut pos)?);
            let attr = AttrId(read_u32(&mut pos)?);
            (Some(parent), Some((decl, attr)))
        } else {
            (None, None)
        };
        positions.push(PathStep { class, parent, via });
    }
    Ok(IndexSpec {
        name,
        attr: (attr_class, attr_id),
        positions,
        include_subclasses,
    })
}

/// Serialize a whole spec list as a standalone file image (`specs.bin`
/// in both the in-memory save layout and the disk tier, where it is the
/// rebuild path's source of index definitions when the in-tree catalog is
/// unreadable).
pub(crate) fn encode_spec_file(specs: &[IndexSpec]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"UIDXSPC1");
    out.extend_from_slice(&(specs.len() as u32).to_le_bytes());
    for spec in specs {
        let enc = encode_spec(spec);
        out.extend_from_slice(&(enc.len() as u32).to_le_bytes());
        out.extend_from_slice(&enc);
    }
    out
}

/// Inverse of [`encode_spec_file`], with typed errors for truncation and
/// a bad magic.
pub(crate) fn decode_spec_file(bytes: &[u8]) -> Result<Vec<IndexSpec>> {
    if bytes.get(..8) != Some(b"UIDXSPC1".as_slice()) {
        return Err(Error::BadKey("bad specs.bin magic".into()));
    }
    let bad = || Error::BadKey("truncated specs.bin".into());
    let n = u32::from_le_bytes(bytes.get(8..12).ok_or_else(bad)?.try_into().unwrap()) as usize;
    let mut pos = 12;
    let mut specs = Vec::with_capacity(n);
    for _ in 0..n {
        let len = u32::from_le_bytes(bytes.get(pos..pos + 4).ok_or_else(bad)?.try_into().unwrap())
            as usize;
        pos += 4;
        specs.push(decode_spec(bytes.get(pos..pos + len).ok_or_else(bad)?)?);
        pos += len;
    }
    Ok(specs)
}

/// Number of catalog entries currently stored (diagnostic).
pub fn catalog_entry_count<S: PageStore>(index: &mut UIndex<S>) -> Result<usize> {
    let prefix = CATALOG_ID.to_be_bytes().to_vec();
    Ok(index.tree_mut().prefix_scan(&prefix)?.len())
}
