//! EXPLAIN ANALYZE: translated-plan description plus executed trace.
//!
//! [`explain`] runs the query for real (ANALYZE semantics — there is no
//! plan-only mode, because translation is cheap and the interesting numbers
//! are the executed costs) and packages the plan the translator produced,
//! the legacy [`ScanStats`] counters, the registry-derived [`QueryTrace`]
//! and the per-phase span tree into an [`ExplainReport`] renderable as
//! aligned text or JSON. The output contract is documented in DESIGN.md §9.

use std::fmt::Write as _;

use crate::db::Database;
use crate::query::{OidSel, Query, ValuePred};
use crate::scan::{QueryTrace, ScanAlgorithm, ScanStats};
use crate::Result;

/// Plan row for one path position.
#[derive(Debug, Clone)]
pub struct PositionPlan {
    /// Name of the class anchoring the position.
    pub class: String,
    /// Number of allowed class-code ranges after translation.
    pub class_ranges: usize,
    /// Rendered OID selector (`any`, `=#n`, `in{k}`).
    pub oids: String,
    /// Whether an entry must include the position to match.
    pub required: bool,
}

/// Everything EXPLAIN ANALYZE reports for one query.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// Index name from the spec.
    pub index: String,
    /// Scan algorithm the query ran with.
    pub algorithm: &'static str,
    /// Rendered value predicate.
    pub value: String,
    /// Number of value byte ranges after translation.
    pub value_ranges: usize,
    /// `distinct_through` position, if the query deduplicates.
    pub distinct_upto: Option<usize>,
    /// Per-position plan rows.
    pub positions: Vec<PositionPlan>,
    /// Number of hits the execution produced.
    pub hits: usize,
    /// Legacy per-query counters (kept equal to `trace` by construction;
    /// asserted in `bench/tests/explain_table1.rs`).
    pub stats: ScanStats,
    /// Registry-derived executed trace, including the span tree.
    pub trace: QueryTrace,
    /// Whether the query was answered by the degraded object-store scan
    /// instead of the (quarantined) index. The trace counters are all
    /// zero in that case — no index pages were touched.
    pub degraded: bool,
}

pub(crate) fn algorithm_name(a: ScanAlgorithm) -> &'static str {
    match a {
        ScanAlgorithm::Parallel => "parallel",
        ScanAlgorithm::ParallelFlat => "parallel-flat",
        ScanAlgorithm::Forward => "forward",
    }
}

fn render_value_pred(v: &ValuePred) -> String {
    match v {
        ValuePred::Any => "any".to_string(),
        ValuePred::Eq(v) => format!("= {v:?}"),
        ValuePred::In(vs) => format!("in ({} values)", vs.len()),
        ValuePred::Range {
            lo,
            hi,
            hi_inclusive,
        } => {
            let lo = lo.as_ref().map_or("..".to_string(), |v| format!("{v:?}"));
            let hi = hi.as_ref().map_or("..".to_string(), |v| format!("{v:?}"));
            format!("[{lo}, {hi}{}", if *hi_inclusive { "]" } else { ")" })
        }
    }
}

fn render_oid_sel(o: &OidSel) -> String {
    match o {
        OidSel::Any => "any".to_string(),
        OidSel::Is(oid) => format!("=#{}", oid.0),
        OidSel::In(set) => format!("in{{{}}}", set.len()),
    }
}

/// Execute `q` on `db` and build the report.
pub(crate) fn explain<P: pagestore::PageStore>(
    db: &Database<P>,
    q: &Query,
) -> Result<ExplainReport> {
    let matcher = db.index().matcher(q)?;
    let spec = db.index().spec(q.index)?;
    let index_name = spec.name.clone();
    let mut positions = Vec::with_capacity(spec.positions.len());
    for (i, step) in spec.positions.iter().enumerate() {
        let pc = &matcher.positions[i];
        positions.push(PositionPlan {
            class: db.schema().class_name(step.class).to_string(),
            class_ranges: pc.class_ranges.len(),
            oids: render_oid_sel(&pc.oids),
            required: pc.required,
        });
    }
    let value = render_value_pred(&q.value);
    let value_ranges = matcher.value_ranges.len();
    let (hits, stats, trace, degraded) = db.query_traced_guarded(q)?;
    Ok(ExplainReport {
        index: index_name,
        algorithm: algorithm_name(q.algorithm),
        value,
        value_ranges,
        distinct_upto: q.distinct_upto,
        positions,
        hits: hits.len(),
        stats,
        trace,
        degraded,
    })
}

fn render_span(out: &mut String, span: &telemetry::SpanNode, indent: usize) {
    let _ = writeln!(
        out,
        "{:indent$}{} {:.3}ms",
        "",
        span.name,
        span.nanos as f64 / 1e6,
        indent = indent
    );
    for child in &span.children {
        render_span(out, child, indent + 2);
    }
}

impl ExplainReport {
    /// Human-readable report (the CLI's default rendering).
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "Plan");
        let _ = writeln!(s, "  index:     {} ({})", self.index, self.algorithm);
        let _ = writeln!(
            s,
            "  value:     {}  ({} range{})",
            self.value,
            self.value_ranges,
            if self.value_ranges == 1 { "" } else { "s" }
        );
        if let Some(pos) = self.distinct_upto {
            let _ = writeln!(s, "  distinct:  through position {pos}");
        }
        for (i, p) in self.positions.iter().enumerate() {
            let _ = writeln!(
                s,
                "  pos {i}:     {} ({} class range{}, oids {}{})",
                p.class,
                p.class_ranges,
                if p.class_ranges == 1 { "" } else { "s" },
                p.oids,
                if p.required { ", required" } else { "" }
            );
        }
        let t = &self.trace;
        let _ = writeln!(s, "Execution");
        if self.degraded {
            let _ = writeln!(
                s,
                "  degraded:         index quarantined; answered by object-store scan"
            );
        }
        let _ = writeln!(s, "  hits:             {}", self.hits);
        let _ = writeln!(
            s,
            "  entries:          {} examined, {} matched",
            t.entries_examined, t.matches
        );
        let _ = writeln!(
            s,
            "  pages:            {} read, {} visits ({} pool hits, {} misses)",
            t.pages_read, t.node_visits, t.pool_hits, t.pool_misses
        );
        let _ = writeln!(
            s,
            "  skips:            {} issued ({} partial keys expanded)",
            t.skips, t.partial_keys_expanded
        );
        let _ = writeln!(
            s,
            "  reseeks:          {} leaf, {} lca, {} full",
            t.reseeks_leaf, t.reseeks_lca, t.reseeks_full
        );
        let _ = writeln!(
            s,
            "  descents:         {} ({} nodes fetched)",
            t.descents, t.reseek_depth_total
        );
        if let Some(span) = &t.span {
            let _ = writeln!(s, "Spans");
            render_span(&mut s, span, 2);
        }
        s
    }

    /// JSON report: `{"plan": ..., "trace": ..., "spans": ...}`.
    pub fn to_json(&self) -> String {
        use telemetry::json::escape;
        let mut s = String::new();
        s.push_str("{\n  \"plan\": {");
        let _ = write!(
            s,
            "\"index\": \"{}\", \"algorithm\": \"{}\", \"value\": \"{}\", \
             \"value_ranges\": {}, ",
            escape(&self.index),
            self.algorithm,
            escape(&self.value),
            self.value_ranges
        );
        match self.distinct_upto {
            Some(p) => {
                let _ = write!(s, "\"distinct_upto\": {p}, ");
            }
            None => s.push_str("\"distinct_upto\": null, "),
        }
        s.push_str("\"positions\": [");
        for (i, p) in self.positions.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "{{\"class\": \"{}\", \"class_ranges\": {}, \"oids\": \"{}\", \
                 \"required\": {}}}",
                escape(&p.class),
                p.class_ranges,
                escape(&p.oids),
                p.required
            );
        }
        s.push_str("]},\n");
        let t = &self.trace;
        let _ = write!(
            s,
            "  \"trace\": {{\"hits\": {}, \"entries_examined\": {}, \"matches\": {}, \
             \"pages_read\": {}, \"node_visits\": {}, \"skips\": {}, \
             \"partial_keys_expanded\": {}, \"descents\": {}, \
             \"reseek_depth_total\": {}, \"reseeks_leaf\": {}, \"reseeks_lca\": {}, \
             \"reseeks_full\": {}, \"pool_hits\": {}, \"pool_misses\": {}, \
             \"degraded\": {degraded}}}",
            self.hits,
            t.entries_examined,
            t.matches,
            t.pages_read,
            t.node_visits,
            t.skips,
            t.partial_keys_expanded,
            t.descents,
            t.reseek_depth_total,
            t.reseeks_leaf,
            t.reseeks_lca,
            t.reseeks_full,
            t.pool_hits,
            t.pool_misses,
            degraded = self.degraded
        );
        match &t.span {
            Some(span) => {
                let _ = write!(s, ",\n  \"spans\": {}", span.to_json());
            }
            None => s.push_str(",\n  \"spans\": null"),
        }
        s.push_str("\n}");
        s
    }
}

#[cfg(test)]
mod tests {
    use objstore::Value;
    use schema::{AttrType, Schema};

    use crate::{ClassSel, Database, IndexSpec, Query, ValuePred};

    fn small_db() -> (Database, crate::IndexId, schema::ClassId) {
        let mut s = Schema::new();
        let vehicle = s.add_class("Vehicle").unwrap();
        s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
        let auto = s.add_subclass("Automobile", vehicle).unwrap();
        let mut db = Database::in_memory(s).unwrap();
        let idx = db
            .define_index(IndexSpec::class_hierarchy("color", vehicle, "Color"))
            .unwrap();
        for (class, color) in [(vehicle, "Red"), (auto, "Red"), (auto, "Blue")] {
            let o = db.create_object(class).unwrap();
            db.set_attr(o, "Color", Value::Str(color.into())).unwrap();
        }
        (db, idx, auto)
    }

    #[test]
    fn report_matches_direct_query() {
        let (db, idx, auto) = small_db();
        let q = Query::on(idx)
            .value(ValuePred::eq(Value::Str("Red".into())))
            .class_at(0, ClassSel::SubTree(auto));
        let report = db.explain_query(&q).unwrap();
        assert_eq!(report.hits, 1);
        assert_eq!(report.index, "color");
        assert_eq!(report.algorithm, "parallel");
        // Trace mirrors the legacy counters exactly.
        assert_eq!(report.trace.entries_examined, report.stats.entries_examined);
        assert_eq!(report.trace.pages_read, report.stats.pages_read);
        assert_eq!(report.trace.skips, report.stats.seeks);
        // And a re-run through the stats path reports the same costs.
        let (hits, stats) = db.query_with_stats(&q).unwrap();
        assert_eq!(hits.len(), report.hits);
        assert_eq!(stats, report.stats);
    }

    #[test]
    fn text_and_json_render() {
        let (db, idx, _) = small_db();
        let q = Query::on(idx).value(ValuePred::eq(Value::Str("Red".into())));
        let report = db.explain_query(&q).unwrap();
        let text = report.render_text();
        assert!(text.contains("Plan"), "text: {text}");
        assert!(text.contains("Execution"), "text: {text}");
        assert!(text.contains("Spans"), "span tree rendered: {text}");
        let parsed = telemetry::json::parse(&report.to_json()).expect("valid JSON");
        let plan = parsed.get("plan").expect("plan key");
        assert_eq!(plan.get("index").and_then(|v| v.as_str()), Some("color"));
        let trace = parsed.get("trace").expect("trace key");
        assert_eq!(
            trace.get("hits").and_then(|v| v.as_u64()),
            Some(report.hits as u64)
        );
        let spans = parsed.get("spans").expect("spans key");
        assert_eq!(spans.get("name").and_then(|v| v.as_str()), Some("query"));
    }

    #[test]
    fn explain_uql_strips_prefix() {
        let (db, _, _) = small_db();
        for input in [
            "color: Color = 'Red'",
            "explain analyze color: Color = 'Red'",
            "EXPLAIN ANALYZE color: Color = 'Red'",
            "  Explain   color: Color = 'Red'",
        ] {
            let report = db.explain_uql(input).unwrap();
            assert_eq!(report.hits, 2, "input {input:?}");
        }
    }
}
