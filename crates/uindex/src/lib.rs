//! The **U-index**: the paper's uniform indexing scheme for object-oriented
//! databases, on a single front-compressed B+-tree.
//!
//! One [`UIndex`] hosts any number of index definitions ([`IndexSpec`]) in
//! **one** B-tree (§4.1 of the paper): class-hierarchy indexes, path
//! (nested) indexes, combined class-hierarchy/path indexes, and multi-path
//! indexes sharing a prefix (§3.3 "Multiple Paths"). Entry keys are
//!
//! ```text
//! [index id][attr value][0x00][class code][0x00][oid] ( [class code][0x00][oid] )*
//! ```
//!
//! with positions in class-code order, so that:
//!
//! * all entries of a class *and its entire sub-tree* are one contiguous
//!   key range (clustering, §3);
//! * path entries for the same referenced objects cluster (e.g. all
//!   vehicles of one company are adjacent);
//! * front compression in the B-tree removes the repeated prefixes, making
//!   the single-value-entry representation cheap (§3.2).
//!
//! Retrieval offers the naive **forward scan** and the paper's **"parallel"
//! retrieval algorithm** (Algorithm 1): the query is translated into
//! constraints per key field, and on a mismatch the scan *skips* to the
//! next possible key by re-descending from the root — re-using every page
//! already touched in this query, which the buffer pool counts only once.
//!
//! # Example
//!
//! ```
//! use schema::{Schema, AttrType};
//! use objstore::Value;
//! use uindex::{Database, IndexSpec, Query, ClassSel, ValuePred};
//!
//! let mut s = Schema::new();
//! let vehicle = s.add_class("Vehicle").unwrap();
//! s.add_attr(vehicle, "Color", AttrType::Str).unwrap();
//! let auto = s.add_subclass("Automobile", vehicle).unwrap();
//!
//! let mut db = Database::in_memory(s).unwrap();
//! let idx = db.define_index(IndexSpec::class_hierarchy("color", vehicle, "Color")).unwrap();
//! let v = db.create_object(vehicle).unwrap();
//! db.set_attr(v, "Color", Value::Str("Red".into())).unwrap();
//! let a = db.create_object(auto).unwrap();
//! db.set_attr(a, "Color", Value::Str("Red".into())).unwrap();
//!
//! let q = Query::on(idx).value(ValuePred::eq(Value::Str("Red".into())));
//! let hits = db.query(&q).unwrap();
//! assert_eq!(hits.len(), 2);
//! // Restrict to the Automobile sub-tree only:
//! let q = q.class_at(0, ClassSel::SubTree(auto));
//! assert_eq!(db.query(&q).unwrap().len(), 1);
//! ```

pub mod advisor;
pub mod analysis;
pub mod catalog;
mod db;
pub mod disk;
mod error;
mod exec;
pub mod explain;
mod index;
mod key;
pub mod oracle;
mod query;
mod scan;
mod spec;
pub mod uql;

pub use catalog::{catalog_entry_count, CATALOG_ID};
pub use db::{CheckReport, Database, DbStore};
pub use disk::{DiskDatabase, DiskOptions, DiskStore, OpenReport};
pub use error::{Error, Result};
pub use exec::{parallel_query, DatabaseReader, DbSnapshot};
pub use explain::ExplainReport;
pub use index::{IndexId, UIndex};
pub use key::{EntryKey, PathElem};
pub use query::{distinct_oids_at, ClassSel, OidSel, PosPred, Query, QueryHit, ValuePred};
pub use scan::{QueryTrace, ScanAlgorithm, ScanStats};
pub use spec::{IndexSpec, PathStep, SpecBuilder};
