//! The query model (§3.4 "Translation of Queries").
//!
//! The paper's general query format is
//! `(attr-value, Class-code₁, Val₁, Class-code₂, Val₂, …)` where the value
//! may be a range expression, class codes may be regular expressions over
//! the encoding (exact class, whole sub-tree, or a union), and each `Valᵢ`
//! is null (unconstrained), an actual OID, a set of OIDs from a prior
//! select, or "?" (to be found). [`Query`] is that format; translation into
//! byte-range constraints per key field happens in [`crate::scan`].

use std::collections::BTreeSet;

use objstore::{Oid, Value};
use schema::ClassId;

use crate::index::IndexId;
use crate::key::EntryKey;
use crate::scan::ScanAlgorithm;

/// Predicate on the indexed attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum ValuePred {
    /// Any value.
    Any,
    /// Exactly this value.
    Eq(Value),
    /// Any of these values (the paper enumerates range values; `In` is the
    /// enumerated form).
    In(Vec<Value>),
    /// A range. `lo` is inclusive when present; `hi_inclusive` selects
    /// whether `hi` is included.
    Range {
        /// Inclusive lower bound.
        lo: Option<Value>,
        /// Upper bound.
        hi: Option<Value>,
        /// Whether `hi` itself matches.
        hi_inclusive: bool,
    },
}

impl ValuePred {
    /// Exact-match predicate.
    pub fn eq(v: Value) -> Self {
        ValuePred::Eq(v)
    }

    /// Inclusive range `[lo, hi]`.
    pub fn between(lo: Value, hi: Value) -> Self {
        ValuePred::Range {
            lo: Some(lo),
            hi: Some(hi),
            hi_inclusive: true,
        }
    }

    /// Open-ended range `>= lo`.
    pub fn at_least(lo: Value) -> Self {
        ValuePred::Range {
            lo: Some(lo),
            hi: None,
            hi_inclusive: false,
        }
    }

    /// Open-ended range `<= hi`.
    pub fn at_most(hi: Value) -> Self {
        ValuePred::Range {
            lo: None,
            hi: Some(hi),
            hi_inclusive: true,
        }
    }
}

/// Class selector at one path position — the paper's "regular expression"
/// over class codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassSel {
    /// Any class this position covers.
    Any,
    /// Exactly this class, no sub-classes.
    Exact(ClassId),
    /// This class and its whole sub-tree (`C5A*` in paper notation).
    SubTree(ClassId),
    /// Union of selectors (`[C5A*, C5B]`).
    AnyOf(Vec<ClassSel>),
}

impl ClassSel {
    /// Union of exact classes.
    pub fn any_of_exact(classes: &[ClassId]) -> Self {
        ClassSel::AnyOf(classes.iter().map(|&c| ClassSel::Exact(c)).collect())
    }

    /// Union of sub-trees.
    pub fn any_of_subtrees(classes: &[ClassId]) -> Self {
        ClassSel::AnyOf(classes.iter().map(|&c| ClassSel::SubTree(c)).collect())
    }

    /// Whether this selector constrains anything.
    pub fn is_any(&self) -> bool {
        matches!(self, ClassSel::Any)
    }
}

/// OID restriction at one path position: the paper's `Valᵢ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OidSel {
    /// Unconstrained (null or "?").
    Any,
    /// A single known object.
    Is(Oid),
    /// A set of objects, typically from a prior select (paper query 3:
    /// "companies with more than 50,000 employees" is selected first, then
    /// joined against the index).
    In(BTreeSet<Oid>),
}

impl OidSel {
    /// Whether this selector constrains anything.
    pub fn is_any(&self) -> bool {
        matches!(self, OidSel::Any)
    }
}

/// Combined predicate for one path position.
#[derive(Debug, Clone, PartialEq)]
pub struct PosPred {
    /// Class restriction.
    pub class: ClassSel,
    /// OID restriction.
    pub oid: OidSel,
}

impl Default for PosPred {
    fn default() -> Self {
        PosPred {
            class: ClassSel::Any,
            oid: OidSel::Any,
        }
    }
}

/// A query against one index of a [`crate::UIndex`].
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Target index.
    pub index: IndexId,
    /// Value predicate.
    pub value: ValuePred,
    /// Per-position predicates, indexed by spec position. Missing positions
    /// are unconstrained.
    pub preds: Vec<(usize, PosPred)>,
    /// Scan algorithm (the paper's Algorithm 1 by default).
    pub algorithm: ScanAlgorithm,
    /// If set, after each match skip directly past the matched combination
    /// at this position — deduplicating results projected at or below it
    /// (used by the paper's "find companies, not vehicles" queries).
    pub distinct_upto: Option<usize>,
}

impl Query {
    /// A query on `index` matching everything.
    pub fn on(index: IndexId) -> Self {
        Query {
            index,
            value: ValuePred::Any,
            preds: Vec::new(),
            algorithm: ScanAlgorithm::Parallel,
            distinct_upto: None,
        }
    }

    /// Set the value predicate.
    pub fn value(mut self, pred: ValuePred) -> Self {
        self.value = pred;
        self
    }

    fn pred_mut(&mut self, pos: usize) -> &mut PosPred {
        if let Some(i) = self.preds.iter().position(|(p, _)| *p == pos) {
            &mut self.preds[i].1
        } else {
            self.preds.push((pos, PosPred::default()));
            &mut self.preds.last_mut().expect("just pushed").1
        }
    }

    /// Constrain the class at path position `pos`.
    pub fn class_at(mut self, pos: usize, sel: ClassSel) -> Self {
        self.pred_mut(pos).class = sel;
        self
    }

    /// Constrain the OID at path position `pos`.
    pub fn oid_at(mut self, pos: usize, sel: OidSel) -> Self {
        self.pred_mut(pos).oid = sel;
        self
    }

    /// Use plain forward scanning instead of the parallel algorithm.
    pub fn forward_scan(mut self) -> Self {
        self.algorithm = ScanAlgorithm::Forward;
        self
    }

    /// Use the parallel algorithm with flat (full root-to-leaf) skip-seeks
    /// instead of hierarchical re-descent — the benchmark baseline for
    /// measuring what path retention saves.
    pub fn flat_parallel_scan(mut self) -> Self {
        self.algorithm = ScanAlgorithm::ParallelFlat;
        self
    }

    /// Deduplicate combinations through path position `pos` (skip the rest
    /// of each matched group).
    pub fn distinct_through(mut self, pos: usize) -> Self {
        self.distinct_upto = Some(pos);
        self
    }
}

/// One matched index entry.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryHit {
    /// The decoded entry.
    pub key: EntryKey,
    /// For each spec position, the index into `key.path` of the element
    /// occupying it (`None` when the entry's branch does not include the
    /// position).
    pub assignment: Vec<Option<usize>>,
}

impl QueryHit {
    /// The OID at spec position `pos`, if present in this entry.
    pub fn oid_at(&self, pos: usize) -> Option<Oid> {
        let idx = (*self.assignment.get(pos)?)?;
        Some(self.key.path[idx].oid)
    }

    /// The matched attribute value.
    pub fn value(&self) -> &Value {
        &self.key.value
    }
}

/// Collect the distinct OIDs occupying `pos` across hits.
pub fn distinct_oids_at(hits: &[QueryHit], pos: usize) -> BTreeSet<Oid> {
    hits.iter().filter_map(|h| h.oid_at(pos)).collect()
}
