//! Differential correctness oracle for the U-index.
//!
//! The scan machinery in [`crate::scan`] answers queries by translating
//! them into *byte-range* constraints over encoded keys and skip-seeking
//! through the shared B-tree. This module answers the same queries a
//! completely different way — by brute force over the object store, using
//! only *semantic* operations (schema sub-class tests, [`Value`]
//! comparisons, OID set membership) — so the two implementations share no
//! logic that could fail in the same direction.
//!
//! On top of the evaluator sits a seeded trial driver
//! ([`run_trials`]): each trial generates a random schema (1–3 class
//! hierarchies with REF chains between them), populates a [`Database`]
//! through its maintained mutation API (creates, attribute updates,
//! reference rewires, deletes), defines class-hierarchy / path / combined
//! indexes at random points, and then fires random queries, asserting for
//! every one of them that
//!
//! * the parallel (Algorithm 1) scan, the forward scan, and this oracle
//!   return **identical** hit lists (including position assignments);
//! * the parallel scan never reads more pages than the forward scan;
//! * the tree passes [`crate::UIndex::verify`] and its entry set equals a
//!   full recomputation from the store (checking the incremental
//!   maintenance diffs);
//! * `distinct_through` results equal the oracle-side deduplication of the
//!   unrestricted hit list.
//!
//! Every divergence panics with the trial seed, so a failure reproduces
//! with `run_trials(seed, 1)`.

use objstore::{ObjectStore, Oid, Value};
use pagestore::PageStore;
use schema::{AttrType, ClassId, Encoding, Schema};

use crate::db::Database;
use crate::error::Result;
use crate::index::{IndexId, Planner, UIndex};
use crate::key::EntryKey;
use crate::query::{ClassSel, OidSel, PosPred, Query, QueryHit, ValuePred};
use crate::scan::{ScanAlgorithm, ScanStats};
use crate::spec::IndexSpec;

// ----- deterministic PRNG ------------------------------------------------

/// SplitMix64: tiny, seedable, and good enough for test-case generation.
/// Kept local so the library does not grow a dependency for its oracle.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Seeded generator; distinct seeds give unrelated streams.
    pub fn new(seed: u64) -> Self {
        Rng64 {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

// ----- semantic predicate evaluation -------------------------------------

fn value_matches(pred: &ValuePred, v: &Value) -> bool {
    use std::cmp::Ordering::*;
    match pred {
        ValuePred::Any => true,
        ValuePred::Eq(w) => v.cmp_ordered(w) == Equal,
        ValuePred::In(ws) => ws.iter().any(|w| v.cmp_ordered(w) == Equal),
        ValuePred::Range {
            lo,
            hi,
            hi_inclusive,
        } => {
            let above_lo = lo.as_ref().is_none_or(|l| v.cmp_ordered(l) != Less);
            let below_hi = hi.as_ref().is_none_or(|h| {
                let ord = v.cmp_ordered(h);
                ord == Less || (*hi_inclusive && ord == Equal)
            });
            above_lo && below_hi
        }
    }
}

fn class_sel_matches(schema: &Schema, sel: &ClassSel, class: ClassId) -> bool {
    match sel {
        ClassSel::Any => true,
        ClassSel::Exact(c) => class == *c,
        ClassSel::SubTree(c) => schema.is_subclass_of(class, *c),
        ClassSel::AnyOf(sels) => sels.iter().any(|s| class_sel_matches(schema, s, class)),
    }
}

fn oid_sel_matches(sel: &OidSel, oid: Oid) -> bool {
    match sel {
        OidSel::Any => true,
        OidSel::Is(o) => oid == *o,
        OidSel::In(set) => set.contains(&oid),
    }
}

fn in_scope(schema: &Schema, spec: &IndexSpec, pos: usize, class: ClassId) -> bool {
    let pc = spec.positions[pos].class;
    if spec.include_subclasses {
        schema.is_subclass_of(class, pc)
    } else {
        class == pc
    }
}

fn pred_at(q: &Query, pos: usize) -> Option<&PosPred> {
    q.preds.iter().find(|(p, _)| *p == pos).map(|(_, p)| p)
}

fn pos_required(q: &Query, pos: usize) -> bool {
    pred_at(q, pos).is_some_and(|p| !p.class.is_any() || !p.oid.is_any())
}

/// Decide semantically whether `entry` satisfies `q`, returning the
/// per-position assignment on a match — the ground truth that
/// [`crate::scan`]'s byte-range matcher must agree with.
pub fn entry_matches(
    schema: &Schema,
    encoding: &Encoding,
    spec: &IndexSpec,
    q: &Query,
    entry: &EntryKey,
) -> Option<Vec<Option<usize>>> {
    if entry.index_id != q.index || !value_matches(&q.value, &entry.value) {
        return None;
    }
    let mut assignment = vec![None; spec.positions.len()];
    let mut next_pos = 0;
    for (ei, elem) in entry.path.iter().enumerate() {
        let class = encoding.class_by_code(&elem.code)?;
        // Spec validation guarantees pairwise-disjoint position scopes, so
        // an element belongs to at most one position.
        let owner = (0..spec.positions.len()).find(|&p| in_scope(schema, spec, p, class));
        let Some(pos) = owner else {
            return None; // element outside every position's scope
        };
        if pos < next_pos {
            return None; // out of order / duplicate position
        }
        // The entry jumps over positions next_pos..pos entirely; a query
        // constraining any of them cannot be satisfied by this entry.
        if (next_pos..pos).any(|p| pos_required(q, p)) {
            return None;
        }
        if let Some(pred) = pred_at(q, pos) {
            if !class_sel_matches(schema, &pred.class, class)
                || !oid_sel_matches(&pred.oid, elem.oid)
            {
                return None;
            }
        }
        assignment[pos] = Some(ei);
        next_pos = pos + 1;
    }
    // Positions the entry stops short of: constrained ones fail.
    if (next_pos..spec.positions.len()).any(|p| pos_required(q, p)) {
        return None;
    }
    Some(assignment)
}

// ----- brute-force evaluation --------------------------------------------

/// All entry keys of index `id` recomputed from scratch, object by object,
/// from the current store state — using only a spec table and a class
/// encoding, never a [`UIndex`] or its B-tree. This is the form the
/// reader-side degraded path calls when the tree itself is unavailable.
pub fn all_entries_with(
    specs: &[IndexSpec],
    encoding: &Encoding,
    store: &ObjectStore,
    id: IndexId,
) -> Result<Vec<EntryKey>> {
    let planner = Planner { specs, encoding };
    let mut out = Vec::new();
    for oid in store.oids() {
        out.extend(planner.entries_for_anchor(store, id, oid)?);
    }
    out.sort_by_key(|e| e.encode().ok());
    out.dedup();
    Ok(out)
}

/// [`all_entries_with`] over an index's own spec table and encoding.
pub fn all_entries<S: PageStore>(
    index: &UIndex<S>,
    store: &ObjectStore,
    id: IndexId,
) -> Result<Vec<EntryKey>> {
    all_entries_with(index.specs(), index.encoding(), store, id)
}

/// Evaluate `q` by brute force against a spec table, class encoding and
/// object store: recompute the index's entries and filter them with
/// [`entry_matches`]. Hits come back in key order, exactly as the scans
/// produce them. Tree-free, like [`all_entries_with`].
pub fn eval_with(
    specs: &[IndexSpec],
    encoding: &Encoding,
    store: &ObjectStore,
    q: &Query,
) -> Result<Vec<QueryHit>> {
    let planner = Planner { specs, encoding };
    let spec = planner.spec(q.index)?;
    let schema = store.schema();
    let mut hits: Vec<(Vec<u8>, QueryHit)> = Vec::new();
    for entry in all_entries_with(specs, encoding, store, q.index)? {
        if let Some(assignment) = entry_matches(schema, encoding, spec, q, &entry) {
            let enc = entry.encode()?;
            hits.push((
                enc,
                QueryHit {
                    key: entry,
                    assignment,
                },
            ));
        }
    }
    hits.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(hits.into_iter().map(|(_, h)| h).collect())
}

/// [`eval_with`] over an index's own spec table and encoding.
pub fn eval<S: PageStore>(
    index: &UIndex<S>,
    store: &ObjectStore,
    q: &Query,
) -> Result<Vec<QueryHit>> {
    eval_with(index.specs(), index.encoding(), store, q)
}

/// Apply `distinct_through(pos)` semantics to an ordered hit list: after a
/// hit whose assignment covers `pos`, drop every following hit extending
/// the same (value, path-prefix-through-`pos`) combination.
pub fn distinct_filter(hits: &[QueryHit], pos: usize) -> Vec<QueryHit> {
    let mut out: Vec<QueryHit> = Vec::new();
    let mut bound: Option<Vec<u8>> = None;
    for h in hits {
        let enc = h.key.encode().expect("hit keys re-encode");
        if let Some(p) = &bound {
            if enc.starts_with(p) {
                continue;
            }
        }
        if let Some(ei) = h.assignment.get(pos).copied().flatten() {
            let prefix = EntryKey {
                index_id: h.key.index_id,
                value: h.key.value.clone(),
                path: h.key.path[..=ei].to_vec(),
            }
            .encode()
            .expect("prefix keys encode");
            bound = Some(prefix);
        }
        out.push(h.clone());
    }
    out
}

// ----- random trial generation -------------------------------------------

/// A generated database plus the metadata queries are drawn from.
pub struct TrialDb {
    /// The database under test.
    pub db: Database,
    /// Indexes defined in it.
    pub indexes: Vec<IndexId>,
    /// Classes grouped by hierarchy; hierarchy `i > 0` references `i - 1`.
    pub hierarchies: Vec<Vec<ClassId>>,
    /// The indexed attribute's type, per hierarchy.
    pub vtypes: Vec<AttrType>,
    /// Live objects.
    pub oids: Vec<Oid>,
}

fn rand_value(rng: &mut Rng64, ty: AttrType) -> Value {
    match ty {
        AttrType::Str => {
            let pool = ["", "a", "b", "bb", "c", "d"];
            Value::Str((*rng.pick(&pool)).to_string())
        }
        AttrType::Bool => Value::Bool(rng.chance(1, 2)),
        // Small domain so values collide and queries group entries.
        _ => Value::Int(rng.below(9) as i64 - 4),
    }
}

/// Generate one random schema + database, mutated exclusively through the
/// maintained [`Database`] API so incremental index upkeep is exercised.
pub fn gen_trial(seed: u64) -> Result<TrialDb> {
    let mut rng = Rng64::new(seed);
    let mut schema = Schema::new();
    let n_hier = 1 + rng.below(3) as usize;
    let mut hierarchies: Vec<Vec<ClassId>> = Vec::new();
    let mut vtypes = Vec::new();
    let mut multi_ref = vec![false; n_hier];
    for h in 0..n_hier {
        let root = schema.add_class(&format!("H{h}"))?;
        let mut classes = vec![root];
        for s in 0..rng.below(4) as usize {
            let parent = *rng.pick(&classes);
            classes.push(schema.add_subclass(&format!("H{h}S{s}"), parent)?);
        }
        let vt = match rng.below(10) {
            0..=5 => AttrType::Int,
            6..=8 => AttrType::Str,
            _ => AttrType::Bool,
        };
        schema.add_attr(root, "V", vt)?;
        vtypes.push(vt);
        if h > 0 {
            // Reference chain towards hierarchy 0 keeps the REF graph
            // acyclic, which the code encoding requires.
            let target = hierarchies[h - 1][0];
            multi_ref[h] = rng.chance(1, 5);
            let ty = if multi_ref[h] {
                AttrType::RefSet(target)
            } else {
                AttrType::Ref(target)
            };
            schema.add_attr(root, "R", ty)?;
        }
        hierarchies.push(classes);
    }

    let mut db = Database::in_memory(schema)?;

    // Index definitions, registered at random points of the mutation
    // stream so both bulk build and incremental maintenance run.
    let mut builders: Vec<crate::spec::SpecBuilder> = Vec::new();
    for (h, classes) in hierarchies.iter().enumerate() {
        builders.push(IndexSpec::class_hierarchy(
            &format!("ch{h}"),
            classes[0],
            "V",
        ));
    }
    if n_hier >= 2 {
        let refs: Vec<&str> = vec!["R"; n_hier - 1];
        let b = IndexSpec::path("path", hierarchies[n_hier - 1][0], &refs, "V");
        builders.push(if rng.chance(1, 3) {
            b.exact_classes()
        } else {
            b
        });
    }
    if n_hier == 3 {
        builders.push(IndexSpec::path("path_mid", hierarchies[1][0], &["R"], "V"));
    }
    builders.reverse(); // pop() takes them in declaration order
    let mut indexes = Vec::new();

    let mut oids: Vec<Oid> = Vec::new();
    let mut oids_by_hier: Vec<Vec<Oid>> = vec![Vec::new(); n_hier];
    let hier_of = |hierarchies: &[Vec<ClassId>], c: ClassId| {
        hierarchies
            .iter()
            .position(|cl| cl.contains(&c))
            .expect("class belongs to a hierarchy")
    };

    let n_ops = 20 + rng.below(40);
    for _ in 0..n_ops {
        match rng.below(10) {
            // Create an object, usually with a value and a reference.
            0..=4 => {
                let h = rng.below(n_hier as u64) as usize;
                let class = *rng.pick(&hierarchies[h]);
                let oid = db.create_object(class)?;
                oids.push(oid);
                oids_by_hier[h].push(oid);
                if rng.chance(5, 6) {
                    let v = rand_value(&mut rng, vtypes[h]);
                    db.set_attr(oid, "V", v)?;
                }
                if h > 0 && !oids_by_hier[h - 1].is_empty() && rng.chance(4, 5) {
                    let v = if multi_ref[h] {
                        let n = 1 + rng.below(3);
                        let ts = (0..n).map(|_| *rng.pick(&oids_by_hier[h - 1])).collect();
                        Value::RefSet(ts)
                    } else {
                        Value::Ref(*rng.pick(&oids_by_hier[h - 1]))
                    };
                    db.set_attr(oid, "R", v)?;
                }
            }
            // Overwrite a value (index entry migration).
            5 | 6 => {
                if let Some(&oid) = (!oids.is_empty()).then(|| rng.pick(&oids)) {
                    let h = hier_of(&hierarchies, db.store().class_of(oid)?);
                    let v = rand_value(&mut rng, vtypes[h]);
                    db.set_attr(oid, "V", v)?;
                }
            }
            // Rewire a reference (mid-path update, §3.5's hard case).
            7 => {
                if let Some(&oid) = (!oids.is_empty()).then(|| rng.pick(&oids)) {
                    let h = hier_of(&hierarchies, db.store().class_of(oid)?);
                    if h > 0 && !oids_by_hier[h - 1].is_empty() {
                        let v = if multi_ref[h] {
                            Value::RefSet(vec![*rng.pick(&oids_by_hier[h - 1])])
                        } else {
                            Value::Ref(*rng.pick(&oids_by_hier[h - 1]))
                        };
                        db.set_attr(oid, "R", v)?;
                    }
                }
            }
            // Delete (forced, so dangling references stay behind).
            8 => {
                if !oids.is_empty() {
                    let i = rng.below(oids.len() as u64) as usize;
                    let oid = oids.swap_remove(i);
                    db.delete_object(oid, true)?;
                    for v in &mut oids_by_hier {
                        v.retain(|&o| o != oid);
                    }
                }
            }
            // Define the next pending index over whatever data exists.
            _ => {
                if let Some(b) = builders.pop() {
                    indexes.push(db.define_index(b)?);
                }
            }
        }
    }
    while let Some(b) = builders.pop() {
        indexes.push(db.define_index(b)?);
    }

    Ok(TrialDb {
        db,
        indexes,
        hierarchies,
        vtypes,
        oids,
    })
}

/// Generate a random query against one of the trial's indexes. Some
/// queries are deliberately unsatisfiable (empty ranges, selectors outside
/// the index's scope) to exercise the `BadQuery` translation path.
pub fn gen_query(t: &TrialDb, rng: &mut Rng64) -> Query {
    let id = *rng.pick(&t.indexes);
    let spec = t.db.index().spec(id).expect("index defined");
    let anchor_hier = t
        .hierarchies
        .iter()
        .position(|cl| cl.contains(&spec.positions[0].class))
        .expect("anchor class in a hierarchy");
    let vt = t.vtypes[anchor_hier];

    let mut q = Query::on(id);
    q = q.value(match rng.below(8) {
        0 | 1 => ValuePred::Any,
        2..=4 => ValuePred::eq(rand_value(rng, vt)),
        5 => ValuePred::In((0..1 + rng.below(3)).map(|_| rand_value(rng, vt)).collect()),
        _ => {
            let a = rand_value(rng, vt);
            let b = rand_value(rng, vt);
            let (lo, hi) = if a.cmp_ordered(&b) == std::cmp::Ordering::Greater {
                (b, a)
            } else {
                (a, b)
            };
            ValuePred::Range {
                lo: (!rng.chance(1, 5)).then_some(lo),
                hi: (!rng.chance(1, 5)).then_some(hi),
                hi_inclusive: rng.chance(1, 2),
            }
        }
    });

    let all_classes: Vec<ClassId> = t.hierarchies.iter().flatten().copied().collect();
    for pos in 0..spec.positions.len() {
        let pos_hier = t
            .hierarchies
            .iter()
            .position(|cl| cl.contains(&spec.positions[pos].class))
            .expect("position class in a hierarchy");
        if rng.chance(2, 5) {
            // Mostly classes from the position's own hierarchy; sometimes a
            // foreign one, which must translate to BadQuery or no hits.
            let from = if rng.chance(5, 6) {
                &t.hierarchies[pos_hier]
            } else {
                &all_classes
            };
            let sel = match rng.below(4) {
                0 => ClassSel::Exact(*rng.pick(from)),
                1 => ClassSel::SubTree(*rng.pick(from)),
                2 => ClassSel::any_of_exact(&[*rng.pick(from), *rng.pick(from)]),
                _ => ClassSel::any_of_subtrees(&[*rng.pick(from)]),
            };
            q = q.class_at(pos, sel);
        }
        if rng.chance(1, 4) && !t.oids.is_empty() {
            let sel = if rng.chance(1, 2) {
                OidSel::Is(*rng.pick(&t.oids))
            } else {
                OidSel::In((0..1 + rng.below(3)).map(|_| *rng.pick(&t.oids)).collect())
            };
            q = q.oid_at(pos, sel);
        }
    }
    q
}

// ----- the driver --------------------------------------------------------

/// Counters from a [`run_trials`] sweep, for sanity-asserting coverage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrialSummary {
    /// Databases generated.
    pub trials: u64,
    /// Queries compared across all three evaluators.
    pub queries: u64,
    /// Total hits across all queries.
    pub hits: u64,
    /// Queries rejected by translation (`BadQuery`) — the oracle must
    /// agree they select nothing.
    pub bad_queries: u64,
    /// `distinct_through` cross-checks performed.
    pub distinct_checks: u64,
}

/// Cumulative telemetry registry values sampled around one query, so trial
/// runs can assert the registry moves in lockstep with the legacy counters.
struct RegistrySample {
    entries: u64,
    matches: u64,
    skips: u64,
    pages: u64,
    node_visits: u64,
    reseek_leaf: u64,
    reseek_lca: u64,
    reseek_full: u64,
    query_count: u64,
    hist_pages_count: u64,
    hist_pages_sum: u64,
    hist_entries_sum: u64,
}

impl RegistrySample {
    fn take() -> Self {
        let pages_h = telemetry::histogram("uindex.query.pages");
        let entries_h = telemetry::histogram("uindex.query.entries");
        RegistrySample {
            entries: telemetry::counter_value("uindex.scan.entries_examined"),
            matches: telemetry::counter_value("uindex.scan.matches"),
            skips: telemetry::counter_value("uindex.scan.skips"),
            pages: telemetry::counter_value("uindex.scan.pages"),
            node_visits: telemetry::counter_value("uindex.scan.node_visits"),
            reseek_leaf: telemetry::counter_value("btree.reseek.leaf"),
            reseek_lca: telemetry::counter_value("btree.reseek.lca"),
            reseek_full: telemetry::counter_value("btree.reseek.full"),
            query_count: telemetry::counter_value("uindex.query.count"),
            hist_pages_count: pages_h.count(),
            hist_pages_sum: pages_h.sum(),
            hist_entries_sum: entries_h.sum(),
        }
    }
}

/// The registry invariants every successful parallel trial query must obey:
/// counter deltas reproduce the legacy [`ScanStats`] exactly, the reseek
/// tiers decompose the skip count, and the per-query histograms advance by
/// exactly this query's totals.
fn check_registry_invariants(
    ps: &ScanStats,
    trace: &crate::scan::QueryTrace,
    reg0: &RegistrySample,
    reg1: &RegistrySample,
    tseed: u64,
    q: &Query,
) {
    let ctx = format!("(seed {tseed:#x}, query {q:?})");
    assert_eq!(
        reg1.entries - reg0.entries,
        ps.entries_examined,
        "registry entries_examined delta diverges from ScanStats {ctx}"
    );
    assert_eq!(
        reg1.matches - reg0.matches,
        ps.matches,
        "registry matches delta diverges from ScanStats {ctx}"
    );
    assert_eq!(
        reg1.skips - reg0.skips,
        ps.seeks,
        "registry skips delta diverges from ScanStats {ctx}"
    );
    assert_eq!(
        reg1.pages - reg0.pages,
        ps.pages_read,
        "registry pages delta diverges from ScanStats {ctx}"
    );
    assert_eq!(
        reg1.node_visits - reg0.node_visits,
        ps.node_visits,
        "registry node_visits delta diverges from ScanStats {ctx}"
    );
    assert_eq!(
        reg1.query_count - reg0.query_count,
        1,
        "exactly one query recorded {ctx}"
    );
    // Under the hierarchical (Parallel) algorithm every skip is resolved by
    // exactly one reseek, at exactly one tier.
    let reseeks = (reg1.reseek_leaf - reg0.reseek_leaf)
        + (reg1.reseek_lca - reg0.reseek_lca)
        + (reg1.reseek_full - reg0.reseek_full);
    assert!(
        reseeks <= ps.seeks,
        "more reseeks than skips ({reseeks} > {}) {ctx}",
        ps.seeks
    );
    assert_eq!(
        reseeks, ps.seeks,
        "reseek tiers must decompose the skip count {ctx}"
    );
    assert_eq!(
        trace.reseeks_leaf + trace.reseeks_lca + trace.reseeks_full,
        reseeks,
        "trace reseek tiers diverge from registry deltas {ctx}"
    );
    assert!(
        trace.partial_keys_expanded >= ps.seeks,
        "every skip expands at least one partial key {ctx}"
    );
    // Histogram totals stay identical to the legacy counters.
    assert_eq!(
        reg1.hist_pages_count - reg0.hist_pages_count,
        1,
        "pages histogram records one observation per query {ctx}"
    );
    assert_eq!(
        reg1.hist_pages_sum - reg0.hist_pages_sum,
        ps.pages_read,
        "pages histogram total diverges from ScanStats.pages_read {ctx}"
    );
    assert_eq!(
        reg1.hist_entries_sum - reg0.hist_entries_sum,
        ps.entries_examined,
        "entries histogram total diverges from ScanStats.entries_examined {ctx}"
    );
}

/// Run `trials` seeded random schema/database/query trials, panicking on
/// the first divergence between the parallel scan, the forward scan, and
/// the brute-force oracle. Failures print the per-trial seed.
pub fn run_trials(seed: u64, trials: usize) -> TrialSummary {
    let mut sum = TrialSummary::default();
    for tn in 0..trials {
        let tseed = seed ^ (tn as u64).wrapping_mul(0xA076_1D64_78BD_642F);
        let mut t = gen_trial(tseed)
            .unwrap_or_else(|e| panic!("trial generation failed (seed {tseed:#x}): {e}"));

        // Structural ground truth: the tree is well-formed and its entry
        // set equals a from-scratch recomputation per index.
        t.db.index_mut()
            .verify()
            .unwrap_or_else(|e| panic!("tree verify failed (seed {tseed:#x}): {e}"));
        let ids = t.indexes.clone();
        for &id in &ids {
            let want: Vec<Vec<u8>> = all_entries(t.db.index(), t.db.store(), id)
                .expect("oracle entry enumeration")
                .iter()
                .map(|e| e.encode().expect("entries encode"))
                .collect();
            let prefix = EntryKey::index_prefix(id);
            let next_prefix = EntryKey::index_prefix(id + 1);
            let got: Vec<Vec<u8>> =
                t.db.index_mut()
                    .tree_mut()
                    .scan_all()
                    .expect("tree scan")
                    .into_iter()
                    .map(|(k, _)| k)
                    .filter(|k| {
                        k.as_slice() >= prefix.as_slice() && k.as_slice() < next_prefix.as_slice()
                    })
                    .collect();
            assert_eq!(
                got, want,
                "index {id}: maintained tree entries diverge from full \
                 recomputation (seed {tseed:#x})"
            );
        }

        let mut rng = Rng64::new(tseed ^ 0x5851_F42D_4C95_7F2D);
        for _ in 0..4 + rng.below(5) {
            let q = gen_query(&t, &mut rng);
            let mut fq = q.clone();
            fq.algorithm = ScanAlgorithm::Forward;
            let mut xq = q.clone();
            xq.algorithm = ScanAlgorithm::ParallelFlat;
            let oracle = eval(t.db.index(), t.db.store(), &q)
                .unwrap_or_else(|e| panic!("oracle eval failed (seed {tseed:#x}): {e}"));
            // Cumulative registry state before the parallel run, so its
            // deltas can be checked against the legacy per-query counters.
            let reg0 = RegistrySample::take();
            let (par, ptrace) = match t.db.index_mut().query_traced(&q) {
                Ok((h, s, tr)) => (Ok((h, s)), Some(tr)),
                Err(e) => (Err(e), None),
            };
            let reg1 = RegistrySample::take();
            let flat = t.db.query_with_stats(&xq);
            let fwd = t.db.query_with_stats(&fq);
            sum.queries += 1;
            match (par, flat, fwd) {
                (Ok((ph, ps)), Ok((xh, xs)), Ok((fh, fs))) => {
                    check_registry_invariants(
                        &ps,
                        ptrace.as_ref().expect("trace accompanies Ok"),
                        &reg0,
                        &reg1,
                        tseed,
                        &q,
                    );
                    assert_eq!(
                        ph, oracle,
                        "parallel scan diverges from oracle (seed {tseed:#x}, query {q:?})"
                    );
                    assert_eq!(
                        xh, oracle,
                        "flat-parallel scan diverges from oracle (seed {tseed:#x}, query {q:?})"
                    );
                    assert_eq!(
                        fh, oracle,
                        "forward scan diverges from oracle (seed {tseed:#x}, query {q:?})"
                    );
                    assert!(
                        ps.pages_read <= fs.pages_read,
                        "parallel scan read more pages than forward \
                         ({} > {}) (seed {tseed:#x}, query {q:?})",
                        ps.pages_read,
                        fs.pages_read
                    );
                    assert!(
                        ps.node_visits <= fs.node_visits,
                        "parallel scan visited more nodes than forward \
                         ({} > {}) (seed {tseed:#x}, query {q:?})",
                        ps.node_visits,
                        fs.node_visits
                    );
                    assert!(
                        ps.node_visits <= xs.node_visits,
                        "hierarchical reseek visited more nodes than flat \
                         seeks ({} > {}) (seed {tseed:#x}, query {q:?})",
                        ps.node_visits,
                        xs.node_visits
                    );
                    // Hierarchical reseek only skips fetches of pages the
                    // query already touched, so the *distinct* page set is
                    // exactly the flat algorithm's.
                    assert_eq!(
                        ps.pages_read, xs.pages_read,
                        "hierarchical reseek changed the distinct page set \
                         vs flat seeks (seed {tseed:#x}, query {q:?})"
                    );
                    sum.hits += ph.len() as u64;
                    if rng.chance(1, 3) && !ph.is_empty() {
                        let npos = t.db.index().spec(q.index).expect("spec").positions.len();
                        let pos = rng.below(npos as u64) as usize;
                        let dq = q.clone().distinct_through(pos);
                        let (dh, _) =
                            t.db.query_with_stats(&dq)
                                .expect("distinct query on satisfiable base query");
                        assert_eq!(
                            dh,
                            distinct_filter(&ph, pos),
                            "distinct_through({pos}) diverges from oracle dedup \
                             (seed {tseed:#x}, query {q:?})"
                        );
                        sum.distinct_checks += 1;
                    }
                }
                (Err(_), Err(_), Err(_)) => {
                    assert!(
                        oracle.is_empty(),
                        "translation rejected a query the oracle satisfies \
                         (seed {tseed:#x}, query {q:?})"
                    );
                    sum.bad_queries += 1;
                }
                (p, x, f) => panic!(
                    "algorithms disagree on query validity (seed {tseed:#x}, \
                     query {q:?}): parallel {p:?} vs flat {x:?} vs forward {f:?}"
                ),
            }
        }
        // End-of-trial structural check: the query workload (including its
        // degraded/distinct variants) must leave the tree verifiable, so a
        // scan that corrupted state cannot hide behind matching results.
        t.db.index_mut()
            .verify()
            .unwrap_or_else(|e| panic!("post-trial tree verify failed (seed {tseed:#x}): {e}"));
        sum.trials += 1;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(Rng64::new(1).next_u64(), Rng64::new(2).next_u64());
    }

    #[test]
    fn value_pred_semantics() {
        let p = ValuePred::between(Value::Int(2), Value::Int(5));
        assert!(!value_matches(&p, &Value::Int(1)));
        assert!(value_matches(&p, &Value::Int(2)));
        assert!(value_matches(&p, &Value::Int(5)));
        let p = ValuePred::Range {
            lo: Some(Value::Int(2)),
            hi: Some(Value::Int(5)),
            hi_inclusive: false,
        };
        assert!(!value_matches(&p, &Value::Int(5)));
        assert!(value_matches(&ValuePred::Any, &Value::Bool(true)));
    }

    #[test]
    fn distinct_filter_drops_extensions() {
        // Two-position entries sharing (value, first element): only the
        // first survives a distinct through position 0.
        let mk = |o1: u32, o2: u32| QueryHit {
            key: EntryKey {
                index_id: 1,
                value: Value::Int(3),
                path: vec![
                    crate::key::PathElem {
                        code: vec![b'B', 1],
                        oid: Oid(o1),
                    },
                    crate::key::PathElem {
                        code: vec![b'C', 1],
                        oid: Oid(o2),
                    },
                ],
            },
            assignment: vec![Some(0), Some(1)],
        };
        let hits = vec![mk(1, 1), mk(1, 2), mk(2, 1)];
        let kept = distinct_filter(&hits, 0);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].key.path[0].oid, Oid(1));
        assert_eq!(kept[1].key.path[0].oid, Oid(2));
        // Distinct through the last position keeps everything.
        assert_eq!(distinct_filter(&hits, 1).len(), 3);
    }

    #[test]
    fn smoke_trials() {
        let sum = run_trials(0x0BAD_5EED, 4);
        assert_eq!(sum.trials, 4);
        assert!(sum.queries >= 16);
    }
}
