//! Shared vocabulary for the multi-set index structures.

use objstore::Oid;
use pagestore::Result;

/// A set (class) identifier — the paper's second experiment follows
/// Kilger & Moerkotte in calling classes "sets".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SetId(pub u16);

impl SetId {
    /// Big-endian byte encoding (order-preserving).
    pub fn to_bytes(self) -> [u8; 2] {
        self.0.to_be_bytes()
    }
}

/// Pages touched by one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCost {
    /// Distinct pages read (the experiments' metric).
    pub pages: u64,
    /// Total node visits including revisits.
    pub visits: u64,
    /// Tree descents that fetched at least one node (U-index only; the
    /// baselines report 0 — they have no skip-seek loop to attribute
    /// descents to).
    pub descents: u64,
}

/// The operations the experiment harness drives against every structure
/// (U-index and baselines alike): a multi-set index over opaque
/// order-preserving keys.
pub trait SetIndex {
    /// Insert an `(key, set, oid)` posting.
    fn insert(&mut self, key: &[u8], set: SetId, oid: Oid) -> Result<()>;

    /// Remove a posting; returns whether it existed.
    fn remove(&mut self, key: &[u8], set: SetId, oid: Oid) -> Result<bool>;

    /// All postings with exactly this key in any of `sets`
    /// (`sets` is sorted). Results are sorted by `(set, oid)`.
    fn exact(&mut self, key: &[u8], sets: &[SetId]) -> Result<(Vec<(SetId, Oid)>, QueryCost)>;

    /// All postings with `lo <= key < hi` in any of `sets`. Results are
    /// sorted by `(set, oid)`.
    fn range(
        &mut self,
        lo: &[u8],
        hi: &[u8],
        sets: &[SetId],
    ) -> Result<(Vec<(SetId, Oid)>, QueryCost)>;

    /// Live pages occupied by the structure (storage-cost comparisons).
    fn total_pages(&self) -> usize;

    /// Human-readable structure name for reports.
    fn name(&self) -> &'static str;
}

/// Serialize an OID list (shared by directory-style structures).
pub(crate) fn write_oids(buf: &mut Vec<u8>, oids: &[Oid]) {
    buf.extend_from_slice(&(oids.len() as u32).to_le_bytes());
    for o in oids {
        buf.extend_from_slice(&o.to_bytes());
    }
}

/// Deserialize an OID list written by [`write_oids`].
pub(crate) fn read_oids(buf: &[u8], pos: &mut usize) -> Option<Vec<Oid>> {
    let n = u32::from_le_bytes(buf.get(*pos..*pos + 4)?.try_into().ok()?) as usize;
    *pos += 4;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let b: [u8; 4] = buf.get(*pos..*pos + 4)?.try_into().ok()?;
        out.push(Oid::from_bytes(b));
        *pos += 4;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oid_list_roundtrip() {
        let oids: Vec<Oid> = (0..17u32).map(Oid).collect();
        let mut buf = Vec::new();
        write_oids(&mut buf, &oids);
        let mut pos = 0;
        assert_eq!(read_oids(&buf, &mut pos), Some(oids));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn setid_order() {
        assert!(SetId(1).to_bytes() < SetId(2).to_bytes());
        assert!(SetId(255).to_bytes() < SetId(256).to_bytes());
    }
}
