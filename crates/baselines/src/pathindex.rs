//! Kim & Bertino's nested index and path index (§2; [1] in the paper).
//!
//! Both index a value reachable over a reference chain. The **nested
//! index** associates only the *top-class* objects with each value; the
//! **path index** stores the whole instantiation, so queries on in-path
//! classes are answerable — but only by scanning the value's instantiation
//! lists ("such queries, however, may require the search of many index
//! pages").
//!
//! These are qualitative baselines (§4.4); the harness feeds them
//! pre-computed instantiations.

use btree::{BTree, BTreeConfig};
use objstore::Oid;
use pagestore::{BufferPool, MemStore, Result};

use crate::common::QueryCost;

/// Nested index: value → top-class OIDs.
pub struct NestedIndex {
    tree: BTree<MemStore>,
}

fn nested_key(value: &[u8], oid: Oid) -> Vec<u8> {
    let mut k = Vec::with_capacity(value.len() + 5);
    k.extend_from_slice(value);
    k.push(0x00);
    k.extend_from_slice(&oid.to_bytes());
    k
}

impl NestedIndex {
    /// Build from `(value bytes, top oid)` postings.
    pub fn build(page_size: usize, postings: &mut [(Vec<u8>, Oid)]) -> Result<Self> {
        postings.sort();
        let pool = BufferPool::new(MemStore::new(page_size), 1 << 16);
        let mut items: Vec<(Vec<u8>, Vec<u8>)> = postings
            .iter()
            .map(|(v, o)| (nested_key(v, *o), Vec::new()))
            .collect();
        items.dedup();
        Ok(NestedIndex {
            tree: BTree::bulk_load(pool, BTreeConfig::default(), items)?,
        })
    }

    /// Insert one posting.
    pub fn insert(&mut self, value: &[u8], oid: Oid) -> Result<()> {
        self.tree.insert(&nested_key(value, oid), &[])?;
        Ok(())
    }

    /// Remove one posting.
    pub fn remove(&mut self, value: &[u8], oid: Oid) -> Result<bool> {
        Ok(self.tree.delete(&nested_key(value, oid))?.is_some())
    }

    /// Top-class OIDs for an exact value.
    pub fn exact(&mut self, value: &[u8]) -> Result<(Vec<Oid>, QueryCost)> {
        self.tree.pool().begin_query();
        let mut lo = value.to_vec();
        lo.push(0x00);
        let mut hi = value.to_vec();
        hi.push(0x01);
        let oids = self
            .tree
            .range(&lo, &hi)?
            .into_iter()
            .map(|(k, _)| Oid::from_bytes(k[k.len() - 4..].try_into().expect("key")))
            .collect();
        let q = self.tree.pool().query_stats();
        Ok((
            oids,
            QueryCost {
                pages: q.distinct_pages,
                visits: q.node_visits,
                descents: 0,
            },
        ))
    }

    /// Live pages.
    pub fn total_pages(&self) -> usize {
        self.tree.pool().live_pages()
    }
}

/// Path index: value → full path instantiations (top-class object plus the
/// chain of referenced objects).
pub struct PathIndex {
    tree: BTree<MemStore>,
    path_len: usize,
}

fn path_key(value: &[u8], path: &[Oid]) -> Vec<u8> {
    let mut k = Vec::with_capacity(value.len() + 1 + path.len() * 4);
    k.extend_from_slice(value);
    k.push(0x00);
    for o in path {
        k.extend_from_slice(&o.to_bytes());
    }
    k
}

impl PathIndex {
    /// Build from `(value bytes, instantiation)` postings; every
    /// instantiation must have the same length.
    pub fn build(
        page_size: usize,
        path_len: usize,
        postings: &mut [(Vec<u8>, Vec<Oid>)],
    ) -> Result<Self> {
        postings.sort();
        let pool = BufferPool::new(MemStore::new(page_size), 1 << 16);
        let mut items: Vec<(Vec<u8>, Vec<u8>)> = postings
            .iter()
            .map(|(v, p)| {
                debug_assert_eq!(p.len(), path_len);
                (path_key(v, p), Vec::new())
            })
            .collect();
        items.dedup();
        Ok(PathIndex {
            tree: BTree::bulk_load(pool, BTreeConfig::default(), items)?,
            path_len,
        })
    }

    fn decode(&self, key: &[u8]) -> Vec<Oid> {
        let tail = &key[key.len() - self.path_len * 4..];
        tail.chunks(4)
            .map(|c| Oid::from_bytes(c.try_into().expect("chunk")))
            .collect()
    }

    /// All instantiations for an exact value.
    pub fn exact(&mut self, value: &[u8]) -> Result<(Vec<Vec<Oid>>, QueryCost)> {
        self.tree.pool().begin_query();
        let mut lo = value.to_vec();
        lo.push(0x00);
        let mut hi = value.to_vec();
        hi.push(0x01);
        let paths = self
            .tree
            .range(&lo, &hi)?
            .into_iter()
            .map(|(k, _)| self.decode(&k))
            .collect();
        let q = self.tree.pool().query_stats();
        Ok((
            paths,
            QueryCost {
                pages: q.distinct_pages,
                visits: q.node_visits,
                descents: 0,
            },
        ))
    }

    /// Instantiations for a value whose path position `pos` equals `oid` —
    /// requires scanning all of the value's instantiations (the structural
    /// weakness the U-index's clustering removes).
    pub fn exact_restricted(
        &mut self,
        value: &[u8],
        pos: usize,
        oid: Oid,
    ) -> Result<(Vec<Vec<Oid>>, QueryCost)> {
        let (paths, cost) = self.exact(value)?;
        Ok((
            paths
                .into_iter()
                .filter(|p| p.get(pos) == Some(&oid))
                .collect(),
            cost,
        ))
    }

    /// Live pages.
    pub fn total_pages(&self) -> usize {
        self.tree.pool().live_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_index_roundtrip() {
        let mut postings: Vec<(Vec<u8>, Oid)> = (0..500u32)
            .map(|i| (format!("v{:03}", i % 50).into_bytes(), Oid(i)))
            .collect();
        let mut n = NestedIndex::build(1024, &mut postings).unwrap();
        let (oids, cost) = n.exact(b"v007").unwrap();
        assert_eq!(oids.len(), 10);
        assert!(cost.pages >= 1);
        n.insert(b"v007", Oid(9999)).unwrap();
        assert_eq!(n.exact(b"v007").unwrap().0.len(), 11);
        assert!(n.remove(b"v007", Oid(9999)).unwrap());
        assert_eq!(n.exact(b"v007").unwrap().0.len(), 10);
    }

    #[test]
    fn path_index_restriction_scans() {
        let mut postings: Vec<(Vec<u8>, Vec<Oid>)> = (0..600u32)
            .map(|i| {
                (
                    format!("v{:02}", i % 10).into_bytes(),
                    vec![Oid(i), Oid(i % 7), Oid(i % 3)],
                )
            })
            .collect();
        let mut p = PathIndex::build(1024, 3, &mut postings).unwrap();
        let (paths, _) = p.exact(b"v03").unwrap();
        assert_eq!(paths.len(), 60);
        let (restricted, cost) = p.exact_restricted(b"v03", 2, Oid(0)).unwrap();
        assert!(!restricted.is_empty());
        assert!(restricted.iter().all(|path| path[2] == Oid(0)));
        // Restriction cost equals the full-value scan cost: the whole
        // instantiation list is read either way.
        let (_, full_cost) = p.exact(b"v03").unwrap();
        assert_eq!(cost.pages, full_cost.pages);
    }
}
