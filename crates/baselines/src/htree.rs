//! The H-tree of Low, Lu & Ooi: one B+-tree per class (set grouping).
//!
//! Retrieval over `k` sets fans out to `k` trees, so costs grow linearly in
//! the number of queried sets but never pay for unqueried ones — the polar
//! opposite of the CH-tree. The original's nested inter-tree pointers (which
//! let a super-class query enter sub-class trees mid-way) are simplified to
//! independent per-set trees; the paper uses H-trees qualitatively only
//! (§4.4) and this captures their cost profile: best for small set counts
//! and ranges, worst for exact-match over many sets.

use std::collections::BTreeMap;

use btree::{BTree, BTreeConfig};
use objstore::Oid;
use pagestore::{BufferPool, MemStore, Result};

use crate::common::{QueryCost, SetId, SetIndex};

/// The H-tree forest. See the module docs.
pub struct HTree {
    page_size: usize,
    pool_pages: usize,
    trees: BTreeMap<SetId, BTree<MemStore>>,
}

/// Per-tree keys are `key ++ oid` with empty values: all postings of one
/// key sit adjacent in that set's tree.
fn posting_key(key: &[u8], oid: Oid) -> Vec<u8> {
    let mut k = Vec::with_capacity(key.len() + 5);
    k.extend_from_slice(key);
    k.push(0x00);
    k.extend_from_slice(&oid.to_bytes());
    k
}

impl HTree {
    /// An empty H-tree with the given per-tree page geometry.
    pub fn new(page_size: usize, pool_pages: usize) -> Self {
        HTree {
            page_size,
            pool_pages,
            trees: BTreeMap::new(),
        }
    }

    /// Build from postings in one pass.
    pub fn build(
        page_size: usize,
        pool_pages: usize,
        postings: &mut [(Vec<u8>, SetId, Oid)],
    ) -> Result<Self> {
        postings.sort_by(|a, b| (a.1, &a.0, a.2).cmp(&(b.1, &b.0, b.2)));
        let mut out = HTree::new(page_size, pool_pages);
        let mut i = 0;
        while i < postings.len() {
            let set = postings[i].1;
            let mut items = Vec::new();
            while i < postings.len() && postings[i].1 == set {
                items.push((posting_key(&postings[i].0, postings[i].2), Vec::new()));
                i += 1;
            }
            let pool = BufferPool::new(MemStore::new(page_size), pool_pages);
            let tree = BTree::bulk_load(pool, BTreeConfig::default(), items)?;
            out.trees.insert(set, tree);
        }
        Ok(out)
    }

    fn tree_mut(&mut self, set: SetId) -> Result<&mut BTree<MemStore>> {
        if !self.trees.contains_key(&set) {
            let pool = BufferPool::new(MemStore::new(self.page_size), self.pool_pages);
            let tree = BTree::create(pool, BTreeConfig::default())?;
            self.trees.insert(set, tree);
        }
        Ok(self.trees.get_mut(&set).expect("just inserted"))
    }
}

impl SetIndex for HTree {
    fn insert(&mut self, key: &[u8], set: SetId, oid: Oid) -> Result<()> {
        let k = posting_key(key, oid);
        self.tree_mut(set)?.insert(&k, &[])?;
        Ok(())
    }

    fn remove(&mut self, key: &[u8], set: SetId, oid: Oid) -> Result<bool> {
        let k = posting_key(key, oid);
        match self.trees.get_mut(&set) {
            Some(t) => Ok(t.delete(&k)?.is_some()),
            None => Ok(false),
        }
    }

    fn exact(&mut self, key: &[u8], sets: &[SetId]) -> Result<(Vec<(SetId, Oid)>, QueryCost)> {
        let mut lo = key.to_vec();
        lo.push(0x00);
        let mut hi = key.to_vec();
        hi.push(0x01);
        self.range_inner(&lo, &hi, sets)
    }

    fn range(
        &mut self,
        lo: &[u8],
        hi: &[u8],
        sets: &[SetId],
    ) -> Result<(Vec<(SetId, Oid)>, QueryCost)> {
        let mut lo2 = lo.to_vec();
        lo2.push(0x00);
        let mut hi2 = hi.to_vec();
        hi2.push(0x00);
        self.range_inner(&lo2, &hi2, sets)
    }

    fn total_pages(&self) -> usize {
        self.trees.values().map(|t| t.pool().live_pages()).sum()
    }

    fn name(&self) -> &'static str {
        "H-tree"
    }
}

impl HTree {
    fn range_inner(
        &mut self,
        lo: &[u8],
        hi: &[u8],
        sets: &[SetId],
    ) -> Result<(Vec<(SetId, Oid)>, QueryCost)> {
        let mut out = Vec::new();
        let mut cost = QueryCost::default();
        for &set in sets {
            let Some(tree) = self.trees.get_mut(&set) else {
                continue;
            };
            tree.pool().begin_query();
            for (k, _) in tree.range(lo, hi)? {
                let oid = Oid::from_bytes(k[k.len() - 4..].try_into().expect("posting key"));
                out.push((set, oid));
            }
            let q = tree.pool().query_stats();
            cost.pages += q.distinct_pages;
            cost.visits += q.node_visits;
        }
        out.sort();
        Ok((out, cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> Vec<u8> {
        format!("k{i:07}").into_bytes()
    }

    #[test]
    fn basic_ops() {
        let mut t = HTree::new(1024, 1024);
        t.insert(&key(1), SetId(0), Oid(1)).unwrap();
        t.insert(&key(1), SetId(1), Oid(2)).unwrap();
        t.insert(&key(2), SetId(0), Oid(3)).unwrap();
        let (hits, _) = t.exact(&key(1), &[SetId(0), SetId(1)]).unwrap();
        assert_eq!(hits.len(), 2);
        let (hits, _) = t.exact(&key(1), &[SetId(1)]).unwrap();
        assert_eq!(hits, vec![(SetId(1), Oid(2))]);
        assert!(t.remove(&key(1), SetId(1), Oid(2)).unwrap());
        let (hits, _) = t.exact(&key(1), &[SetId(1)]).unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn cost_scales_with_sets_queried() {
        let mut postings = Vec::new();
        for i in 0..4000u32 {
            postings.push((key(i % 500), SetId((i % 8) as u16), Oid(i)));
        }
        let mut t = HTree::build(1024, 4096, &mut postings).unwrap();
        let (_, c1) = t.exact(&key(7), &[SetId(0)]).unwrap();
        let all: Vec<SetId> = (0..8).map(SetId).collect();
        let (hits, c8) = t.exact(&key(7), &all).unwrap();
        assert_eq!(hits.len(), 8);
        assert!(
            c8.pages >= c1.pages * 6,
            "multi-set exact match pays per set: {c1:?} vs {c8:?}"
        );
    }

    #[test]
    fn range_only_pays_for_queried_sets() {
        let mut postings = Vec::new();
        for i in 0..4000u32 {
            postings.push((key(i % 500), SetId((i % 8) as u16), Oid(i)));
        }
        let mut t = HTree::build(1024, 4096, &mut postings).unwrap();
        let (hits, c1) = t.range(&key(0), &key(100), &[SetId(3)]).unwrap();
        assert_eq!(hits.len(), 100);
        let all: Vec<SetId> = (0..8).map(SetId).collect();
        let (hits8, c8) = t.range(&key(0), &key(100), &all).unwrap();
        assert_eq!(hits8.len(), 800);
        assert!(c1.pages < c8.pages);
    }
}
