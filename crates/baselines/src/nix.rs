//! The Nested-Inherited Index (NIX) of Bertino & Foscoli (§2; [3] in the
//! paper).
//!
//! NIX is **key-grouped**: every attribute value maps to a directory with
//! one entry per class (or sub-class) along the indexed path, holding the
//! OIDs of all instances connected to the value. Auxiliary per-class
//! structures map each object to its *parents* along the path, speeding up
//! updates at the price of a second structure to maintain (the reason the
//! paper predicts worse update performance for end-of-path objects, §4.4).
//!
//! The primary structure reuses the CH-tree's value→directory machinery
//! (the Gudes paper itself notes NIX's leaf entries have "a directory
//! structure ... similar to the CH-index"); classes play the role of sets.

use btree::{BTree, BTreeConfig};
use objstore::Oid;
use pagestore::{BufferPool, MemStore, Result};

use crate::chtree::ChTree;
use crate::common::{QueryCost, SetId, SetIndex};

/// The NIX structure. `SetId` identifies a class along the indexed path.
pub struct Nix {
    primary: ChTree,
    /// Auxiliary structure: key = `[class u16][child oid][parent oid]`,
    /// key-only entries.
    aux: BTree<MemStore>,
}

fn aux_key(class: SetId, child: Oid, parent: Oid) -> Vec<u8> {
    let mut k = Vec::with_capacity(10);
    k.extend_from_slice(&class.to_bytes());
    k.extend_from_slice(&child.to_bytes());
    k.extend_from_slice(&parent.to_bytes());
    k
}

impl Nix {
    /// An empty NIX with the given page geometry.
    pub fn new(page_size: usize, pool_pages: usize) -> Result<Self> {
        let pool = BufferPool::new(MemStore::new(page_size), pool_pages);
        Ok(Nix {
            primary: ChTree::new(page_size, pool_pages)?,
            aux: BTree::create(pool, BTreeConfig::default())?,
        })
    }

    /// Associate `(value, class, oid)` in the primary structure and record
    /// `oid`'s parent along the path in the auxiliary structure.
    pub fn insert(
        &mut self,
        value: &[u8],
        class: SetId,
        oid: Oid,
        parent: Option<Oid>,
    ) -> Result<()> {
        SetIndex::insert(&mut self.primary, value, class, oid)?;
        if let Some(p) = parent {
            self.aux.insert(&aux_key(class, oid, p), &[])?;
        }
        Ok(())
    }

    /// Remove an association (and the parent link, if given).
    pub fn remove(
        &mut self,
        value: &[u8],
        class: SetId,
        oid: Oid,
        parent: Option<Oid>,
    ) -> Result<bool> {
        let existed = SetIndex::remove(&mut self.primary, value, class, oid)?;
        if let Some(p) = parent {
            self.aux.delete(&aux_key(class, oid, p))?;
        }
        Ok(existed)
    }

    /// All instances of the queried classes associated with `value`.
    pub fn exact(
        &mut self,
        value: &[u8],
        classes: &[SetId],
    ) -> Result<(Vec<(SetId, Oid)>, QueryCost)> {
        self.primary.exact(value, classes)
    }

    /// Range query over values.
    pub fn range(
        &mut self,
        lo: &[u8],
        hi: &[u8],
        classes: &[SetId],
    ) -> Result<(Vec<(SetId, Oid)>, QueryCost)> {
        self.primary.range(lo, hi, classes)
    }

    /// The parents of `oid` along the path (auxiliary lookup used by
    /// updates).
    pub fn parents(&mut self, class: SetId, oid: Oid) -> Result<(Vec<Oid>, QueryCost)> {
        self.aux.pool().begin_query();
        let mut prefix = Vec::with_capacity(6);
        prefix.extend_from_slice(&class.to_bytes());
        prefix.extend_from_slice(&oid.to_bytes());
        let parents = self
            .aux
            .prefix_scan(&prefix)?
            .into_iter()
            .map(|(k, _)| Oid::from_bytes(k[6..10].try_into().expect("aux key")))
            .collect();
        let q = self.aux.pool().query_stats();
        Ok((
            parents,
            QueryCost {
                pages: q.distinct_pages,
                visits: q.node_visits,
                descents: 0,
            },
        ))
    }

    /// Live pages across the primary and auxiliary structures — NIX pays
    /// for both.
    pub fn total_pages(&self) -> usize {
        self.primary.total_pages() + self.aux.pool().live_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_and_aux() {
        let mut nix = Nix::new(1024, 4096).unwrap();
        // Path Vehicle(1)/Company(0): value = president age.
        for i in 0..100u32 {
            let company = Oid(i % 10);
            nix.insert(b"age50", SetId(0), company, None).unwrap();
            nix.insert(b"age50", SetId(1), Oid(100 + i), Some(company))
                .unwrap();
        }
        let (hits, _) = nix.exact(b"age50", &[SetId(0), SetId(1)]).unwrap();
        assert_eq!(hits.len(), 10 + 100);
        let (hits, _) = nix.exact(b"age50", &[SetId(1)]).unwrap();
        assert_eq!(hits.len(), 100);
        // Parent lookups via the auxiliary structure.
        let (parents, cost) = nix.parents(SetId(1), Oid(105)).unwrap();
        assert_eq!(parents, vec![Oid(5)]);
        assert!(cost.pages >= 1);
        // Removal updates both structures.
        assert!(nix
            .remove(b"age50", SetId(1), Oid(105), Some(Oid(5)))
            .unwrap());
        let (parents, _) = nix.parents(SetId(1), Oid(105)).unwrap();
        assert!(parents.is_empty());
    }

    #[test]
    fn update_pays_double() {
        // The qualitative §4.4 point: NIX maintains two structures.
        let mut nix = Nix::new(1024, 4096).unwrap();
        nix.insert(b"v", SetId(0), Oid(1), Some(Oid(9))).unwrap();
        assert!(nix.total_pages() >= 2, "primary + auxiliary pages");
    }
}
