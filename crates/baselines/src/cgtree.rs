//! The CG-tree of Kilger & Moerkotte ("Indexing Multiple Sets", VLDB '94),
//! the paper's experimental baseline for the class-hierarchy case.
//!
//! We reconstruct the structure from the Gudes paper's description (§2,
//! §5.1), implementing every feature it lists:
//!
//! * a **key-ordered directory**: a B-tree over *partition* records; each
//!   record maps the sets present in the partition's key range to their
//!   leaf pages, storing **only non-NULL references**;
//! * **set grouping at the leaf level**: a leaf page holds postings of a
//!   single set for **multiple keys**;
//! * **leaf-node sharing between partitions**: when one set's leaf splits,
//!   only that set's references change — neighbouring partitions keep
//!   sharing the other sets' pages, so a page may be referenced by several
//!   consecutive directory records;
//! * **best splitting key**: an overflowing leaf splits at the key boundary
//!   closest to the byte midpoint (never inside a key's posting run; a
//!   single-key overflow grows a continuation chain instead).
//!
//! Leaf-page *balancing* is the one feature the paper also left out of its
//! own implementation. Cross-partition chaining pointers are realized by
//! walking the directory cursor instead of dedicated next-set links: within
//! one query the buffer pool counts each directory page once, which is the
//! effect the links exist to create (see DESIGN.md §4.4 for the deviation
//! note).
//!
//! Cost profile reproduced: exact-match over `k` sets reads the directory
//! descent plus up to `k` leaf pages (grows with `k`, unlike the U-index);
//! range queries read only the queried sets' leaf pages across the range
//! (set grouping), beating key-grouped structures for few sets.

use std::collections::HashSet;

use btree::{BTree, BTreeConfig};
use objstore::Oid;
use pagestore::{BufferPool, Error, MemStore, PageId, Result};

use crate::common::{QueryCost, SetId, SetIndex};

/// Construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct CgConfig {
    /// Page size in bytes (the paper's experiment uses 1024).
    pub page_size: usize,
    /// Buffer-pool capacity in frames.
    pub pool_pages: usize,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig {
            page_size: 1024,
            pool_pages: 1 << 16,
        }
    }
}

/// Upper bound sentinel for the last partition (above every posting key).
const SENTINEL: [u8; 17] = [0xFF; 17];

/// A directory record: non-NULL per-set leaf references, sorted by set.
type DirRecord = Vec<(SetId, PageId)>;

fn encode_record(rec: &DirRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + rec.len() * 6);
    out.extend_from_slice(&(rec.len() as u16).to_le_bytes());
    for (set, page) in rec {
        out.extend_from_slice(&set.0.to_le_bytes());
        out.extend_from_slice(&page.to_bytes());
    }
    out
}

fn decode_record(buf: &[u8]) -> Result<DirRecord> {
    let bad = || Error::Corrupt("bad CG directory record".into());
    let n = u16::from_le_bytes(buf.get(..2).ok_or_else(bad)?.try_into().unwrap()) as usize;
    let mut out = Vec::with_capacity(n);
    let mut pos = 2;
    for _ in 0..n {
        let set = u16::from_le_bytes(buf.get(pos..pos + 2).ok_or_else(bad)?.try_into().unwrap());
        let page = PageId::from_bytes(
            buf.get(pos + 2..pos + 6)
                .ok_or_else(bad)?
                .try_into()
                .unwrap(),
        );
        out.push((SetId(set), page));
        pos += 6;
    }
    Ok(out)
}

/// One posting inside a leaf page.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Posting {
    key: Vec<u8>,
    oid: Oid,
}

const LEAF_HEADER: usize = 8; // set u16, count u16, next u32

fn posting_size(p: &Posting) -> usize {
    1 + p.key.len() + 4
}

fn encode_leaf(page: &mut [u8], set: SetId, postings: &[Posting], next: PageId) -> Result<()> {
    let mut buf = Vec::with_capacity(page.len());
    buf.extend_from_slice(&set.0.to_le_bytes());
    buf.extend_from_slice(&(postings.len() as u16).to_le_bytes());
    buf.extend_from_slice(&next.to_bytes());
    for p in postings {
        if p.key.len() > u8::MAX as usize {
            return Err(Error::Corrupt("CG posting key too long".into()));
        }
        buf.push(p.key.len() as u8);
        buf.extend_from_slice(&p.key);
        buf.extend_from_slice(&p.oid.to_bytes());
    }
    if buf.len() > page.len() {
        return Err(Error::Corrupt("CG leaf overflow".into()));
    }
    page[..buf.len()].copy_from_slice(&buf);
    page[buf.len()..].fill(0);
    Ok(())
}

fn decode_leaf(page: &[u8]) -> Result<(SetId, Vec<Posting>, PageId)> {
    let bad = || Error::Corrupt("bad CG leaf".into());
    let set = SetId(u16::from_le_bytes(
        page.get(..2).ok_or_else(bad)?.try_into().unwrap(),
    ));
    let count = u16::from_le_bytes(page[2..4].try_into().unwrap()) as usize;
    let next = PageId::from_bytes(page[4..8].try_into().unwrap());
    let mut pos = LEAF_HEADER;
    let mut postings = Vec::with_capacity(count);
    for _ in 0..count {
        let klen = *page.get(pos).ok_or_else(bad)? as usize;
        pos += 1;
        let key = page.get(pos..pos + klen).ok_or_else(bad)?.to_vec();
        pos += klen;
        let oid = Oid::from_bytes(page.get(pos..pos + 4).ok_or_else(bad)?.try_into().unwrap());
        pos += 4;
        postings.push(Posting { key, oid });
    }
    Ok((set, postings, next))
}

/// The CG-tree. See the module docs.
pub struct CgTree {
    dir: BTree<MemStore>,
    page_size: usize,
}

impl CgTree {
    /// An empty CG-tree.
    pub fn new(config: CgConfig) -> Result<Self> {
        let pool = BufferPool::new(MemStore::new(config.page_size), config.pool_pages);
        let mut dir = BTree::create(pool, BTreeConfig::default())?;
        // The sentinel partition covers the whole key space initially.
        dir.insert(&SENTINEL, &encode_record(&Vec::new()))?;
        Ok(CgTree {
            dir,
            page_size: config.page_size,
        })
    }

    /// Bulk-build from postings: partitions are cut whenever the largest
    /// set group fills a page, yielding the packed layout a freshly built
    /// index has.
    pub fn build(config: CgConfig, postings: &mut [(Vec<u8>, SetId, Oid)]) -> Result<Self> {
        postings.sort();
        let mut out = CgTree::new(config)?;
        let cap = config.page_size - LEAF_HEADER;
        let mut dir_items: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut groups: Vec<(SetId, Vec<Posting>)> = Vec::new();
        let mut group_bytes: Vec<usize> = Vec::new();
        let mut i = 0;
        while i < postings.len() {
            // Consume one whole key at a time so partitions cut at key
            // boundaries.
            let key_start = i;
            let key = postings[i].0.clone();
            while i < postings.len() && postings[i].0 == key {
                i += 1;
            }
            // Would any set group overflow with this key's postings added?
            let mut would_overflow = false;
            {
                let mut tmp: Vec<(SetId, usize)> = Vec::new();
                for (_, set, _) in &postings[key_start..i] {
                    let add = 1 + key.len() + 4;
                    match tmp.iter_mut().find(|(s, _)| s == set) {
                        Some((_, b)) => *b += add,
                        None => tmp.push((*set, add)),
                    }
                }
                for (set, add) in tmp {
                    let cur = groups
                        .iter()
                        .position(|(s, _)| *s == set)
                        .map(|gi| group_bytes[gi])
                        .unwrap_or(0);
                    if cur + add > cap {
                        would_overflow = true;
                    }
                }
            }
            if would_overflow && !groups.is_empty() {
                // Cut the partition before this key.
                let record = out.flush_groups(&mut groups, &mut group_bytes)?;
                dir_items.push((key.clone(), encode_record(&record)));
            }
            for (k, set, oid) in &postings[key_start..i] {
                let p = Posting {
                    key: k.clone(),
                    oid: *oid,
                };
                let size = posting_size(&p);
                match groups.iter().position(|(s, _)| s == set) {
                    Some(gi) => {
                        groups[gi].1.push(p);
                        group_bytes[gi] += size;
                    }
                    None => {
                        groups.push((*set, vec![p]));
                        group_bytes.push(size);
                    }
                }
            }
        }
        let record = out.flush_groups(&mut groups, &mut group_bytes)?;
        dir_items.push((SENTINEL.to_vec(), encode_record(&record)));
        for (bound, rec) in dir_items {
            out.dir.insert(&bound, &rec)?;
        }
        Ok(out)
    }

    /// Write the accumulated per-set groups as leaf pages; returns the
    /// directory record. A group larger than one page becomes a
    /// continuation chain.
    fn flush_groups(
        &mut self,
        groups: &mut Vec<(SetId, Vec<Posting>)>,
        group_bytes: &mut Vec<usize>,
    ) -> Result<DirRecord> {
        let cap = self.page_size - LEAF_HEADER;
        let mut record: DirRecord = Vec::new();
        for (set, postings) in groups.drain(..) {
            // Chunk greedily into chain pages.
            let mut chunks: Vec<Vec<Posting>> = vec![Vec::new()];
            let mut bytes = 0;
            for p in postings {
                let size = posting_size(&p);
                if bytes + size > cap && !chunks.last().unwrap().is_empty() {
                    chunks.push(Vec::new());
                    bytes = 0;
                }
                bytes += size;
                chunks.last_mut().unwrap().push(p);
            }
            let mut next = PageId::NULL;
            let mut head = PageId::NULL;
            for chunk in chunks.iter().rev() {
                let (id, page) = self.dir.pool().allocate()?;
                encode_leaf(&mut page.write(), set, chunk, next)?;
                next = id;
                head = id;
            }
            record.push((set, head));
        }
        record.sort_by_key(|(s, _)| *s);
        group_bytes.clear();
        Ok(record)
    }

    /// Find the partition containing `key`: returns (bound, record).
    fn partition_of(&mut self, key: &[u8]) -> Result<(Vec<u8>, DirRecord)> {
        let mut probe = key.to_vec();
        probe.push(0x00);
        let mut cur = self.dir.seek(&probe)?;
        let Some((bound, rec)) = self.dir.cursor_entry(&mut cur)? else {
            return Err(Error::Corrupt("CG sentinel partition missing".into()));
        };
        Ok((bound, decode_record(&rec)?))
    }

    fn read_chain(&mut self, head: PageId) -> Result<(Vec<Posting>, Vec<PageId>)> {
        let mut postings = Vec::new();
        let mut pages = Vec::new();
        let mut page = head;
        while !page.is_null() {
            let p = self.dir.pool().fetch(page)?;
            let (_, mut ps, next) = decode_leaf(&p.read())?;
            drop(p);
            postings.append(&mut ps);
            pages.push(page);
            page = next;
        }
        Ok((postings, pages))
    }

    /// Rewrite a chain with new postings, reusing `pages` and allocating or
    /// freeing as needed. Returns the head page id.
    fn write_chain(
        &mut self,
        set: SetId,
        postings: &[Posting],
        pages: &[PageId],
    ) -> Result<PageId> {
        let cap = self.page_size - LEAF_HEADER;
        let mut chunks: Vec<&[Posting]> = Vec::new();
        let mut start = 0;
        let mut bytes = 0;
        for (i, p) in postings.iter().enumerate() {
            let size = posting_size(p);
            if bytes + size > cap && i > start {
                chunks.push(&postings[start..i]);
                start = i;
                bytes = 0;
            }
            bytes += size;
        }
        chunks.push(&postings[start..]);
        // Allocate/reuse ids.
        let mut ids: Vec<PageId> = pages.to_vec();
        while ids.len() < chunks.len() {
            let (id, _) = self.dir.pool().allocate()?;
            ids.push(id);
        }
        while ids.len() > chunks.len() {
            let id = ids.pop().expect("non-empty");
            self.dir.pool().free(id)?;
        }
        for (i, chunk) in chunks.iter().enumerate() {
            let next = if i + 1 < ids.len() {
                ids[i + 1]
            } else {
                PageId::NULL
            };
            let page = self.dir.pool().fetch(ids[i])?;
            encode_leaf(&mut page.write(), set, chunk, next)?;
        }
        Ok(ids[0])
    }

    /// "Best splitting key": the key boundary whose byte position is
    /// closest to the midpoint. `None` when all postings share one key.
    fn best_split(postings: &[Posting]) -> Option<Vec<u8>> {
        let total: usize = postings.iter().map(posting_size).sum();
        let mut best: Option<(usize, Vec<u8>)> = None;
        let mut acc = 0;
        for w in postings.windows(2) {
            acc += posting_size(&w[0]);
            if w[0].key != w[1].key {
                let dist = acc.abs_diff(total / 2);
                if best.as_ref().is_none_or(|(d, _)| dist < *d) {
                    best = Some((dist, w[1].key.clone()));
                }
            }
        }
        best.map(|(_, k)| k)
    }

    /// After splitting `set`'s chain (old head `old`) at key `m` into
    /// `left` and `right` heads, update every directory record that
    /// referenced `old`, splitting the partition containing `m` when
    /// necessary (neighbouring partitions keep sharing the other sets'
    /// pages).
    fn redirect_after_split(
        &mut self,
        set: SetId,
        old: PageId,
        m: &[u8],
        min_key: &[u8],
        left: PageId,
        right: PageId,
    ) -> Result<()> {
        // Collect affected partitions: consecutive records whose ref for
        // `set` is `old`, starting at the partition containing min_key.
        let mut probe = min_key.to_vec();
        probe.push(0x00);
        let mut cur = self.dir.seek(&probe)?;
        let mut prev_bound: Vec<u8> = Vec::new(); // lower bound of the first is unknown; treat as -inf
        let mut updates: Vec<(Vec<u8>, DirRecord)> = Vec::new();
        let mut inserts: Vec<(Vec<u8>, DirRecord)> = Vec::new();
        let mut seen_any = false;
        while let Some((bound, rec)) = self.dir.cursor_entry(&mut cur)? {
            let mut record = decode_record(&rec)?;
            let idx = record.iter().position(|(s, p)| *s == set && *p == old);
            match idx {
                None if seen_any => break,
                None => {
                    prev_bound = bound;
                    self.dir.cursor_advance(&mut cur);
                    continue;
                }
                Some(idx) => {
                    seen_any = true;
                    if bound.as_slice() <= m {
                        // Partition entirely below the split key.
                        record[idx].1 = left;
                        updates.push((bound.clone(), record));
                    } else if prev_bound.as_slice() >= m && !prev_bound.is_empty() {
                        // Partition entirely at/above the split key.
                        record[idx].1 = right;
                        updates.push((bound.clone(), record));
                    } else {
                        // The split key falls inside this partition: split
                        // the record at m. The new left partition shares
                        // every other set's pages.
                        let mut left_rec = record.clone();
                        left_rec[idx].1 = left;
                        inserts.push((m.to_vec(), left_rec));
                        record[idx].1 = right;
                        updates.push((bound.clone(), record));
                    }
                    prev_bound = bound;
                    self.dir.cursor_advance(&mut cur);
                }
            }
        }
        for (bound, rec) in updates.into_iter().chain(inserts) {
            self.dir.insert(&bound, &encode_record(&rec))?;
        }
        Ok(())
    }

    fn cost(&self) -> QueryCost {
        let q = self.dir.pool().query_stats();
        QueryCost {
            pages: q.distinct_pages,
            visits: q.node_visits,
            descents: 0,
        }
    }

    /// Structural check: every partition's referenced pages hold the right
    /// set and the directory covers the key space. Returns partition count.
    pub fn check(&mut self) -> Result<usize> {
        let mut cur = self.dir.seek(&[])?;
        let mut n = 0;
        let mut last: Option<Vec<u8>> = None;
        while let Some((bound, rec)) = self.dir.cursor_entry(&mut cur)? {
            if let Some(l) = &last {
                if *l >= bound {
                    return Err(Error::Corrupt("directory bounds not increasing".into()));
                }
            }
            let record = decode_record(&rec)?;
            for (set, head) in &record {
                let page = self.dir.pool().fetch(*head)?;
                let (s, postings, _) = decode_leaf(&page.read())?;
                if s != *set {
                    return Err(Error::Corrupt("leaf set mismatch".into()));
                }
                for w in postings.windows(2) {
                    if w[0] > w[1] {
                        return Err(Error::Corrupt("leaf postings unsorted".into()));
                    }
                }
            }
            last = Some(bound.clone());
            n += 1;
            self.dir.cursor_advance(&mut cur);
        }
        if last.as_deref() != Some(&SENTINEL[..]) {
            return Err(Error::Corrupt("sentinel partition missing".into()));
        }
        Ok(n)
    }
}

impl SetIndex for CgTree {
    fn insert(&mut self, key: &[u8], set: SetId, oid: Oid) -> Result<()> {
        if key.len() >= SENTINEL.len() {
            return Err(Error::Corrupt("key too long for CG-tree".into()));
        }
        let (bound, mut record) = self.partition_of(key)?;
        let head = match record.iter().find(|(s, _)| *s == set) {
            Some((_, p)) => *p,
            None => {
                // First posting of this set in this partition.
                let (id, page) = self.dir.pool().allocate()?;
                encode_leaf(
                    &mut page.write(),
                    set,
                    &[Posting {
                        key: key.to_vec(),
                        oid,
                    }],
                    PageId::NULL,
                )?;
                drop(page);
                record.push((set, id));
                record.sort_by_key(|(s, _)| *s);
                self.dir.insert(&bound, &encode_record(&record))?;
                return Ok(());
            }
        };
        let (mut postings, pages) = self.read_chain(head)?;
        let posting = Posting {
            key: key.to_vec(),
            oid,
        };
        let pos = match postings.binary_search(&posting) {
            Ok(_) => return Ok(()), // duplicate posting
            Err(p) => p,
        };
        postings.insert(pos, posting);
        let total: usize = postings.iter().map(posting_size).sum();
        let cap = self.page_size - LEAF_HEADER;
        if total <= cap * pages.len() {
            // Fits in the existing chain shape (conservative check); rewrite.
            self.write_chain(set, &postings, &pages)?;
            return Ok(());
        }
        // Overflow: split at the best key boundary, or grow the chain when
        // the whole chain is one key.
        match Self::best_split(&postings) {
            None => {
                self.write_chain(set, &postings, &pages)?;
            }
            Some(m) => {
                let cut = postings.partition_point(|p| p.key.as_slice() < m.as_slice());
                let min_key = postings[0].key.clone();
                let (left_postings, right_postings) = postings.split_at(cut);
                // Left reuses the old pages (so references from *earlier*
                // partitions stay valid); right gets fresh pages.
                let left = self.write_chain(set, left_postings, &pages)?;
                let right = self.write_chain(set, right_postings, &[])?;
                debug_assert_eq!(left, head);
                self.redirect_after_split(set, head, &m, &min_key, left, right)?;
            }
        }
        Ok(())
    }

    fn remove(&mut self, key: &[u8], set: SetId, oid: Oid) -> Result<bool> {
        let (_, record) = self.partition_of(key)?;
        let Some((_, head)) = record.iter().find(|(s, _)| *s == set) else {
            return Ok(false);
        };
        let (mut postings, pages) = self.read_chain(*head)?;
        let posting = Posting {
            key: key.to_vec(),
            oid,
        };
        let Ok(pos) = postings.binary_search(&posting) else {
            return Ok(false);
        };
        postings.remove(pos);
        if postings.is_empty() {
            // Keep the empty head page so shared references stay valid
            // (leaf balancing/reclamation is the one feature the paper also
            // omitted).
            self.write_chain(set, &postings, &pages[..1])?;
        } else {
            self.write_chain(set, &postings, &pages)?;
        }
        Ok(true)
    }

    fn exact(&mut self, key: &[u8], sets: &[SetId]) -> Result<(Vec<(SetId, Oid)>, QueryCost)> {
        self.dir.pool().begin_query();
        let (_, record) = self.partition_of(key)?;
        let mut out = Vec::new();
        for (set, head) in &record {
            if sets.binary_search(set).is_err() {
                continue;
            }
            // Walk the chain; postings sorted, stop once past the key.
            let mut page = *head;
            'chain: while !page.is_null() {
                let p = self.dir.pool().fetch(page)?;
                let (_, postings, next) = decode_leaf(&p.read())?;
                drop(p);
                for posting in &postings {
                    if posting.key.as_slice() == key {
                        out.push((*set, posting.oid));
                    } else if posting.key.as_slice() > key {
                        break 'chain;
                    }
                }
                page = next;
            }
        }
        out.sort();
        Ok((out, self.cost()))
    }

    fn range(
        &mut self,
        lo: &[u8],
        hi: &[u8],
        sets: &[SetId],
    ) -> Result<(Vec<(SetId, Oid)>, QueryCost)> {
        self.dir.pool().begin_query();
        let mut out = Vec::new();
        let mut probe = lo.to_vec();
        probe.push(0x00);
        let mut cur = self.dir.seek(&probe)?;
        let mut visited: HashSet<(SetId, PageId)> = HashSet::new();
        let mut prev_bound: Vec<u8> = Vec::new();
        while let Some((bound, rec)) = self.dir.cursor_entry(&mut cur)? {
            if !prev_bound.is_empty() && prev_bound.as_slice() >= hi {
                break;
            }
            let record = decode_record(&rec)?;
            for (set, head) in &record {
                if sets.binary_search(set).is_err() {
                    continue;
                }
                let mut page = *head;
                'chain: while !page.is_null() {
                    if !visited.insert((*set, page)) {
                        break; // shared page already harvested
                    }
                    let p = self.dir.pool().fetch(page)?;
                    let (_, postings, next) = decode_leaf(&p.read())?;
                    drop(p);
                    for posting in &postings {
                        if posting.key.as_slice() >= hi {
                            break 'chain;
                        }
                        if posting.key.as_slice() >= lo {
                            out.push((*set, posting.oid));
                        }
                    }
                    page = next;
                }
            }
            prev_bound = bound;
            self.dir.cursor_advance(&mut cur);
        }
        out.sort();
        Ok((out, self.cost()))
    }

    fn total_pages(&self) -> usize {
        self.dir.pool().live_pages()
    }

    fn name(&self) -> &'static str {
        "CG-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> Vec<u8> {
        format!("k{i:07}").into_bytes()
    }

    fn brute(
        postings: &[(Vec<u8>, SetId, Oid)],
        lo: &[u8],
        hi: &[u8],
        sets: &[SetId],
    ) -> Vec<(SetId, Oid)> {
        let mut out: Vec<(SetId, Oid)> = postings
            .iter()
            .filter(|(k, s, _)| k.as_slice() >= lo && k.as_slice() < hi && sets.contains(s))
            .map(|(_, s, o)| (*s, *o))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn incremental_inserts_and_queries() {
        let mut t = CgTree::new(CgConfig {
            page_size: 256,
            pool_pages: 4096,
        })
        .unwrap();
        let mut postings = Vec::new();
        // Enough postings to force many splits with 256-byte pages.
        for i in 0..2000u32 {
            let p = (key(i % 300), SetId((i % 5) as u16), Oid(i));
            t.insert(&p.0, p.1, p.2).unwrap();
            postings.push(p);
        }
        t.check().unwrap();
        let all: Vec<SetId> = (0..5).map(SetId).collect();
        for probe in [0u32, 7, 150, 299] {
            let (hits, _) = t.exact(&key(probe), &all).unwrap();
            assert_eq!(
                hits,
                brute(
                    &postings,
                    &key(probe),
                    &{
                        let mut h = key(probe);
                        h.push(0);
                        h
                    },
                    &all
                ),
                "probe {probe}"
            );
        }
        let (hits, _) = t.range(&key(50), &key(100), &[SetId(1), SetId(3)]).unwrap();
        assert_eq!(
            hits,
            brute(&postings, &key(50), &key(100), &[SetId(1), SetId(3)])
        );
    }

    #[test]
    fn bulk_build_matches_brute_force() {
        let mut postings = Vec::new();
        for i in 0..5000u32 {
            postings.push((key(i % 700), SetId((i % 8) as u16), Oid(i)));
        }
        let mut t = CgTree::build(
            CgConfig {
                page_size: 1024,
                pool_pages: 1 << 14,
            },
            &mut postings.clone(),
        )
        .unwrap();
        t.check().unwrap();
        let all: Vec<SetId> = (0..8).map(SetId).collect();
        let (hits, _) = t.range(&key(100), &key(200), &all).unwrap();
        assert_eq!(hits, brute(&postings, &key(100), &key(200), &all));
        let (hits, _) = t.exact(&key(123), &[SetId(2)]).unwrap();
        assert_eq!(
            hits,
            brute(
                &postings,
                &key(123),
                &{
                    let mut h = key(123);
                    h.push(0);
                    h
                },
                &[SetId(2)]
            )
        );
    }

    #[test]
    fn exact_match_cost_grows_with_sets() {
        let mut postings = Vec::new();
        for i in 0..20_000u32 {
            postings.push((key(i), SetId((i % 8) as u16), Oid(i)));
        }
        let mut t = CgTree::build(CgConfig::default(), &mut postings).unwrap();
        let (_, c1) = t.exact(&key(10_000), &[SetId(0)]).unwrap();
        let all: Vec<SetId> = (0..8).map(SetId).collect();
        let (_, c8) = t.exact(&key(10_000), &all).unwrap();
        assert!(
            c8.pages >= c1.pages + 5,
            "exact cost should grow with sets: {c1:?} vs {c8:?}"
        );
    }

    #[test]
    fn range_cost_proportional_to_queried_sets() {
        let mut postings = Vec::new();
        for i in 0..20_000u32 {
            postings.push((key(i % 2000), SetId((i % 8) as u16), Oid(i)));
        }
        let mut t = CgTree::build(CgConfig::default(), &mut postings).unwrap();
        let (h1, c1) = t.range(&key(500), &key(700), &[SetId(0)]).unwrap();
        assert_eq!(h1.len(), 200 * 10 / 8);
        let all: Vec<SetId> = (0..8).map(SetId).collect();
        let (h8, c8) = t.range(&key(500), &key(700), &all).unwrap();
        assert_eq!(h8.len(), 200 * 10);
        assert!(c8.pages > c1.pages * 3, "set grouping: {c1:?} vs {c8:?}");
    }

    #[test]
    fn single_key_overflow_chains() {
        let mut t = CgTree::new(CgConfig {
            page_size: 256,
            pool_pages: 4096,
        })
        .unwrap();
        // 200 postings of one key / one set: must chain, not split.
        for i in 0..200u32 {
            t.insert(&key(42), SetId(0), Oid(i)).unwrap();
        }
        t.check().unwrap();
        let (hits, _) = t.exact(&key(42), &[SetId(0)]).unwrap();
        assert_eq!(hits.len(), 200);
    }

    #[test]
    fn remove() {
        let mut t = CgTree::new(CgConfig::default()).unwrap();
        for i in 0..100u32 {
            t.insert(&key(i), SetId(0), Oid(i)).unwrap();
        }
        assert!(t.remove(&key(7), SetId(0), Oid(7)).unwrap());
        assert!(!t.remove(&key(7), SetId(0), Oid(7)).unwrap());
        assert!(!t.remove(&key(7), SetId(3), Oid(7)).unwrap());
        let (hits, _) = t.exact(&key(7), &[SetId(0)]).unwrap();
        assert!(hits.is_empty());
        let (hits, _) = t.exact(&key(8), &[SetId(0)]).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn duplicate_insert_ignored() {
        let mut t = CgTree::new(CgConfig::default()).unwrap();
        t.insert(&key(1), SetId(0), Oid(1)).unwrap();
        t.insert(&key(1), SetId(0), Oid(1)).unwrap();
        let (hits, _) = t.exact(&key(1), &[SetId(0)]).unwrap();
        assert_eq!(hits.len(), 1);
    }
}
