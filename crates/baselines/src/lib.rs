//! Baseline OODB index structures the paper compares against (§2, §4.4, §5):
//!
//! * [`ChTree`] — the classic **class-hierarchy index** (Kim, Bertino,
//!   Dale): one B+-tree on attribute values, each key holding a *set
//!   directory* of per-class OID lists (key grouping). Long lists overflow
//!   into chained pages.
//! * [`HTree`] — the **H-tree** of Low, Lu & Ooi: one B+-tree per class
//!   (set grouping); a multi-set query fans out over the queried trees.
//!   The inter-tree nesting links of the original are simplified away (the
//!   experiments use it only qualitatively).
//! * [`CgTree`] — the **CG-tree** of Kilger & Moerkotte, the paper's
//!   experimental baseline: key-ordered directory over partitions, per-set
//!   leaf pages with multiple keys per page (set grouping within
//!   key-ordered partitions), non-NULL-only directory records, best
//!   splitting key. See module docs for the implementation notes.
//! * [`NestedIndex`] / [`PathIndex`] — Kim & Bertino's nested and path
//!   indexes on a reference chain.
//! * [`Nix`] — Bertino & Foscoli's nested-inherited index: per-value
//!   directories over *all* classes along the path plus auxiliary
//!   parent-pointer structures.
//!
//! All structures store their nodes in [`pagestore`] pages, so query costs
//! are measured identically to the U-index: distinct pages touched per
//! query.

mod cgtree;
mod chtree;
mod common;
mod htree;
mod nix;
mod pathindex;

pub use cgtree::{CgConfig, CgTree};
pub use chtree::ChTree;
pub use common::{QueryCost, SetId, SetIndex};
pub use htree::HTree;
pub use nix::Nix;
pub use pathindex::{NestedIndex, PathIndex};

pub use pagestore::{Error, Result};
