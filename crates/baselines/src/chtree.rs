//! The classic class-hierarchy index (CH-tree) of Kim, Bertino & Dale.
//!
//! One B+-tree keyed on the attribute value; the value of each entry is a
//! *set directory*: per-class OID lists for every class in the hierarchy
//! holding that key (§2). This is **key grouping** — all postings for one
//! key live together, so exact-match is excellent, while range queries and
//! narrow multi-set queries must read every posting in the key range
//! regardless of which sets were asked for.
//!
//! Directories that do not fit inline in the B-tree entry overflow into a
//! chain of dedicated pages, as in the original design's record overflow.

use btree::{BTree, BTreeConfig};
use objstore::Oid;
use pagestore::{BufferPool, Error, MemStore, PageId, Result};

use crate::common::{read_oids, write_oids, QueryCost, SetId, SetIndex};

const INLINE: u8 = 0;
const CHAINED: u8 = 1;

/// The CH-tree. See the module docs.
pub struct ChTree {
    tree: BTree<MemStore>,
}

/// A decoded per-key directory: sorted `(set, sorted oids)`.
type Directory = Vec<(SetId, Vec<Oid>)>;

fn encode_directory(dir: &Directory) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(dir.len() as u16).to_le_bytes());
    for (set, oids) in dir {
        buf.extend_from_slice(&set.0.to_le_bytes());
        write_oids(&mut buf, oids);
    }
    buf
}

fn decode_directory(buf: &[u8]) -> Result<Directory> {
    let bad = || Error::Corrupt("bad CH-tree directory".into());
    let n = u16::from_le_bytes(buf.get(..2).ok_or_else(bad)?.try_into().unwrap()) as usize;
    let mut pos = 2;
    let mut dir = Vec::with_capacity(n);
    for _ in 0..n {
        let set = u16::from_le_bytes(buf.get(pos..pos + 2).ok_or_else(bad)?.try_into().unwrap());
        pos += 2;
        let oids = read_oids(buf, &mut pos).ok_or_else(bad)?;
        dir.push((SetId(set), oids));
    }
    Ok(dir)
}

impl ChTree {
    /// An empty CH-tree with the given page geometry.
    pub fn new(page_size: usize, pool_pages: usize) -> Result<Self> {
        let pool = BufferPool::new(MemStore::new(page_size), pool_pages);
        Ok(ChTree {
            tree: BTree::create(pool, BTreeConfig::default())?,
        })
    }

    /// Build from postings in one pass (experiment setup).
    pub fn build(
        page_size: usize,
        pool_pages: usize,
        postings: &mut [(Vec<u8>, SetId, Oid)],
    ) -> Result<Self> {
        postings.sort();
        let mut out = ChTree::new(page_size, pool_pages)?;
        let mut i = 0;
        while i < postings.len() {
            let key = postings[i].0.clone();
            let mut dir: Directory = Vec::new();
            while i < postings.len() && postings[i].0 == key {
                let (_, set, oid) = postings[i];
                match dir.last_mut() {
                    Some((s, oids)) if *s == set => oids.push(oid),
                    _ => dir.push((set, vec![oid])),
                }
                i += 1;
            }
            out.write_directory(&key, &dir)?;
        }
        Ok(out)
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> u64 {
        self.tree.len()
    }

    fn read_directory(&mut self, key: &[u8]) -> Result<Option<Directory>> {
        let Some(v) = self.tree.get(key)? else {
            return Ok(None);
        };
        self.read_directory_value(&v).map(Some)
    }

    fn read_directory_value(&mut self, v: &[u8]) -> Result<Directory> {
        match v.first() {
            Some(&INLINE) => decode_directory(&v[1..]),
            Some(&CHAINED) => {
                let head = PageId::from_bytes(
                    v.get(1..5)
                        .ok_or_else(|| Error::Corrupt("bad chain head".into()))?
                        .try_into()
                        .unwrap(),
                );
                let bytes = self.read_chain(head)?;
                decode_directory(&bytes)
            }
            _ => Err(Error::Corrupt("bad CH-tree value tag".into())),
        }
    }

    fn read_chain(&mut self, mut page: PageId) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        while !page.is_null() {
            let p = self.tree.pool().fetch(page)?;
            let data = p.read();
            let next = PageId::from_bytes(data[..4].try_into().unwrap());
            let len = u16::from_le_bytes(data[4..6].try_into().unwrap()) as usize;
            out.extend_from_slice(&data[6..6 + len]);
            drop(data);
            page = next;
        }
        Ok(out)
    }

    fn free_chain(&mut self, v: &[u8]) -> Result<()> {
        if v.first() == Some(&CHAINED) {
            let mut page = PageId::from_bytes(v[1..5].try_into().unwrap());
            while !page.is_null() {
                let next = {
                    let p = self.tree.pool().fetch(page)?;
                    let d = p.read();
                    PageId::from_bytes(d[..4].try_into().unwrap())
                };
                self.tree.pool().free(page)?;
                page = next;
            }
        }
        Ok(())
    }

    fn write_directory(&mut self, key: &[u8], dir: &Directory) -> Result<()> {
        // Free a previous chain, if any.
        if let Some(old) = self.tree.get(key)? {
            self.free_chain(&old)?;
        }
        if dir.is_empty() {
            self.tree.delete(key)?;
            return Ok(());
        }
        let bytes = encode_directory(dir);
        let max_inline = self.tree.max_entry_size().saturating_sub(key.len() + 1);
        if bytes.len() <= max_inline {
            let mut v = Vec::with_capacity(bytes.len() + 1);
            v.push(INLINE);
            v.extend_from_slice(&bytes);
            self.tree.insert(key, &v)?;
            return Ok(());
        }
        // Spill into a chain of overflow pages.
        let page_size = self.tree.pool().page_size();
        let payload = page_size - 6;
        let chunks: Vec<&[u8]> = bytes.chunks(payload).collect();
        let mut next = PageId::NULL;
        for chunk in chunks.iter().rev() {
            let (id, page) = self.tree.pool().allocate()?;
            {
                let mut d = page.write();
                d[..4].copy_from_slice(&next.to_bytes());
                d[4..6].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
                d[6..6 + chunk.len()].copy_from_slice(chunk);
            }
            next = id;
        }
        let mut v = vec![CHAINED];
        v.extend_from_slice(&next.to_bytes());
        self.tree.insert(key, &v)?;
        Ok(())
    }

    fn cost(&self) -> QueryCost {
        let q = self.tree.pool().query_stats();
        QueryCost {
            pages: q.distinct_pages,
            visits: q.node_visits,
            descents: 0,
        }
    }
}

impl SetIndex for ChTree {
    fn insert(&mut self, key: &[u8], set: SetId, oid: Oid) -> Result<()> {
        let mut dir = self.read_directory(key)?.unwrap_or_default();
        match dir.binary_search_by_key(&set, |(s, _)| *s) {
            Ok(i) => {
                if let Err(j) = dir[i].1.binary_search(&oid) {
                    dir[i].1.insert(j, oid);
                }
            }
            Err(i) => dir.insert(i, (set, vec![oid])),
        }
        self.write_directory(key, &dir)
    }

    fn remove(&mut self, key: &[u8], set: SetId, oid: Oid) -> Result<bool> {
        let Some(mut dir) = self.read_directory(key)? else {
            return Ok(false);
        };
        let Ok(i) = dir.binary_search_by_key(&set, |(s, _)| *s) else {
            return Ok(false);
        };
        let Ok(j) = dir[i].1.binary_search(&oid) else {
            return Ok(false);
        };
        dir[i].1.remove(j);
        if dir[i].1.is_empty() {
            dir.remove(i);
        }
        self.write_directory(key, &dir)?;
        Ok(true)
    }

    fn exact(&mut self, key: &[u8], sets: &[SetId]) -> Result<(Vec<(SetId, Oid)>, QueryCost)> {
        self.tree.pool().begin_query();
        let mut out = Vec::new();
        if let Some(dir) = self.read_directory(key)? {
            for (set, oids) in dir {
                if sets.binary_search(&set).is_ok() {
                    out.extend(oids.into_iter().map(|o| (set, o)));
                }
            }
        }
        out.sort();
        Ok((out, self.cost()))
    }

    fn range(
        &mut self,
        lo: &[u8],
        hi: &[u8],
        sets: &[SetId],
    ) -> Result<(Vec<(SetId, Oid)>, QueryCost)> {
        self.tree.pool().begin_query();
        let mut out = Vec::new();
        let mut cur = self.tree.seek(lo)?;
        while let Some((k, v)) = self.tree.cursor_entry(&mut cur)? {
            if k.as_slice() >= hi {
                break;
            }
            // Key grouping: the whole directory (including overflow pages)
            // is materialized for every key in range, whether or not the
            // queried sets occur in it.
            let dir = self.read_directory_value(&v)?;
            for (set, oids) in dir {
                if sets.binary_search(&set).is_ok() {
                    out.extend(oids.into_iter().map(|o| (set, o)));
                }
            }
            self.tree.cursor_advance(&mut cur);
        }
        out.sort();
        Ok((out, self.cost()))
    }

    fn total_pages(&self) -> usize {
        self.tree.pool().live_pages()
    }

    fn name(&self) -> &'static str {
        "CH-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> Vec<u8> {
        format!("k{i:07}").into_bytes()
    }

    #[test]
    fn insert_exact_remove() {
        let mut t = ChTree::new(1024, 4096).unwrap();
        t.insert(&key(1), SetId(0), Oid(10)).unwrap();
        t.insert(&key(1), SetId(1), Oid(11)).unwrap();
        t.insert(&key(1), SetId(0), Oid(12)).unwrap();
        let (hits, _) = t.exact(&key(1), &[SetId(0)]).unwrap();
        assert_eq!(hits, vec![(SetId(0), Oid(10)), (SetId(0), Oid(12))]);
        let (hits, _) = t.exact(&key(1), &[SetId(0), SetId(1)]).unwrap();
        assert_eq!(hits.len(), 3);
        assert!(t.remove(&key(1), SetId(0), Oid(10)).unwrap());
        assert!(!t.remove(&key(1), SetId(0), Oid(10)).unwrap());
        let (hits, _) = t.exact(&key(1), &[SetId(0)]).unwrap();
        assert_eq!(hits, vec![(SetId(0), Oid(12))]);
    }

    #[test]
    fn overflow_chains() {
        let mut t = ChTree::new(1024, 4096).unwrap();
        // 1000 oids under one key: directory far exceeds a page.
        for i in 0..1000u32 {
            t.insert(&key(7), SetId((i % 4) as u16), Oid(i)).unwrap();
        }
        let (hits, cost) = t
            .exact(&key(7), &[SetId(0), SetId(1), SetId(2), SetId(3)])
            .unwrap();
        assert_eq!(hits.len(), 1000);
        assert!(cost.pages > 4, "chain pages must be read: {cost:?}");
        // Removing everything frees the chain.
        let before = t.total_pages();
        for i in 0..1000u32 {
            t.remove(&key(7), SetId((i % 4) as u16), Oid(i)).unwrap();
        }
        assert!(t.total_pages() < before);
        let (hits, _) = t.exact(&key(7), &[SetId(0)]).unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn range_reads_unrelated_sets() {
        // Key grouping: a range query over set 0 pays for set 1's postings.
        let mut postings = Vec::new();
        for i in 0..2000u32 {
            postings.push((key(i), SetId((i % 2) as u16), Oid(i)));
        }
        let mut t = ChTree::build(1024, 4096, &mut postings).unwrap();
        let (hits, cost_one) = t.range(&key(0), &key(400), &[SetId(0)]).unwrap();
        assert_eq!(hits.len(), 200);
        let (hits2, cost_both) = t.range(&key(0), &key(400), &[SetId(0), SetId(1)]).unwrap();
        assert_eq!(hits2.len(), 400);
        // Same pages either way — that is the key-grouping cost profile.
        assert_eq!(cost_one.pages, cost_both.pages);
    }

    #[test]
    fn build_matches_incremental() {
        let mut postings = Vec::new();
        for i in 0..500u32 {
            postings.push((key(i % 50), SetId((i % 3) as u16), Oid(i)));
        }
        let mut built = ChTree::build(1024, 4096, &mut postings.clone()).unwrap();
        let mut incr = ChTree::new(1024, 4096).unwrap();
        for (k, s, o) in &postings {
            incr.insert(k, *s, *o).unwrap();
        }
        for probe in 0..50u32 {
            let sets = [SetId(0), SetId(1), SetId(2)];
            let (a, _) = built.exact(&key(probe), &sets).unwrap();
            let (b, _) = incr.exact(&key(probe), &sets).unwrap();
            let (mut a, mut b) = (a, b);
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }
}
