//! `uindex-cli` — a command-line OODB built on the U-index.
//!
//! Three plain-text formats make the whole system usable without writing
//! Rust:
//!
//! * **`.uschema`** — the schema DSL ([`parse_schema`]):
//!
//!   ```text
//!   class Employee { Age: int }
//!   class Company { Name: str, President: ref Employee }
//!   class AutoCompany < Company {}
//!   class Vehicle { Color: str, MadeBy: ref Company }
//!   index color = hierarchy Vehicle Color
//!   index age   = path Vehicle.MadeBy.President Age
//!   ```
//!
//! * **`.udata`** — object files ([`load_data`]):
//!
//!   ```text
//!   e1 = Employee Age=50
//!   c1 = AutoCompany Name='Fiat' President=@e1
//!   v1 = Vehicle Color='Red' MadeBy=@c1 Owners=[@e1]
//!   ```
//!
//! * **UQL** — queries (see [`uindex::uql`]).
//!
//! The binary wires these to [`uindex::Database`] persistence:
//! `uindex-cli new|load|query|info` (see `main.rs`).

use std::collections::HashMap;

use objstore::{Oid, Value};
use pagestore::PageStore;
use schema::{AttrType, ClassId, Schema};
use uindex::{Database, DiskDatabase, DiskOptions, IndexSpec};

/// Errors with a line number for every parse failure.
#[derive(Debug)]
pub struct CliError {
    /// 1-based line of the failure (0 = not line-specific).
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for CliError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, CliError> {
    Err(CliError {
        line,
        message: message.into(),
    })
}

/// An index directive from a `.uschema` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDirective {
    /// Index name.
    pub name: String,
    /// `true` for `hierarchy`, `false` for `path`.
    pub hierarchy: bool,
    /// Top class, then reference-attribute chain for `path`.
    pub chain: Vec<String>,
    /// The indexed attribute.
    pub attr: String,
}

/// Parse a `.uschema` file into a [`Schema`] plus index directives.
pub fn parse_schema(input: &str) -> Result<(Schema, Vec<IndexDirective>), CliError> {
    let mut schema = Schema::new();
    let mut indexes = Vec::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix("class ") {
            // class Name [< Parent] { attr: type, ... }
            let (head, body) = match rest.split_once('{') {
                Some((h, b)) => (h.trim(), b.trim()),
                None => return err(line, "expected '{' in class declaration"),
            };
            let body = match body.strip_suffix('}') {
                Some(b) => b.trim(),
                None => return err(line, "class declaration must end with '}'"),
            };
            let (name, parent) = match head.split_once('<') {
                Some((n, p)) => (n.trim(), Some(p.trim())),
                None => (head.trim(), None),
            };
            if name.is_empty() {
                return err(line, "empty class name");
            }
            let class = match parent {
                None => schema.add_class(name).map_err(|e| CliError {
                    line,
                    message: e.to_string(),
                })?,
                Some(pname) => {
                    let parent = schema.class_by_name(pname).ok_or_else(|| CliError {
                        line,
                        message: format!("unknown parent class {pname:?}"),
                    })?;
                    schema.add_subclass(name, parent).map_err(|e| CliError {
                        line,
                        message: e.to_string(),
                    })?
                }
            };
            if !body.is_empty() {
                for decl in body.split(',') {
                    let (aname, ty) = match decl.split_once(':') {
                        Some((a, t)) => (a.trim(), t.trim()),
                        None => return err(line, format!("expected 'name: type' in {decl:?}")),
                    };
                    let ty = parse_attr_type(ty, &schema, line)?;
                    schema.add_attr(class, aname, ty).map_err(|e| CliError {
                        line,
                        message: e.to_string(),
                    })?;
                }
            }
        } else if let Some(rest) = text.strip_prefix("index ") {
            // index name = hierarchy Class Attr
            // index name = path Class.Ref.Ref Attr
            let (name, spec) = match rest.split_once('=') {
                Some((n, s)) => (n.trim().to_string(), s.trim()),
                None => return err(line, "expected '=' in index directive"),
            };
            let mut parts = spec.split_whitespace();
            let kind = parts.next().unwrap_or_default();
            let target = parts.next().unwrap_or_default();
            let attr = parts.next().unwrap_or_default().to_string();
            if attr.is_empty() || parts.next().is_some() {
                return err(line, "expected 'index name = hierarchy|path Target Attr'");
            }
            let chain: Vec<String> = target.split('.').map(str::to_string).collect();
            match kind {
                "hierarchy" if chain.len() == 1 => indexes.push(IndexDirective {
                    name,
                    hierarchy: true,
                    chain,
                    attr,
                }),
                "path" if chain.len() >= 2 => indexes.push(IndexDirective {
                    name,
                    hierarchy: false,
                    chain,
                    attr,
                }),
                "hierarchy" => return err(line, "hierarchy index takes a bare class name"),
                "path" => return err(line, "path index needs Class.Ref[.Ref...]"),
                other => return err(line, format!("unknown index kind {other:?}")),
            }
        } else {
            return err(line, format!("unrecognized directive: {text:?}"));
        }
    }
    Ok((schema, indexes))
}

fn parse_attr_type(ty: &str, schema: &Schema, line: usize) -> Result<AttrType, CliError> {
    Ok(match ty {
        "int" => AttrType::Int,
        "str" => AttrType::Str,
        "float" => AttrType::Float,
        "bool" => AttrType::Bool,
        _ => {
            if let Some(target) = ty.strip_prefix("ref ") {
                AttrType::Ref(resolve_class(schema, target.trim(), line)?)
            } else if let Some(target) = ty.strip_prefix("refset ") {
                AttrType::RefSet(resolve_class(schema, target.trim(), line)?)
            } else {
                return err(line, format!("unknown type {ty:?}"));
            }
        }
    })
}

fn resolve_class(schema: &Schema, name: &str, line: usize) -> Result<ClassId, CliError> {
    schema.class_by_name(name).ok_or_else(|| CliError {
        line,
        message: format!("unknown class {name:?}"),
    })
}

/// Apply the index directives of a parsed `.uschema` to a database
/// (either storage tier).
pub fn define_indexes<P: PageStore>(
    db: &mut Database<P>,
    directives: &[IndexDirective],
) -> Result<(), CliError> {
    for d in directives {
        let target = resolve_class(db.schema(), &d.chain[0], 0)?;
        let builder = if d.hierarchy {
            IndexSpec::class_hierarchy(&d.name, target, &d.attr)
        } else {
            let refs: Vec<&str> = d.chain[1..].iter().map(String::as_str).collect();
            IndexSpec::path(&d.name, target, &refs, &d.attr)
        };
        db.define_index(builder).map_err(|e| CliError {
            line: 0,
            message: format!("index {:?}: {e}", d.name),
        })?;
    }
    Ok(())
}

/// Load a `.udata` file into the database, returning handle → OID bindings.
///
/// Each line is `handle = Class attr=value ...`; values are integers,
/// floats, `true`/`false`, `'strings'`, `@handle` references, or
/// `[@h1, @h2]` reference sets. References may point at handles defined on
/// later lines (two passes).
pub fn load_data<P: PageStore>(
    db: &mut Database<P>,
    input: &str,
) -> Result<HashMap<String, Oid>, CliError> {
    struct Pending {
        line: usize,
        oid: Oid,
        attrs: Vec<(String, RawValue)>,
    }
    enum RawValue {
        Lit(Value),
        Ref(String),
        RefSet(Vec<String>),
    }

    let mut handles: HashMap<String, Oid> = HashMap::new();
    let mut pending: Vec<Pending> = Vec::new();

    for (lineno, raw) in input.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let (handle, rest) = match text.split_once('=') {
            Some((h, r)) => (h.trim().to_string(), r.trim()),
            None => return err(line, "expected 'handle = Class attr=value ...'"),
        };
        if handles.contains_key(&handle) {
            return err(line, format!("duplicate handle {handle:?}"));
        }
        let mut toks = Tokens::new(rest, line);
        let class_name = toks.word()?;
        let class = resolve_class(db.schema(), &class_name, line)?;
        let oid = db.create_object(class).map_err(|e| CliError {
            line,
            message: e.to_string(),
        })?;
        handles.insert(handle, oid);
        let mut attrs = Vec::new();
        while !toks.done() {
            let name = toks.word_until_eq()?;
            toks.expect('=')?;
            let value = toks.value()?;
            attrs.push((name, value));
        }
        pending.push(Pending { line, oid, attrs });
    }

    // Second pass: set attributes, resolving handle references.
    for p in pending {
        for (name, raw) in p.attrs {
            let value = match raw {
                RawValue::Lit(v) => v,
                RawValue::Ref(h) => Value::Ref(*handles.get(&h).ok_or_else(|| CliError {
                    line: p.line,
                    message: format!("unknown handle @{h}"),
                })?),
                RawValue::RefSet(hs) => {
                    let mut oids = Vec::with_capacity(hs.len());
                    for h in hs {
                        oids.push(*handles.get(&h).ok_or_else(|| CliError {
                            line: p.line,
                            message: format!("unknown handle @{h}"),
                        })?);
                    }
                    Value::RefSet(oids)
                }
            };
            db.set_attr(p.oid, &name, value).map_err(|e| CliError {
                line: p.line,
                message: format!("{name}: {e}"),
            })?;
        }
    }
    return Ok(handles);

    // --- tiny tokenizer for data lines --------------------------------
    struct Tokens<'a> {
        chars: std::iter::Peekable<std::str::Chars<'a>>,
        line: usize,
    }

    impl<'a> Tokens<'a> {
        fn new(s: &'a str, line: usize) -> Self {
            Tokens {
                chars: s.chars().peekable(),
                line,
            }
        }

        fn skip_ws(&mut self) {
            while matches!(self.chars.peek(), Some(c) if c.is_whitespace()) {
                self.chars.next();
            }
        }

        fn done(&mut self) -> bool {
            self.skip_ws();
            self.chars.peek().is_none()
        }

        fn word(&mut self) -> Result<String, CliError> {
            self.skip_ws();
            let mut w = String::new();
            while matches!(self.chars.peek(), Some(c) if c.is_alphanumeric() || *c == '_') {
                w.push(self.chars.next().unwrap());
            }
            if w.is_empty() {
                return err(self.line, "expected a name");
            }
            Ok(w)
        }

        fn word_until_eq(&mut self) -> Result<String, CliError> {
            self.word()
        }

        fn expect(&mut self, c: char) -> Result<(), CliError> {
            self.skip_ws();
            match self.chars.next() {
                Some(got) if got == c => Ok(()),
                got => err(self.line, format!("expected {c:?}, got {got:?}")),
            }
        }

        fn value(&mut self) -> Result<RawValue, CliError> {
            self.skip_ws();
            match self.chars.peek() {
                Some('@') => {
                    self.chars.next();
                    Ok(RawValue::Ref(self.word()?))
                }
                Some('[') => {
                    self.chars.next();
                    let mut hs = Vec::new();
                    loop {
                        self.skip_ws();
                        match self.chars.peek() {
                            Some(']') => {
                                self.chars.next();
                                break;
                            }
                            Some('@') => {
                                self.chars.next();
                                hs.push(self.word()?);
                                self.skip_ws();
                                if matches!(self.chars.peek(), Some(',')) {
                                    self.chars.next();
                                }
                            }
                            other => {
                                return err(
                                    self.line,
                                    format!("expected '@handle' or ']', got {other:?}"),
                                )
                            }
                        }
                    }
                    Ok(RawValue::RefSet(hs))
                }
                Some('\'') => {
                    self.chars.next();
                    let mut s = String::new();
                    loop {
                        match self.chars.next() {
                            Some('\'') => break,
                            Some(c) => s.push(c),
                            None => return err(self.line, "unterminated string"),
                        }
                    }
                    Ok(RawValue::Lit(Value::Str(s)))
                }
                Some(c) if c.is_ascii_digit() || *c == '-' => {
                    let mut s = String::new();
                    while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit() || *c == '.' || *c == '-')
                    {
                        s.push(self.chars.next().unwrap());
                    }
                    if s.contains('.') {
                        s.parse::<f64>()
                            .map(|f| RawValue::Lit(Value::Float(f)))
                            .map_err(|_| CliError {
                                line: self.line,
                                message: format!("bad float {s:?}"),
                            })
                    } else {
                        s.parse::<i64>()
                            .map(|i| RawValue::Lit(Value::Int(i)))
                            .map_err(|_| CliError {
                                line: self.line,
                                message: format!("bad integer {s:?}"),
                            })
                    }
                }
                _ => {
                    let w = self.word()?;
                    match w.as_str() {
                        "true" => Ok(RawValue::Lit(Value::Bool(true))),
                        "false" => Ok(RawValue::Lit(Value::Bool(false))),
                        other => err(self.line, format!("bad value {other:?}")),
                    }
                }
            }
        }
    }
}

/// Build a database from schema text and optional data text (the `new`
/// command's core, reused by tests).
pub fn build_database(schema_text: &str, data_text: Option<&str>) -> Result<Database, CliError> {
    let (schema, directives) = parse_schema(schema_text)?;
    let mut db = Database::in_memory(schema).map_err(|e| CliError {
        line: 0,
        message: e.to_string(),
    })?;
    define_indexes(&mut db, &directives)?;
    if let Some(data) = data_text {
        load_data(&mut db, data)?;
    }
    Ok(db)
}

/// Build a *file-backed* database in `dir` from schema text and optional
/// data text (the `new --disk` command's core). Everything is committed
/// and checkpointed before returning.
pub fn build_database_on_disk(
    schema_text: &str,
    data_text: Option<&str>,
    dir: &std::path::Path,
    options: DiskOptions,
) -> Result<DiskDatabase, CliError> {
    let internal = |e: uindex::Error| CliError {
        line: 0,
        message: e.to_string(),
    };
    let (schema, directives) = parse_schema(schema_text)?;
    let mut db = DiskDatabase::create(schema, dir, options).map_err(internal)?;
    define_indexes(&mut db, &directives)?;
    if let Some(data) = data_text {
        load_data(&mut db, data)?;
    }
    db.checkpoint().map_err(internal)?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uindex::distinct_oids_at;

    const SCHEMA: &str = "
        # the paper's example, as a schema file
        class Employee { Age: int }
        class Company { Name: str, President: ref Employee }
        class AutoCompany < Company {}
        class Vehicle { Color: str, MadeBy: ref Company, CoOwners: refset Employee }
        class Automobile < Vehicle {}
        index color = hierarchy Vehicle Color
        index age   = path Vehicle.MadeBy.President Age
    ";

    const DATA: &str = "
        e1 = Employee Age=50
        e2 = Employee Age=60
        c1 = AutoCompany Name='Fiat' President=@e1
        v1 = Vehicle Color='Red' MadeBy=@c1
        v2 = Automobile Color='Red' MadeBy=@c1 CoOwners=[@e1, @e2]
        v3 = Automobile Color='Blue' MadeBy=@c1
    ";

    #[test]
    fn schema_parses() {
        let (s, idx) = parse_schema(SCHEMA).unwrap();
        assert_eq!(s.num_classes(), 5);
        assert_eq!(idx.len(), 2);
        assert!(idx[0].hierarchy);
        assert_eq!(idx[1].chain, vec!["Vehicle", "MadeBy", "President"]);
        let auto = s.class_by_name("AutoCompany").unwrap();
        let company = s.class_by_name("Company").unwrap();
        assert!(s.is_subclass_of(auto, company));
    }

    #[test]
    fn end_to_end_build_and_query() {
        let db = build_database(SCHEMA, Some(DATA)).unwrap();
        let (hits, _) = db.query_uql("color: Color = 'Red'").unwrap();
        assert_eq!(hits.len(), 2);
        let (hits, _) = db
            .query_uql("color: Color = 'Red' and Vehicle in [Automobile*]")
            .unwrap();
        assert_eq!(hits.len(), 1);
        let (hits, _) = db.query_uql("age: Age = 50").unwrap();
        assert_eq!(distinct_oids_at(&hits, 2).len(), 3);
    }

    #[test]
    fn data_forward_references_work() {
        // v references a company defined later in the file.
        let data = "
            v1 = Vehicle Color='Red' MadeBy=@c9
            c9 = Company Name='Late' President=@e9
            e9 = Employee Age=33
        ";
        let db = build_database(SCHEMA, Some(data)).unwrap();
        let (hits, _) = db.query_uql("age: Age = 33").unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = parse_schema("class A {").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_schema("class A {}\nbogus line").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_schema("class A { X: nope }").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_schema("class A {}\nindex i = sideways A X").unwrap_err();
        assert_eq!(e.line, 2);

        let (schema_ok, _) = parse_schema(SCHEMA).unwrap();
        let mut db = Database::in_memory(schema_ok).unwrap();
        let e = load_data(&mut db, "x1 = Employee Age='old'").unwrap_err();
        assert_eq!(e.line, 1);
        let e = load_data(&mut db, "\nx1 = Employee Age=1\nx1 = Employee Age=2").unwrap_err();
        assert_eq!(e.line, 3);
        let e = load_data(&mut db, "v = Vehicle MadeBy=@nobody").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn save_and_reopen_through_files() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("uindex_cli_test_{}", std::process::id()));
        let db = build_database(SCHEMA, Some(DATA)).unwrap();
        db.save(&dir).unwrap();
        let back = Database::open(&dir).unwrap();
        let (hits, _) = back.query_uql("color: Color = 'Red'").unwrap();
        assert_eq!(hits.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
