//! The `uindex-cli` binary. Commands:
//!
//! ```text
//! uindex-cli new     <db-dir> <schema.uschema> [data.udata] [--disk]
//! uindex-cli load    <db-dir> <data.udata>
//! uindex-cli query   <db-dir> '<uql>'
//! uindex-cli explain <db-dir> '<uql>' [--json]
//! uindex-cli info    <db-dir>
//! uindex-cli check   <db-dir>
//! uindex-cli repair  <db-dir>
//! uindex-cli churn   <db-dir> <Class> <Attr> <n-commits>
//! uindex-cli serve   <db-dir> [--port N] [--workers N] [--max-inflight N]
//!                             [--shutdown-file PATH] [--slow-query-us N]
//!                             [--sample-interval-ms N] [--read-deadline-ms N]
//! uindex-cli top     <addr>   [--window N] [--once] [--json]
//! uindex-cli slow    <addr>
//! ```
//!
//! `new --disk` creates a file-backed, WAL-protected database; the other
//! commands auto-detect the tier from the directory's files, so the same
//! invocations work on both. On the disk tier, `load` commits and
//! checkpoints; opening replays the WAL, scrubs checksums and verifies
//! the tree before serving (any salvage is reported on stderr).
//!
//! `explain` runs EXPLAIN ANALYZE: it executes the query and prints the
//! translated plan, the executed cost counters and the phase span tree,
//! as text or (with `--json`) as a machine-readable report.
//!
//! `check` scrubs every index page (checksum trailers), verifies the
//! B-tree structurally, and cross-checks the entries against the object
//! store; it exits non-zero when damage is found. `repair` rebuilds the
//! index from the object store (the source of truth) via the bulk loader.
//!
//! `churn` (disk only) runs a commit-per-object write loop — the crash
//! smoke's target: SIGKILL it mid-commit, reopen, `check` must be green.
//!
//! `serve` opens the database read-only (either tier), starts the UQL
//! wire-protocol server (see the `serve` crate) on the given port (0 =
//! ephemeral; the chosen address is printed as `listening on ADDR`), and
//! runs until the `--shutdown-file` path appears — the orchestration
//! hook: touch the file, the server drains and prints its summary.
//!
//! `top` connects to a *running* server and polls the `Stats` frame every
//! second, rendering a one-screen live dashboard (plain ANSI). `--once`
//! polls a single time and exits; with `--json` it prints the raw
//! `StatsReply` document instead — the scripting/CI entry point. `slow`
//! dumps the server's slow-query log: each retained entry's summary line
//! followed by its full `Trace` document (the after-the-fact EXPLAIN
//! ANALYZE). Both talk to an address, not a db-dir — they observe a live
//! process and never open the database files.

use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

use objstore::Value;
use pagestore::PageStore;
use schema::AttrType;
use uindex::{Database, DiskDatabase, DiskOptions};
use uindex_cli::{build_database, build_database_on_disk, load_data};

/// Set by the SIGINT/SIGTERM handler; `serve` polls it and drains — the
/// same graceful path as the shutdown file.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

/// Route SIGINT and SIGTERM to the drain flag. Raw `signal(2)` via FFI —
/// no crate dependency, and an atomic store is async-signal-safe.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn open_disk(dir: &str) -> Result<DiskDatabase, String> {
    let (db, report) = DiskDatabase::open(Path::new(dir)).map_err(|e| e.to_string())?;
    if let Some(r) = &report.recovery {
        if r.truncated() {
            eprintln!(
                "recovery: dropped {} uncommitted record(s), {} corrupt tail byte(s)",
                r.dropped_records, r.corrupt_tail_bytes
            );
        }
    }
    if report.rebuilt {
        eprintln!("salvage: index rebuilt from the object snapshot");
    }
    Ok(db)
}

fn print_hits<P: PageStore>(db: &Database<P>, hits: &[uindex::QueryHit]) {
    for h in hits {
        let objs: Vec<String> = h
            .key
            .path
            .iter()
            .map(|e| {
                let class = db
                    .index()
                    .encoding()
                    .class_by_code(&e.code)
                    .map(|c| db.schema().class_name(c).to_string())
                    .unwrap_or_else(|| "?".into());
                format!("{}={}", class, e.oid)
            })
            .collect();
        println!("{:?}\t{}", h.key.value, objs.join("\t"));
    }
}

fn cmd_query<P: PageStore>(db: &mut Database<P>, uql: &str) -> Result<(), String> {
    let (hits, stats) = db.query_uql(uql).map_err(|e| e.to_string())?;
    print_hits(db, &hits);
    eprintln!(
        "{} hits, {} pages read, {} seeks",
        hits.len(),
        stats.pages_read,
        stats.seeks
    );
    Ok(())
}

fn cmd_explain<P: PageStore>(db: &mut Database<P>, uql: &str, json: bool) -> Result<(), String> {
    let report = db.explain_uql(uql).map_err(|e| e.to_string())?;
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }
    Ok(())
}

fn cmd_info<P: PageStore>(db: &mut Database<P>) -> Result<(), String> {
    println!("classes:");
    for class in db.schema().class_ids() {
        let code = db
            .index()
            .encoding()
            .code(class)
            .map(|c| c.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "  {:<24} code {:<12} {} direct objects",
            db.schema().class_name(class),
            code,
            db.store().extent(class).len()
        );
    }
    println!("indexes:");
    for (i, spec) in db.index().specs().iter().enumerate() {
        let path: Vec<&str> = spec
            .positions
            .iter()
            .map(|p| db.schema().class_name(p.class))
            .collect();
        println!("  [{i}] {} over {}", spec.name, path.join("/"));
    }
    let stats = db.index_mut().verify().map_err(|e| e.to_string())?;
    println!(
        "B-tree: {} entries, {} nodes ({} leaves), height {}",
        stats.entries,
        stats.total_nodes(),
        stats.leaf_nodes,
        stats.height
    );
    Ok(())
}

fn cmd_check<P: pagestore::Scrubbable>(db: &mut Database<P>, dir: &str) -> Result<(), String> {
    let report = db.check().map_err(|e| e.to_string())?;
    println!("scrub:   {} pages examined", report.scrub.pages);
    for err in &report.scrub.errors {
        println!("  damaged: {err}");
    }
    match &report.tree_error {
        None => println!("tree:    ok"),
        Some(e) => println!("tree:    FAILED: {e}"),
    }
    println!(
        "content: {}",
        if report.content_ok {
            "matches object store"
        } else {
            "MISMATCH against object store"
        }
    );
    if report.clean() {
        println!("status:  clean");
        Ok(())
    } else {
        println!("status:  QUARANTINED (queries degrade to object-store scans)");
        Err(format!(
            "integrity check failed: {} damaged page(s); run `uindex-cli repair {dir}`",
            report.scrub.errors.len()
        ))
    }
}

/// Serve a database until the shutdown file appears or SIGINT/SIGTERM
/// arrives, then drain and print the lifetime summary. The server runs
/// over a fallback-armed reader, so storage faults degrade answers to
/// object-store scans instead of killing queries; while quarantined, a
/// once-per-second health probe re-runs the integrity check and lifts
/// the quarantine as soon as the store reads clean again.
fn cmd_serve<P: pagestore::Scrubbable + Send + Sync + 'static>(
    db: &mut Database<P>,
    options: serve::ServeOptions,
    shutdown_file: Option<&str>,
) -> Result<(), String> {
    install_signal_handlers();
    let server =
        serve::Server::start(db.reader_with_fallback(), options).map_err(|e| e.to_string())?;
    println!("listening on {}", server.local_addr());
    let mut ticks: u64 = 0;
    let drain_reason = loop {
        if SIGNALLED.load(Ordering::SeqCst) {
            break "signal received".to_string();
        }
        if let Some(path) = shutdown_file {
            if Path::new(path).exists() {
                break format!("shutdown file {path} appeared");
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
        ticks += 1;
        if ticks.is_multiple_of(10) && db.quarantined() {
            // Health probe: a clean check lifts the quarantine live.
            match db.check() {
                Ok(r) if r.clean() => {
                    eprintln!("health probe: integrity check clean; quarantine lifted")
                }
                Ok(r) => eprintln!(
                    "health probe: still degraded ({} damaged page(s))",
                    r.scrub.errors.len()
                ),
                Err(e) => eprintln!("health probe: check failed: {e}"),
            }
        }
    };
    eprintln!("{drain_reason}; draining");
    let report = server.shutdown();
    let s = &report.stats;
    println!(
        "served {} requests ({} queries, {} shed, {} proto errors, {} degraded, {} rows) \
         over {} connections; plan cache {} hits / {} misses",
        s.requests,
        s.queries,
        s.shed,
        s.proto_errors,
        s.degraded_answers,
        s.rows_sent,
        s.connections,
        s.plan_cache_hits,
        s.plan_cache_misses
    );
    Ok(())
}

/// JSON path lookup helpers for the StatsReply document.
fn jget<'a>(v: &'a telemetry::json::Json, path: &[&str]) -> Option<&'a telemetry::json::Json> {
    let mut cur = v;
    for key in path {
        cur = cur.get(key)?;
    }
    Some(cur)
}

fn jf64(v: &telemetry::json::Json, path: &[&str]) -> f64 {
    jget(v, path).and_then(|x| x.as_f64()).unwrap_or(0.0)
}

fn ju64(v: &telemetry::json::Json, path: &[&str]) -> u64 {
    jget(v, path).and_then(|x| x.as_u64()).unwrap_or(0)
}

/// Render one StatsReply as the `top` dashboard screen.
fn render_top(addr: &str, v: &telemetry::json::Json) {
    println!(
        "uindex top — {addr}    tick {} (interval {} ms)",
        ju64(v, &["tick"]),
        ju64(v, &["interval_ms"])
    );
    println!(
        "window {}s ({} ticks): qps {:.1}  rows/s {:.1}  \
         query µs p50 {} / p99 {} / p999 {} (mean {})",
        ju64(v, &["window", "requested_s"]),
        ju64(v, &["window", "ticks"]),
        jf64(v, &["window", "qps"]),
        jf64(v, &["window", "rows_per_s"]),
        ju64(v, &["window", "query_us", "p50_us"]),
        ju64(v, &["window", "query_us", "p99_us"]),
        ju64(v, &["window", "query_us", "p999_us"]),
        ju64(v, &["window", "query_us", "mean_us"]),
    );
    println!(
        "pool hit rate {:.1}% ({} hits / {} misses)    plan cache {:.1}% ({} / {})",
        jf64(v, &["window", "pool", "hit_rate"]) * 100.0,
        ju64(v, &["window", "pool", "hits"]),
        ju64(v, &["window", "pool", "misses"]),
        jf64(v, &["live", "plan_cache_hit_rate"]) * 100.0,
        ju64(v, &["live", "plan_cache_hits"]),
        ju64(v, &["live", "plan_cache_misses"]),
    );
    let degraded = jget(v, &["live", "degraded"])
        .and_then(|d| d.as_bool())
        .unwrap_or(false);
    println!(
        "live: inflight {}/{}  queued {}  shed {}  queries {}  conns {}  \
         proto-errors {}  deadline-closed {}  degraded-answers {}{}",
        ju64(v, &["live", "inflight"]),
        ju64(v, &["live", "max_inflight"]),
        ju64(v, &["live", "queued"]),
        ju64(v, &["live", "shed"]),
        ju64(v, &["live", "queries"]),
        ju64(v, &["live", "connections"]),
        ju64(v, &["live", "proto_errors"]),
        ju64(v, &["live", "deadline_closed"]),
        ju64(v, &["live", "degraded_answers"]),
        if degraded { "  [DEGRADED]" } else { "" },
    );
    if let Some(workers) = v.get("workers").and_then(|w| w.as_arr()) {
        let cells: Vec<String> = workers
            .iter()
            .enumerate()
            .map(|(i, w)| {
                format!(
                    "w{i}: {}q {}ms",
                    ju64(w, &["queries"]),
                    ju64(w, &["busy_us"]) / 1000
                )
            })
            .collect();
        println!("workers: {}", cells.join("  "));
    }
    if let Some(slow) = v.get("slow").and_then(|s| s.as_arr()) {
        println!("slow queries ({}):", slow.len());
        for entry in slow.iter().take(8) {
            println!(
                "  id {:<6} {:>8} µs  {:>6} rows  {}",
                ju64(entry, &["id"]),
                ju64(entry, &["micros"]),
                ju64(entry, &["rows"]),
                jget(entry, &["uql"])
                    .and_then(|u| u.as_str())
                    .unwrap_or("?"),
            );
        }
    }
}

/// Poll a running server's Stats frame and render the live dashboard.
fn cmd_top(addr: &str, window_s: u32, once: bool, json: bool) -> Result<(), String> {
    let mut client = serve::Client::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    loop {
        let doc = client.stats(window_s).map_err(|e| e.to_string())?;
        if json {
            println!("{doc}");
        } else {
            let v = telemetry::json::parse(&doc).map_err(|e| format!("bad StatsReply: {e}"))?;
            if !once {
                // Clear screen + home, plain ANSI.
                print!("\x1b[2J\x1b[H");
            }
            render_top(addr, &v);
        }
        if once {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs(1));
    }
}

/// Dump a running server's slow-query log: each summary line followed by
/// the full Trace document.
fn cmd_slow(addr: &str) -> Result<(), String> {
    let mut client = serve::Client::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    let doc = client.stats(0).map_err(|e| e.to_string())?;
    let v = telemetry::json::parse(&doc).map_err(|e| format!("bad StatsReply: {e}"))?;
    let slow = v.get("slow").and_then(|s| s.as_arr()).unwrap_or(&[]);
    println!("slow-query log: {} entries", slow.len());
    for entry in slow {
        let id = ju64(entry, &["id"]);
        println!(
            "-- id {id}: {} µs, {} rows, {}",
            ju64(entry, &["micros"]),
            ju64(entry, &["rows"]),
            jget(entry, &["uql"])
                .and_then(|u| u.as_str())
                .unwrap_or("?"),
        );
        match client.trace(id) {
            Ok(trace) => println!("{trace}"),
            // The entry can be evicted between Stats and Trace; keep going.
            Err(e) => println!("  (trace unavailable: {e})"),
        }
    }
    Ok(())
}

fn run(args: &[String]) -> Result<(), String> {
    let usage =
        "usage: uindex-cli <new|load|query|explain|info|check|repair|churn|serve|top|slow> ...";
    match args.first().map(String::as_str) {
        Some("new") => {
            let mut rest: Vec<&String> = args[1..].iter().collect();
            let disk = rest
                .iter()
                .position(|a| a.as_str() == "--disk")
                .map(|i| {
                    rest.remove(i);
                })
                .is_some();
            let (dir, schema_path, data_path) = match rest.as_slice() {
                [dir, schema] => (dir.as_str(), schema.as_str(), None),
                [dir, schema, data] => (dir.as_str(), schema.as_str(), Some(data.as_str())),
                _ => {
                    return Err(
                        "usage: uindex-cli new <db-dir> <schema.uschema> [data.udata] [--disk]"
                            .into(),
                    )
                }
            };
            let schema_text =
                std::fs::read_to_string(schema_path).map_err(|e| format!("{schema_path}: {e}"))?;
            let data_text = match data_path {
                Some(p) => Some(std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?),
                None => None,
            };
            if disk {
                let db = build_database_on_disk(
                    &schema_text,
                    data_text.as_deref(),
                    Path::new(dir),
                    DiskOptions::default(),
                )
                .map_err(|e| e.to_string())?;
                println!(
                    "created {dir} (on disk): {} classes, {} indexes, {} objects",
                    db.schema().num_classes(),
                    db.index().specs().len(),
                    db.store().len()
                );
                db.close().map_err(|e| e.to_string())?;
            } else {
                let db = build_database(&schema_text, data_text.as_deref())
                    .map_err(|e| e.to_string())?;
                db.save(Path::new(dir)).map_err(|e| e.to_string())?;
                println!(
                    "created {dir}: {} classes, {} indexes, {} objects",
                    db.schema().num_classes(),
                    db.index().specs().len(),
                    db.store().len()
                );
            }
            Ok(())
        }
        Some("load") => {
            let [_, dir, data_path] = args else {
                return Err("usage: uindex-cli load <db-dir> <data.udata>".into());
            };
            let data =
                std::fs::read_to_string(data_path).map_err(|e| format!("{data_path}: {e}"))?;
            if DiskDatabase::exists(Path::new(dir)) {
                let mut db = open_disk(dir)?;
                let handles = load_data(&mut db, &data).map_err(|e| e.to_string())?;
                db.checkpoint().map_err(|e| e.to_string())?;
                println!("loaded {} objects into {dir}", handles.len());
            } else {
                let mut db = Database::open(Path::new(dir)).map_err(|e| e.to_string())?;
                let handles = load_data(&mut db, &data).map_err(|e| e.to_string())?;
                db.save(Path::new(dir)).map_err(|e| e.to_string())?;
                println!("loaded {} objects into {dir}", handles.len());
            }
            Ok(())
        }
        Some("query") => {
            let [_, dir, uql] = args else {
                return Err("usage: uindex-cli query <db-dir> '<uql>'".into());
            };
            if DiskDatabase::exists(Path::new(dir)) {
                cmd_query(&mut *open_disk(dir)?, uql)
            } else {
                let mut db = Database::open(Path::new(dir)).map_err(|e| e.to_string())?;
                cmd_query(&mut db, uql)
            }
        }
        Some("explain") => {
            let (dir, uql, json) = match args {
                [_, dir, uql] => (dir, uql, false),
                [_, dir, uql, flag] if flag == "--json" => (dir, uql, true),
                _ => return Err("usage: uindex-cli explain <db-dir> '<uql>' [--json]".into()),
            };
            if DiskDatabase::exists(Path::new(dir)) {
                cmd_explain(&mut *open_disk(dir)?, uql, json)
            } else {
                let mut db = Database::open(Path::new(dir)).map_err(|e| e.to_string())?;
                cmd_explain(&mut db, uql, json)
            }
        }
        Some("info") => {
            let [_, dir] = args else {
                return Err("usage: uindex-cli info <db-dir>".into());
            };
            if DiskDatabase::exists(Path::new(dir)) {
                cmd_info(&mut *open_disk(dir)?)
            } else {
                let mut db = Database::open(Path::new(dir)).map_err(|e| e.to_string())?;
                cmd_info(&mut db)
            }
        }
        Some("check") => {
            let [_, dir] = args else {
                return Err("usage: uindex-cli check <db-dir>".into());
            };
            if DiskDatabase::exists(Path::new(dir)) {
                cmd_check(&mut *open_disk(dir)?, dir)
            } else {
                let mut db = Database::open(Path::new(dir)).map_err(|e| e.to_string())?;
                cmd_check(&mut db, dir)
            }
        }
        Some("repair") => {
            let [_, dir] = args else {
                return Err("usage: uindex-cli repair <db-dir>".into());
            };
            if DiskDatabase::exists(Path::new(dir)) {
                let mut db = open_disk(dir)?;
                let entries = db.repair().map_err(|e| e.to_string())?;
                db.close().map_err(|e| e.to_string())?;
                println!("rebuilt index from object store: {entries} entries, verified");
            } else {
                let mut db = Database::open(Path::new(dir)).map_err(|e| e.to_string())?;
                let entries = db.repair().map_err(|e| e.to_string())?;
                db.save(Path::new(dir)).map_err(|e| e.to_string())?;
                println!("rebuilt index from object store: {entries} entries, verified");
            }
            Ok(())
        }
        Some("serve") => {
            let rest = &args[1..];
            let Some(dir) = rest.first().filter(|a| !a.starts_with("--")) else {
                return Err("usage: uindex-cli serve <db-dir> [--port N] [--workers N] \
                     [--max-inflight N] [--shutdown-file PATH]"
                    .into());
            };
            let flag = |name: &str| {
                rest.iter()
                    .position(|a| a == name)
                    .and_then(|i| rest.get(i + 1).cloned())
            };
            let port: u16 = match flag("--port") {
                Some(p) => p.parse().map_err(|_| format!("bad port {p:?}"))?,
                None => 0,
            };
            let mut options = serve::ServeOptions {
                addr: format!("127.0.0.1:{port}"),
                ..serve::ServeOptions::default()
            };
            if let Some(w) = flag("--workers") {
                options.workers = w.parse().map_err(|_| format!("bad worker count {w:?}"))?;
            }
            if let Some(m) = flag("--max-inflight") {
                options.max_inflight = m
                    .parse()
                    .map_err(|_| format!("bad in-flight bound {m:?}"))?;
            }
            if let Some(t) = flag("--slow-query-us") {
                options.slow_query_us = t
                    .parse()
                    .map_err(|_| format!("bad slow-query threshold {t:?}"))?;
            }
            if let Some(ms) = flag("--sample-interval-ms") {
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| format!("bad sample interval {ms:?}"))?;
                options.sample_interval = std::time::Duration::from_millis(ms.max(1));
            }
            if let Some(ms) = flag("--read-deadline-ms") {
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| format!("bad read deadline {ms:?}"))?;
                options.read_deadline = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            let shutdown_file = flag("--shutdown-file");
            if DiskDatabase::exists(Path::new(dir.as_str())) {
                let mut db = open_disk(dir)?;
                cmd_serve(&mut db, options, shutdown_file.as_deref())
            } else {
                let mut db = Database::open(Path::new(dir.as_str())).map_err(|e| e.to_string())?;
                cmd_serve(&mut db, options, shutdown_file.as_deref())
            }
        }
        Some("top") => {
            let rest = &args[1..];
            let Some(addr) = rest.first().filter(|a| !a.starts_with("--")) else {
                return Err("usage: uindex-cli top <addr> [--window N] [--once] [--json]".into());
            };
            let window_s: u32 = match rest.iter().position(|a| a == "--window") {
                Some(i) => {
                    let w = rest
                        .get(i + 1)
                        .ok_or_else(|| "missing value for --window".to_string())?;
                    w.parse().map_err(|_| format!("bad window {w:?}"))?
                }
                None => 10,
            };
            let once = rest.iter().any(|a| a == "--once");
            let json = rest.iter().any(|a| a == "--json");
            cmd_top(addr, window_s, once, json)
        }
        Some("slow") => {
            let [_, addr] = args else {
                return Err("usage: uindex-cli slow <addr>".into());
            };
            cmd_slow(addr)
        }
        Some("churn") => {
            let [_, dir, class_name, attr_name, n] = args else {
                return Err("usage: uindex-cli churn <db-dir> <Class> <Attr> <n-commits>".into());
            };
            let n: u64 = n.parse().map_err(|_| format!("bad commit count {n:?}"))?;
            if !DiskDatabase::exists(Path::new(dir)) {
                return Err(format!("{dir} is not an on-disk database"));
            }
            let mut db = open_disk(dir)?;
            let class = db
                .schema()
                .class_by_name(class_name)
                .ok_or_else(|| format!("unknown class {class_name:?}"))?;
            let (decl, attr) = db
                .schema()
                .resolve_attr(class, attr_name)
                .ok_or_else(|| format!("unknown attribute {class_name}.{attr_name}"))?;
            let ty = db.schema().attr_type(decl, attr);
            for i in 0..n {
                let oid = db.create_object(class).map_err(|e| e.to_string())?;
                let value = match ty {
                    AttrType::Int => Value::Int(i as i64),
                    AttrType::Str => Value::Str(format!("churn-{i}")),
                    _ => return Err("churn needs an int or str attribute".into()),
                };
                db.set_attr(oid, attr_name, value)
                    .map_err(|e| e.to_string())?;
                db.commit().map_err(|e| e.to_string())?;
                println!("commit {i}");
            }
            db.close().map_err(|e| e.to_string())?;
            Ok(())
        }
        _ => Err(usage.into()),
    }
}
