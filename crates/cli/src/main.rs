//! The `uindex-cli` binary. Commands:
//!
//! ```text
//! uindex-cli new     <db-dir> <schema.uschema> [data.udata]
//! uindex-cli load    <db-dir> <data.udata>
//! uindex-cli query   <db-dir> '<uql>'
//! uindex-cli explain <db-dir> '<uql>' [--json]
//! uindex-cli info    <db-dir>
//! uindex-cli check   <db-dir>
//! uindex-cli repair  <db-dir>
//! ```
//!
//! `explain` runs EXPLAIN ANALYZE: it executes the query and prints the
//! translated plan, the executed cost counters and the phase span tree,
//! as text or (with `--json`) as a machine-readable report.
//!
//! `check` scrubs every index page (checksum trailers), verifies the
//! B-tree structurally, and cross-checks the entries against the object
//! store; it exits non-zero when damage is found. `repair` rebuilds the
//! index from the object store (the source of truth) via the bulk loader.

use std::path::Path;
use std::process::ExitCode;

use uindex::Database;
use uindex_cli::{build_database, load_data};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let usage = "usage: uindex-cli <new|load|query|explain|info|check|repair> ...";
    match args.first().map(String::as_str) {
        Some("new") => {
            let [_, dir, schema_path, rest @ ..] = args else {
                return Err("usage: uindex-cli new <db-dir> <schema.uschema> [data.udata]".into());
            };
            let schema_text =
                std::fs::read_to_string(schema_path).map_err(|e| format!("{schema_path}: {e}"))?;
            let data_text = match rest {
                [data_path] => Some(
                    std::fs::read_to_string(data_path).map_err(|e| format!("{data_path}: {e}"))?,
                ),
                [] => None,
                _ => return Err("too many arguments".into()),
            };
            let db =
                build_database(&schema_text, data_text.as_deref()).map_err(|e| e.to_string())?;
            db.save(Path::new(dir)).map_err(|e| e.to_string())?;
            println!(
                "created {dir}: {} classes, {} indexes, {} objects",
                db.schema().num_classes(),
                db.index().specs().len(),
                db.store().len()
            );
            Ok(())
        }
        Some("load") => {
            let [_, dir, data_path] = args else {
                return Err("usage: uindex-cli load <db-dir> <data.udata>".into());
            };
            let mut db = Database::open(Path::new(dir)).map_err(|e| e.to_string())?;
            let data =
                std::fs::read_to_string(data_path).map_err(|e| format!("{data_path}: {e}"))?;
            let handles = load_data(&mut db, &data).map_err(|e| e.to_string())?;
            db.save(Path::new(dir)).map_err(|e| e.to_string())?;
            println!("loaded {} objects into {dir}", handles.len());
            Ok(())
        }
        Some("query") => {
            let [_, dir, uql] = args else {
                return Err("usage: uindex-cli query <db-dir> '<uql>'".into());
            };
            let mut db = Database::open(Path::new(dir)).map_err(|e| e.to_string())?;
            let (hits, stats) = db.query_uql(uql).map_err(|e| e.to_string())?;
            for h in &hits {
                let objs: Vec<String> = h
                    .key
                    .path
                    .iter()
                    .map(|e| {
                        let class = db
                            .index()
                            .encoding()
                            .class_by_code(&e.code)
                            .map(|c| db.schema().class_name(c).to_string())
                            .unwrap_or_else(|| "?".into());
                        format!("{}={}", class, e.oid)
                    })
                    .collect();
                println!("{:?}\t{}", h.key.value, objs.join("\t"));
            }
            eprintln!(
                "{} hits, {} pages read, {} seeks",
                hits.len(),
                stats.pages_read,
                stats.seeks
            );
            Ok(())
        }
        Some("explain") => {
            let (dir, uql, json) = match args {
                [_, dir, uql] => (dir, uql, false),
                [_, dir, uql, flag] if flag == "--json" => (dir, uql, true),
                _ => return Err("usage: uindex-cli explain <db-dir> '<uql>' [--json]".into()),
            };
            let mut db = Database::open(Path::new(dir)).map_err(|e| e.to_string())?;
            let report = db.explain_uql(uql).map_err(|e| e.to_string())?;
            if json {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.render_text());
            }
            Ok(())
        }
        Some("info") => {
            let [_, dir] = args else {
                return Err("usage: uindex-cli info <db-dir>".into());
            };
            let mut db = Database::open(Path::new(dir)).map_err(|e| e.to_string())?;
            println!("classes:");
            for class in db.schema().class_ids() {
                let code = db
                    .index()
                    .encoding()
                    .code(class)
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "-".into());
                println!(
                    "  {:<24} code {:<12} {} direct objects",
                    db.schema().class_name(class),
                    code,
                    db.store().extent(class).len()
                );
            }
            println!("indexes:");
            for (i, spec) in db.index().specs().iter().enumerate() {
                let path: Vec<&str> = spec
                    .positions
                    .iter()
                    .map(|p| db.schema().class_name(p.class))
                    .collect();
                println!("  [{i}] {} over {}", spec.name, path.join("/"));
            }
            let stats = db.index_mut().verify().map_err(|e| e.to_string())?;
            println!(
                "B-tree: {} entries, {} nodes ({} leaves), height {}",
                stats.entries,
                stats.total_nodes(),
                stats.leaf_nodes,
                stats.height
            );
            Ok(())
        }
        Some("check") => {
            let [_, dir] = args else {
                return Err("usage: uindex-cli check <db-dir>".into());
            };
            let mut db = Database::open(Path::new(dir)).map_err(|e| e.to_string())?;
            let report = db.check().map_err(|e| e.to_string())?;
            println!("scrub:   {} pages examined", report.scrub.pages);
            for err in &report.scrub.errors {
                println!("  damaged: {err}");
            }
            match &report.tree_error {
                None => println!("tree:    ok"),
                Some(e) => println!("tree:    FAILED: {e}"),
            }
            println!(
                "content: {}",
                if report.content_ok {
                    "matches object store"
                } else {
                    "MISMATCH against object store"
                }
            );
            if report.clean() {
                println!("status:  clean");
                Ok(())
            } else {
                println!("status:  QUARANTINED (queries degrade to object-store scans)");
                Err(format!(
                    "integrity check failed: {} damaged page(s); run `uindex-cli repair {dir}`",
                    report.scrub.errors.len()
                ))
            }
        }
        Some("repair") => {
            let [_, dir] = args else {
                return Err("usage: uindex-cli repair <db-dir>".into());
            };
            let mut db = Database::open(Path::new(dir)).map_err(|e| e.to_string())?;
            let entries = db.repair().map_err(|e| e.to_string())?;
            db.save(Path::new(dir)).map_err(|e| e.to_string())?;
            println!("rebuilt index from object store: {entries} entries, verified");
            Ok(())
        }
        _ => Err(usage.into()),
    }
}
