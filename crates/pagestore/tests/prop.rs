//! Property tests: the buffer pool (under arbitrary operation sequences and
//! tiny capacities) must behave exactly like a plain map of pages, and the
//! per-query distinct-page accounting must match an exact reference count.

use std::collections::{HashMap, HashSet};

use pagestore::{BufferPool, MemStore, PageId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Allocate,
    Free(usize),      // index into live list
    Write(usize, u8), // page, fill byte
    Read(usize),
    BeginQuery,
    Flush,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Allocate),
        1 => (0usize..64).prop_map(Op::Free),
        4 => ((0usize..64), any::<u8>()).prop_map(|(p, b)| Op::Write(p, b)),
        4 => (0usize..64).prop_map(Op::Read),
        1 => Just(Op::BeginQuery),
        1 => Just(Op::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pool_matches_model(
        ops in proptest::collection::vec(arb_op(), 1..200),
        capacity in 1usize..8,
    ) {
        let pool = BufferPool::new(MemStore::new(64), capacity);
        let mut model: HashMap<PageId, u8> = HashMap::new();
        let mut live: Vec<PageId> = Vec::new();
        let mut query_pages: HashSet<PageId> = HashSet::new();
        for op in ops {
            match op {
                Op::Allocate => {
                    let (id, page) = pool.allocate().unwrap();
                    prop_assert!(page.read().iter().all(|&b| b == 0), "fresh page zeroed");
                    drop(page);
                    query_pages.insert(id);
                    model.insert(id, 0);
                    live.push(id);
                }
                Op::Free(i) if !live.is_empty() => {
                    let id = live.remove(i % live.len());
                    pool.free(id).unwrap();
                    model.remove(&id);
                    // The distinct count keys on page id per query epoch:
                    // freeing does not un-count, and a re-allocation of the
                    // same id in the same query is not re-counted.
                }
                Op::Free(_) => {}
                Op::Write(i, b) if !live.is_empty() => {
                    let id = live[i % live.len()];
                    let page = pool.fetch(id).unwrap();
                    page.write().fill(b);
                    drop(page);
                    query_pages.insert(id);
                    model.insert(id, b);
                }
                Op::Write(..) => {}
                Op::Read(i) if !live.is_empty() => {
                    let id = live[i % live.len()];
                    let page = pool.fetch(id).unwrap();
                    let expected = model[&id];
                    prop_assert!(
                        page.read().iter().all(|&b| b == expected),
                        "page {id} content mismatch under eviction"
                    );
                    drop(page);
                    query_pages.insert(id);
                }
                Op::Read(_) => {}
                Op::BeginQuery => {
                    prop_assert_eq!(
                        pool.query_stats().distinct_pages as usize,
                        query_pages.len(),
                        "distinct-page accounting diverged"
                    );
                    pool.begin_query();
                    query_pages.clear();
                }
                Op::Flush => pool.flush().unwrap(),
            }
        }
        prop_assert_eq!(
            pool.query_stats().distinct_pages as usize,
            query_pages.len()
        );
        // Everything still readable with the right contents at the end.
        for id in live {
            let page = pool.fetch(id).unwrap();
            let expected = model[&id];
            prop_assert!(page.read().iter().all(|&b| b == expected));
        }
    }
}
