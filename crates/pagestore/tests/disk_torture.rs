//! Disk-stack recovery torture: sweep a crash across *every* operation
//! boundary of a scripted workload running on the full production stack
//! `WalStore<ChecksumStore<FaultStore<FileStore>>>` — real files, real
//! reopen — and assert the recovered store always matches a shadow model
//! of the last committed state, and that a checkpoint after recovery
//! leaves every on-disk page with a valid checksum trailer.
//!
//! This extends the PR-1/PR-4 `fault_torture` pattern from `MemStore` to
//! the durable tier: a "crash" here drops the whole stack (losing the WAL
//! overlay and the `FileStore`'s in-memory free list) and rebuilds it from
//! nothing but the files via [`pagestore::disk::open`].

use std::collections::{BTreeSet, HashMap, HashSet};
use std::path::{Path, PathBuf};

use pagestore::disk::{self, WAL_FILE};
use pagestore::{PageId, PageStore};

/// Exposed page size: the checksum layer adds its 16-byte trailer below.
const PS: usize = 112;

fn tmpdir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("disk_torture_{}_{}", std::process::id(), name));
    std::fs::remove_dir_all(&p).ok();
    p
}

/// Workload script. `Alloc` binds the next slot number; `Write`/`Free`
/// name slots, so the script is independent of the page ids the store
/// hands out at runtime. `Checkpoint` flushes the overlay to the file and
/// truncates the log — the recovery path then has both durable file state
/// *and* post-checkpoint log batches to reconcile.
#[derive(Debug, Clone, Copy)]
enum Op {
    Alloc,
    Write(usize, u8),
    Free(usize),
    Commit,
    Checkpoint,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic mix of allocations, overwrites, frees, commits and
/// (when `with_checkpoints`) checkpoints.
fn script(seed: u64, len: usize, with_checkpoints: bool) -> Vec<Op> {
    let mut rng = seed;
    let mut ops = Vec::with_capacity(len);
    let mut alive: Vec<usize> = Vec::new();
    let mut next_slot = 0;
    for _ in 0..len {
        let r = splitmix(&mut rng) % 12;
        let op = if alive.is_empty() || r < 4 {
            alive.push(next_slot);
            next_slot += 1;
            Op::Alloc
        } else if r < 8 {
            let s = alive[(splitmix(&mut rng) % alive.len() as u64) as usize];
            Op::Write(s, (splitmix(&mut rng) % 251) as u8 + 1)
        } else if r < 9 {
            let i = (splitmix(&mut rng) % alive.len() as u64) as usize;
            Op::Free(alive.swap_remove(i))
        } else if r < 11 || !with_checkpoints {
            Op::Commit
        } else {
            Op::Checkpoint
        };
        ops.push(op);
    }
    ops.push(Op::Commit);
    ops
}

/// State at the last commit: live page contents and committed frees.
#[derive(Default, Clone)]
struct Shadow {
    pages: HashMap<u32, Vec<u8>>,
    freed: HashSet<u32>,
}

/// Run `ops[..crash_at]` against a fresh disk stack in `dir`, crash
/// (drop everything), reopen from the files, and assert the recovered
/// state matches the shadow of the last commit. Odd boundaries also get a
/// torn garbage tail appended to the WAL, which replay must ignore.
fn crash_and_check(dir: &Path, ops: &[Op], crash_at: usize) {
    let mut stack = disk::create(dir, PS).unwrap();
    stack.set_group_commit(3); // batched fsyncs: replay still sees the bytes
    let mut slots: HashMap<usize, u32> = HashMap::new();
    let mut next_slot = 0;
    let mut pending = Shadow::default();
    let mut committed = Shadow::default();
    for op in &ops[..crash_at] {
        match *op {
            Op::Alloc => {
                let id = stack.allocate().unwrap();
                slots.insert(next_slot, id.0);
                next_slot += 1;
                pending.pages.insert(id.0, vec![0u8; PS]);
                pending.freed.remove(&id.0);
            }
            Op::Write(s, b) => {
                let id = slots[&s];
                let buf = vec![b; PS];
                stack.write(PageId(id), &buf).unwrap();
                pending.pages.insert(id, buf);
            }
            Op::Free(s) => {
                let id = slots[&s];
                stack.free(PageId(id)).unwrap();
                pending.pages.remove(&id);
                pending.freed.insert(id);
            }
            Op::Commit => {
                stack.commit().unwrap();
                committed = pending.clone();
            }
            Op::Checkpoint => {
                stack.checkpoint().unwrap();
                committed = pending.clone();
            }
        }
    }
    // Crash: drop the stack — WAL overlay and FileStore free list are
    // gone; only the files remain.
    drop(stack);
    if crash_at % 2 == 1 {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(WAL_FILE))
            .unwrap();
        f.write_all(&[0xDB, 0x01, 0xFF, 0x3C, 0x77]).unwrap();
    }

    let mut recovered = disk::open(dir)
        .unwrap_or_else(|e| panic!("reopen after crash at op {crash_at} failed: {e}"));
    assert!(
        recovered.recovery().is_some(),
        "crash at op {crash_at}: open must produce a recovery report"
    );
    let mut buf = vec![0u8; PS];
    for (&id, want) in &committed.pages {
        recovered.read(PageId(id), &mut buf).unwrap_or_else(|e| {
            panic!("crash at op {crash_at}: committed page {id} unreadable: {e}")
        });
        assert_eq!(
            &buf, want,
            "crash at op {crash_at}: committed page {id} content lost"
        );
    }
    for &id in &committed.freed {
        assert!(
            recovered.read(PageId(id), &mut buf).is_err(),
            "crash at op {crash_at}: committed free of page {id} forgotten"
        );
    }
    let live: BTreeSet<u32> = recovered.live_page_ids().into_iter().map(|p| p.0).collect();
    let want_live: BTreeSet<u32> = committed.pages.keys().copied().collect();
    assert_eq!(
        live, want_live,
        "crash at op {crash_at}: live page set diverged from shadow"
    );

    // Checkpoint the recovered state and scrub: every page that reached
    // the file must carry a valid trailer.
    recovered.checkpoint().unwrap();
    let report = disk::checksum_layer(&mut recovered).scrub();
    assert!(
        report.clean(),
        "crash at op {crash_at}: scrub found damage after recovery checkpoint: {report:?}"
    );
    drop(recovered);

    // Second-generation reopen: the checkpointed file alone (log is
    // truncated) must reproduce the same state.
    let mut second = disk::open(dir)
        .unwrap_or_else(|e| panic!("second reopen after crash at op {crash_at} failed: {e}"));
    assert_eq!(
        second.recovery().map(|r| r.replayed_batches),
        Some(0),
        "crash at op {crash_at}: checkpoint must leave nothing to replay"
    );
    for (&id, want) in &committed.pages {
        second.read(PageId(id), &mut buf).unwrap_or_else(|e| {
            panic!("crash at op {crash_at}: page {id} unreadable after checkpointed reopen: {e}")
        });
        assert_eq!(
            &buf, want,
            "crash at op {crash_at}: page {id} content lost across checkpointed reopen"
        );
    }
    let live2: BTreeSet<u32> = second.live_page_ids().into_iter().map(|p| p.0).collect();
    assert_eq!(
        live2, want_live,
        "crash at op {crash_at}: exact free-list reopen diverged from shadow"
    );
}

/// Crash at every op boundary of a commit-only script (no mid-script
/// checkpoints): recovery leans entirely on WAL replay plus the
/// manifest's truncate-unsynced-tail logic.
#[test]
fn crash_at_every_op_boundary_recovers_last_commit() {
    let ops = script(0xD15C_0001, 48, false);
    for crash_at in 0..=ops.len() {
        let dir = tmpdir(&format!("commit_only_{crash_at}"));
        crash_and_check(&dir, &ops, crash_at);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Crash at every op boundary of a script with interleaved checkpoints:
/// recovery must reconcile durable file state (exact free-list manifest)
/// with post-checkpoint log batches.
#[test]
fn crash_at_every_op_boundary_with_checkpoints() {
    let ops = script(0xD15C_0002, 48, true);
    assert!(
        ops.iter().any(|o| matches!(o, Op::Checkpoint)),
        "script must exercise mid-run checkpoints"
    );
    for crash_at in 0..=ops.len() {
        let dir = tmpdir(&format!("with_ckpt_{crash_at}"));
        crash_and_check(&dir, &ops, crash_at);
        std::fs::remove_dir_all(&dir).ok();
    }
}
