//! WAL recovery torture: sweep a crash across *every* operation boundary
//! of a scripted workload and a fault across *every* backing-store
//! operation of a checkpoint, asserting the reopened store always matches
//! a shadow model of the last committed state.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;

use pagestore::{Fault, FaultStore, MemStore, PageStore, WalStore};

const PS: usize = 128;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("fault_torture_{}_{}", std::process::id(), name));
    p
}

/// Workload script. `Alloc` binds the next slot number; `Write`/`Free`
/// name slots, so the script is independent of the page ids the store
/// hands out at runtime.
#[derive(Debug, Clone, Copy)]
enum Op {
    Alloc,
    Write(usize, u8),
    Free(usize),
    Commit,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic mix of allocations, overwrites, frees and commits.
fn script(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = seed;
    let mut ops = Vec::with_capacity(len);
    let mut alive: Vec<usize> = Vec::new();
    let mut next_slot = 0;
    for _ in 0..len {
        let r = splitmix(&mut rng) % 10;
        let op = if alive.is_empty() || r < 3 {
            alive.push(next_slot);
            next_slot += 1;
            Op::Alloc
        } else if r < 7 {
            let s = alive[(splitmix(&mut rng) % alive.len() as u64) as usize];
            Op::Write(s, (splitmix(&mut rng) % 251) as u8 + 1)
        } else if r < 8 {
            let i = (splitmix(&mut rng) % alive.len() as u64) as usize;
            Op::Free(alive.swap_remove(i))
        } else {
            Op::Commit
        };
        ops.push(op);
    }
    ops.push(Op::Commit);
    ops
}

/// State at the last commit: live page contents and committed frees.
#[derive(Default, Clone)]
struct Shadow {
    pages: HashMap<u32, Vec<u8>>,
    freed: HashSet<u32>,
}

/// Crash the WAL'd store at every op boundary of the script; after each
/// crash, reopen from the log and check the shadow of the last commit.
/// Odd boundaries additionally get a torn garbage tail appended to the
/// log, which replay must ignore.
#[test]
fn crash_at_every_op_boundary_recovers_last_commit() {
    let ops = script(0xC0FF_EE00, 70);
    for crash_at in 0..=ops.len() {
        let path = tmp(&format!("crash{crash_at}"));
        let _ = std::fs::remove_file(&path);
        let mut wal = WalStore::create(MemStore::new(PS), &path).unwrap();
        let mut slots: HashMap<usize, u32> = HashMap::new();
        let mut next_slot = 0;
        let mut pending = Shadow::default();
        let mut committed = Shadow::default();
        for op in &ops[..crash_at] {
            match *op {
                Op::Alloc => {
                    let id = wal.allocate().unwrap();
                    slots.insert(next_slot, id.0);
                    next_slot += 1;
                    pending.pages.insert(id.0, vec![0u8; PS]);
                    pending.freed.remove(&id.0);
                }
                Op::Write(s, b) => {
                    let id = slots[&s];
                    let buf = vec![b; PS];
                    wal.write(pagestore::PageId(id), &buf).unwrap();
                    pending.pages.insert(id, buf);
                }
                Op::Free(s) => {
                    let id = slots[&s];
                    wal.free(pagestore::PageId(id)).unwrap();
                    pending.pages.remove(&id);
                    pending.freed.insert(id);
                }
                Op::Commit => {
                    wal.commit().unwrap();
                    committed = pending.clone();
                }
            }
        }
        // Crash: drop the overlay without committing or checkpointing.
        let inner = wal.into_inner();
        if crash_at % 2 == 1 {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&[0xDB, 0x01, 0xFF, 0x3C, 0x77]).unwrap();
        }
        let mut recovered = WalStore::open(inner, &path)
            .unwrap_or_else(|e| panic!("reopen after crash at op {crash_at} failed: {e}"));
        let mut buf = vec![0u8; PS];
        for (&id, want) in &committed.pages {
            recovered
                .read(pagestore::PageId(id), &mut buf)
                .unwrap_or_else(|e| {
                    panic!("crash at op {crash_at}: committed page {id} unreadable: {e}")
                });
            assert_eq!(
                &buf, want,
                "crash at op {crash_at}: committed page {id} content lost"
            );
        }
        for &id in &committed.freed {
            assert!(
                recovered.read(pagestore::PageId(id), &mut buf).is_err(),
                "crash at op {crash_at}: committed free of page {id} forgotten"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

/// Run a fixed committed workload, then inject one fault at backing-store
/// operation `k` of the checkpoint, for every `k` until the checkpoint
/// outruns the schedule. A failed checkpoint must leave the store fully
/// recoverable — by retrying after repair (even `k`) or by crashing and
/// replaying the still-intact log (odd `k`).
fn checkpoint_fault_sweep(fault: Fault, tag: &str) {
    let mut completed_clean = false;
    for k in 0..200u64 {
        let path = tmp(&format!("ckpt_{tag}_{k}"));
        let _ = std::fs::remove_file(&path);
        let mut wal = WalStore::create(FaultStore::new(MemStore::new(PS)), &path).unwrap();
        let mut expected: HashMap<u32, Vec<u8>> = HashMap::new();
        let mut ids = Vec::new();
        for i in 0..6u8 {
            let id = wal.allocate().unwrap();
            let buf = vec![i + 10; PS];
            wal.write(id, &buf).unwrap();
            expected.insert(id.0, buf);
            ids.push(id);
        }
        wal.free(ids[2]).unwrap();
        let freed = ids[2];
        expected.remove(&freed.0);
        wal.commit().unwrap();

        let base = wal.inner().ops();
        wal.inner_mut().inject(base + k, fault);
        match wal.checkpoint() {
            Ok(()) => {
                // Every checkpoint operation (write, free, sync) propagates
                // injected faults, so success means the checkpoint finished
                // before reaching op base+k: the sweep has covered every
                // injection point.
                assert_eq!(
                    wal.inner().pending_faults(),
                    1,
                    "{tag}/{k}: fault swallowed"
                );
                completed_clean = true;
                wal.inner_mut().clear_faults();
                verify(&mut wal, &expected, freed, tag, k);
                assert_eq!(
                    std::fs::metadata(&path).unwrap().len(),
                    0,
                    "{tag}/{k}: clean checkpoint must truncate the log"
                );
            }
            Err(_) => {
                if k % 2 == 0 {
                    // Repair the disk and retry: re-applying the overlay is
                    // idempotent, so the second checkpoint must succeed.
                    wal.inner_mut().clear_faults();
                    wal.checkpoint()
                        .unwrap_or_else(|e| panic!("{tag}/{k}: retry after repair failed: {e}"));
                    verify(&mut wal, &expected, freed, tag, k);
                } else {
                    // Crash instead: unwrap down to the bare memory store
                    // (losing the overlay) and replay the log.
                    let mem = wal.into_inner().into_inner();
                    let mut rec = WalStore::open(mem, &path)
                        .unwrap_or_else(|e| panic!("{tag}/{k}: reopen failed: {e}"));
                    verify(&mut rec, &expected, freed, tag, k);
                }
            }
        }
        std::fs::remove_file(&path).ok();
        if completed_clean {
            return;
        }
    }
    panic!("{tag}: checkpoint never completed within 200 injected ops");
}

fn verify<S: PageStore>(
    store: &mut S,
    expected: &HashMap<u32, Vec<u8>>,
    freed: pagestore::PageId,
    tag: &str,
    k: u64,
) {
    let mut buf = vec![0u8; PS];
    for (&id, want) in expected {
        store
            .read(pagestore::PageId(id), &mut buf)
            .unwrap_or_else(|e| panic!("{tag}/{k}: page {id} unreadable after recovery: {e}"));
        assert_eq!(
            &buf, want,
            "{tag}/{k}: page {id} content wrong after recovery"
        );
    }
    assert!(
        store.read(freed, &mut buf).is_err(),
        "{tag}/{k}: freed page {freed:?} came back to life"
    );
}

#[test]
fn checkpoint_survives_io_error_at_every_op() {
    checkpoint_fault_sweep(Fault::IoError, "ioerr");
}

#[test]
fn checkpoint_survives_torn_write_at_every_op() {
    checkpoint_fault_sweep(Fault::TornWrite { bytes: 33 }, "torn");
}
