//! Checksummed page store: per-page CRC trailers that turn silent damage
//! into typed [`Error::Corruption`] with provenance.
//!
//! [`ChecksumStore`] wraps any [`PageStore`] and reserves the last
//! [`TRAILER_LEN`] bytes of every inner page for a verification trailer:
//!
//! ```text
//! offset  0..4   format tag   (u32 LE, "CHK1")
//! offset  4..8   page id      (u32 LE — catches misdirected writes)
//! offset  8..12  write epoch  (u32 LE — catches stale reads/lost writes)
//! offset 12..16  CRC32        (u32 LE over payload ++ trailer[0..12])
//! ```
//!
//! Callers see a page size [`TRAILER_LEN`] bytes smaller than the inner
//! store's; every `read` verifies the trailer and every `write` restamps
//! it. The three trailer fields catch the three silent-fault families:
//! the CRC catches bit rot and torn pages, the page id catches a write
//! that landed on the wrong page, and the epoch catches a read that
//! returned a page's pre-image (the store keeps the expected epoch per
//! page in memory, trusting the first epoch it sees for pages written
//! before this wrapper existed).
//!
//! [`ChecksumStore::scrub`] walks every live page and verifies it without
//! returning data — the background integrity pass behind `uindex-cli
//! check`.

use std::collections::HashMap;

use crate::crc::crc32;
use crate::error::{Error, Result};
use crate::page::{PageId, PAGE_SIZE_MIN};
use crate::store::PageStore;

/// Bytes of every inner page reserved for the verification trailer.
pub const TRAILER_LEN: usize = 16;

/// Trailer format tag ("CHK1").
const FORMAT_TAG: u32 = 0x314B_4843;

/// Outcome of a [`ChecksumStore::scrub`] pass.
#[derive(Debug, Default)]
pub struct ScrubReport {
    /// Live pages examined.
    pub pages: usize,
    /// Every verification failure found, one per damaged page; each
    /// [`Error::Corruption`] names the page and the mismatched field.
    pub errors: Vec<Error>,
}

impl ScrubReport {
    /// Whether every examined page verified.
    pub fn clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// A [`PageStore`] wrapper that verifies a CRC trailer on every read and
/// restamps it on every write. See the module docs for the layout.
pub struct ChecksumStore<S: PageStore> {
    inner: S,
    /// Expected write epoch per page. Written pages get an exact match
    /// requirement; unseen pages trust the first epoch read.
    epochs: HashMap<PageId, u32>,
    /// Full-size scratch buffer, reused across operations.
    scratch: Vec<u8>,
}

impl<S: PageStore> ChecksumStore<S> {
    /// Wrap `inner`, reserving [`TRAILER_LEN`] bytes per page.
    ///
    /// # Panics
    /// Panics if the exposed page size (`inner.page_size() - TRAILER_LEN`)
    /// would fall below [`PAGE_SIZE_MIN`].
    pub fn new(inner: S) -> Self {
        let exposed = inner.page_size() - TRAILER_LEN;
        assert!(
            exposed >= PAGE_SIZE_MIN,
            "exposed page size {exposed} below minimum {PAGE_SIZE_MIN}"
        );
        let scratch = vec![0u8; inner.page_size()];
        ChecksumStore {
            inner,
            epochs: HashMap::new(),
            scratch,
        }
    }

    /// The wrapped store, read-only.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped store. Writes made through this
    /// reference bypass trailer stamping — that is the point: tests use
    /// it to plant damage the trailer must catch.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwrap, discarding the expected-epoch table.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Verify the trailer of `full` (an inner-size page image) for `id`.
    /// Checks CRC, then format tag, then page id, then epoch; the first
    /// mismatch wins so the reported field is the root cause, not a
    /// knock-on (a payload bit flip fails the CRC before it can be
    /// misread as an epoch problem).
    fn verify(&mut self, id: PageId, full: &[u8]) -> Result<()> {
        let t = full.len() - TRAILER_LEN;
        let stored_crc = u32::from_le_bytes(full[t + 12..t + 16].try_into().unwrap());
        let computed_crc = crc32(&full[..t + 12]);
        if stored_crc != computed_crc {
            return Err(Error::Corruption {
                page: id,
                what: "crc",
                expected: computed_crc as u64,
                actual: stored_crc as u64,
            });
        }
        let tag = u32::from_le_bytes(full[t..t + 4].try_into().unwrap());
        if tag != FORMAT_TAG {
            return Err(Error::Corruption {
                page: id,
                what: "format",
                expected: FORMAT_TAG as u64,
                actual: tag as u64,
            });
        }
        let stored_id = u32::from_le_bytes(full[t + 4..t + 8].try_into().unwrap());
        if stored_id != id.0 {
            return Err(Error::Corruption {
                page: id,
                what: "page-id",
                expected: id.0 as u64,
                actual: stored_id as u64,
            });
        }
        let epoch = u32::from_le_bytes(full[t + 8..t + 12].try_into().unwrap());
        match self.epochs.get(&id) {
            Some(&want) if want != epoch => Err(Error::Corruption {
                page: id,
                what: "epoch",
                expected: want as u64,
                actual: epoch as u64,
            }),
            Some(_) => Ok(()),
            None => {
                // Trust-on-first-use for pages written before this wrapper
                // existed (e.g. a reopened file store).
                self.epochs.insert(id, epoch);
                Ok(())
            }
        }
    }

    /// Stamp the trailer of `full` (an inner-size page image) for `id`
    /// with `epoch` and a fresh CRC.
    fn stamp(full: &mut [u8], id: PageId, epoch: u32) {
        let t = full.len() - TRAILER_LEN;
        full[t..t + 4].copy_from_slice(&FORMAT_TAG.to_le_bytes());
        full[t + 4..t + 8].copy_from_slice(&id.0.to_le_bytes());
        full[t + 8..t + 12].copy_from_slice(&epoch.to_le_bytes());
        let crc = crc32(&full[..t + 12]);
        full[t + 12..t + 16].copy_from_slice(&crc.to_le_bytes());
    }

    /// Verify one live page without returning its data.
    pub fn scrub_page(&mut self, id: PageId) -> Result<()> {
        let mut full = std::mem::take(&mut self.scratch);
        let res = self.inner.read(id, &mut full);
        let res = res.and_then(|()| self.verify(id, &full));
        self.scratch = full;
        res
    }

    /// Walk every live page and verify its trailer, collecting all
    /// failures instead of stopping at the first: a scrub's job is to
    /// size the damage. Emits `pagestore.scrub.{runs,pages,errors}`.
    pub fn scrub(&mut self) -> ScrubReport {
        let mut report = ScrubReport::default();
        for id in self.inner.live_page_ids() {
            report.pages += 1;
            if let Err(e) = self.scrub_page(id) {
                report.errors.push(e);
            }
        }
        telemetry::counter("pagestore.scrub.runs").inc();
        telemetry::counter("pagestore.scrub.pages").add(report.pages as u64);
        telemetry::counter("pagestore.scrub.errors").add(report.errors.len() as u64);
        report
    }
}

/// A page-store stack containing a [`ChecksumStore`] layer that generic
/// code can scrub without knowing the exact stack shape. Implemented for
/// a bare checksummed stack and for one wrapped in a
/// [`crate::WalStore`] — scrub the latter only after a checkpoint, since
/// the scrub walks the *backing* pages, not the WAL overlay.
pub trait Scrubbable: PageStore {
    /// Verify every live backing page's trailer.
    fn scrub_pages(&mut self) -> ScrubReport;
}

impl<S: PageStore> Scrubbable for ChecksumStore<S> {
    fn scrub_pages(&mut self) -> ScrubReport {
        self.scrub()
    }
}

impl<S: PageStore> Scrubbable for crate::wal::WalStore<ChecksumStore<S>> {
    fn scrub_pages(&mut self) -> ScrubReport {
        self.inner_mut().scrub()
    }
}

impl<S: PageStore> PageStore for ChecksumStore<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size() - TRAILER_LEN
    }

    fn allocate(&mut self) -> Result<PageId> {
        let id = self.inner.allocate()?;
        // Stamp the zeroed page so its very first read verifies.
        let mut full = std::mem::take(&mut self.scratch);
        full.fill(0);
        Self::stamp(&mut full, id, 0);
        let res = self.inner.write(id, &full);
        self.scratch = full;
        res?;
        self.epochs.insert(id, 0);
        Ok(id)
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        self.inner.free(id)?;
        self.epochs.remove(&id);
        Ok(())
    }

    fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let exposed = self.page_size();
        if buf.len() != exposed {
            return Err(Error::BadPageSize {
                expected: exposed,
                got: buf.len(),
            });
        }
        let mut full = std::mem::take(&mut self.scratch);
        let res = self.inner.read(id, &mut full);
        let res = res.and_then(|()| self.verify(id, &full));
        if res.is_ok() {
            buf.copy_from_slice(&full[..exposed]);
        }
        self.scratch = full;
        res
    }

    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        let exposed = self.page_size();
        if buf.len() != exposed {
            return Err(Error::BadPageSize {
                expected: exposed,
                got: buf.len(),
            });
        }
        let epoch = self.epochs.get(&id).map_or(0, |e| e.wrapping_add(1));
        let mut full = std::mem::take(&mut self.scratch);
        full[..exposed].copy_from_slice(buf);
        Self::stamp(&mut full, id, epoch);
        let res = self.inner.write(id, &full);
        self.scratch = full;
        res?;
        self.epochs.insert(id, epoch);
        Ok(())
    }

    fn live_pages(&self) -> usize {
        self.inner.live_pages()
    }

    fn live_page_ids(&self) -> Vec<PageId> {
        self.inner.live_page_ids()
    }

    fn sync(&mut self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultStore};
    use crate::store::MemStore;

    fn fresh() -> ChecksumStore<MemStore> {
        ChecksumStore::new(MemStore::new(128 + TRAILER_LEN))
    }

    #[test]
    fn roundtrip_and_exposed_size() {
        let mut s = fresh();
        assert_eq!(s.page_size(), 128);
        let a = s.allocate().unwrap();
        let mut buf = vec![0u8; 128];
        // A fresh page reads back zeroed and verified.
        s.read(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0));
        buf[0] = 0xAB;
        s.write(a, &buf).unwrap();
        let mut out = vec![0u8; 128];
        s.read(a, &mut out).unwrap();
        assert_eq!(out, buf);
    }

    #[test]
    fn payload_bit_flip_is_caught_as_crc() {
        let mut s = fresh();
        let a = s.allocate().unwrap();
        s.write(a, &[7u8; 128]).unwrap();
        // Flip one payload bit under the trailer's nose.
        let mut full = vec![0u8; 128 + TRAILER_LEN];
        s.inner_mut().read(a, &mut full).unwrap();
        full[5] ^= 0x10;
        s.inner_mut().write(a, &full).unwrap();
        let mut out = vec![0u8; 128];
        match s.read(a, &mut out) {
            Err(Error::Corruption { page, what, .. }) => {
                assert_eq!(page, a);
                assert_eq!(what, "crc");
            }
            other => panic!("expected crc corruption, got {other:?}"),
        }
    }

    #[test]
    fn misdirected_content_is_caught_as_page_id() {
        let mut s = fresh();
        let a = s.allocate().unwrap();
        let b = s.allocate().unwrap();
        s.write(a, &[1u8; 128]).unwrap();
        s.write(b, &[2u8; 128]).unwrap();
        // b's sectors end up holding a's (internally consistent) page.
        let mut full = vec![0u8; 128 + TRAILER_LEN];
        s.inner_mut().read(a, &mut full).unwrap();
        s.inner_mut().write(b, &full).unwrap();
        let mut out = vec![0u8; 128];
        match s.read(b, &mut out) {
            Err(Error::Corruption { page, what, .. }) => {
                assert_eq!(page, b);
                assert_eq!(what, "page-id");
            }
            other => panic!("expected page-id corruption, got {other:?}"),
        }
    }

    #[test]
    fn stale_content_is_caught_as_epoch() {
        let mut s = fresh();
        let a = s.allocate().unwrap();
        s.write(a, &[1u8; 128]).unwrap();
        let mut old = vec![0u8; 128 + TRAILER_LEN];
        s.inner_mut().read(a, &mut old).unwrap();
        s.write(a, &[2u8; 128]).unwrap();
        // The old image comes back: valid CRC, right page, wrong epoch.
        s.inner_mut().write(a, &old).unwrap();
        let mut out = vec![0u8; 128];
        match s.read(a, &mut out) {
            Err(Error::Corruption { page, what, .. }) => {
                assert_eq!(page, a);
                assert_eq!(what, "epoch");
            }
            other => panic!("expected epoch corruption, got {other:?}"),
        }
    }

    #[test]
    fn scrub_finds_exactly_the_damaged_pages() {
        let mut s = fresh();
        let mut ids = Vec::new();
        for i in 0..8u8 {
            let id = s.allocate().unwrap();
            s.write(id, &[i; 128]).unwrap();
            ids.push(id);
        }
        assert!(s.scrub().clean());

        // Damage two pages below the checksum layer.
        let mut full = vec![0u8; 128 + TRAILER_LEN];
        for &victim in &[ids[2], ids[5]] {
            s.inner_mut().read(victim, &mut full).unwrap();
            full[0] ^= 0xFF;
            s.inner_mut().write(victim, &full).unwrap();
        }
        let report = s.scrub();
        assert_eq!(report.pages, 8);
        assert_eq!(report.errors.len(), 2);
        let damaged: Vec<PageId> = report
            .errors
            .iter()
            .map(|e| match e {
                Error::Corruption { page, .. } => *page,
                other => panic!("unexpected error {other:?}"),
            })
            .collect();
        assert_eq!(damaged, vec![ids[2], ids[5]]);
    }

    #[test]
    fn catches_every_silent_fault_kind_from_faultstore() {
        // End-to-end over the real stack order: checksum above faults.
        let mut s = ChecksumStore::new(FaultStore::new(MemStore::new(128 + TRAILER_LEN)));
        s.inner_mut().track_preimages(true);
        let a = s.allocate().unwrap();
        let b = s.allocate().unwrap();
        s.write(a, &[1u8; 128]).unwrap();
        s.write(b, &[2u8; 128]).unwrap();
        let mut out = vec![0u8; 128];

        // Transient read-side bit flip.
        let at = s.inner().ops();
        s.inner_mut().inject(at, Fault::BitFlip { bit: 77 });
        assert!(s.read(a, &mut out).unwrap_err().is_corruption());
        s.read(a, &mut out).unwrap(); // transient: page itself intact

        // Persistent write-side bit flip.
        let at = s.inner().ops();
        s.inner_mut().inject(at, Fault::BitFlip { bit: 3 });
        s.write(a, &[3u8; 128]).unwrap(); // silent success
        assert!(s.read(a, &mut out).unwrap_err().is_corruption());

        // Misdirected write: reading the victim reports page-id damage.
        let at = s.inner().ops();
        s.inner_mut()
            .inject(at, Fault::MisdirectedWrite { victim: b });
        s.write(a, &[4u8; 128]).unwrap(); // silent success
        match s.read(b, &mut out) {
            Err(Error::Corruption { what, .. }) => assert_eq!(what, "page-id"),
            other => panic!("expected page-id corruption, got {other:?}"),
        }
    }

    #[test]
    fn trust_on_first_use_for_unknown_epochs() {
        let mut inner = MemStore::new(128 + TRAILER_LEN);
        let a;
        {
            let mut s = ChecksumStore::new(inner);
            a = s.allocate().unwrap();
            s.write(a, &[9u8; 128]).unwrap();
            inner = s.into_inner();
        }
        // A fresh wrapper has no epoch table but accepts the stored epoch.
        let mut s = ChecksumStore::new(inner);
        let mut out = vec![0u8; 128];
        s.read(a, &mut out).unwrap();
        assert_eq!(out[0], 9);
    }
}
