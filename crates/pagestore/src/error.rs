use std::fmt;

use crate::page::PageId;

/// Errors produced by the page store layer.
#[derive(Debug)]
pub enum Error {
    /// A page id that was never allocated (or has been freed) was accessed.
    PageNotFound(PageId),
    /// A page id outside the valid range was used.
    InvalidPageId(PageId),
    /// Page contents failed structural validation.
    Corrupt(String),
    /// A page failed its checksum-trailer verification: the stored field
    /// named by `what` (`"crc"`, `"page-id"`, `"epoch"` or `"format"`)
    /// did not carry the expected value. Raised by
    /// [`crate::ChecksumStore`] with full provenance so callers can
    /// quarantine exactly the damaged page.
    Corruption {
        /// The page that failed verification.
        page: PageId,
        /// Which trailer field mismatched.
        what: &'static str,
        /// The value the field should have carried.
        expected: u64,
        /// The value actually found on the page.
        actual: u64,
    },
    /// An I/O error from a file-backed store.
    Io(std::io::Error),
    /// A write did not match the store's page size.
    BadPageSize { expected: usize, got: usize },
}

impl Error {
    /// Whether this error reports damaged page *content* (structural or
    /// checksum corruption), as opposed to a transient I/O failure or a
    /// caller mistake. Layers above use this to decide between retrying
    /// and quarantining.
    pub fn is_corruption(&self) -> bool {
        matches!(self, Error::Corrupt(_) | Error::Corruption { .. })
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::PageNotFound(id) => write!(f, "page {id} not found"),
            Error::InvalidPageId(id) => write!(f, "invalid page id {id}"),
            Error::Corrupt(msg) => write!(f, "corrupt page: {msg}"),
            Error::Corruption {
                page,
                what,
                expected,
                actual,
            } => write!(
                f,
                "page {page} corrupt: {what} mismatch (expected {expected:#010x}, \
                 found {actual:#010x})"
            ),
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::BadPageSize { expected, got } => {
                write!(f, "bad page size: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Result alias for page store operations.
pub type Result<T> = std::result::Result<T, Error>;
