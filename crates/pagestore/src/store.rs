use crate::error::{Error, Result};
use crate::page::{PageId, PAGE_SIZE_MIN};

/// Abstraction over a flat array of fixed-size pages.
///
/// A `PageStore` is the persistence layer under a [`crate::BufferPool`].
/// Implementations must hand out dense page ids and may reuse freed ids.
pub trait PageStore {
    /// The fixed page size in bytes.
    fn page_size(&self) -> usize;

    /// Allocate a fresh zeroed page and return its id.
    fn allocate(&mut self) -> Result<PageId>;

    /// Release a page. Its id may be handed out again by later allocations.
    fn free(&mut self, id: PageId) -> Result<()>;

    /// Read a page into `buf`, which must be exactly `page_size` long.
    fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()>;

    /// Write a page from `buf`, which must be exactly `page_size` long.
    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()>;

    /// Number of live (allocated, not freed) pages.
    fn live_pages(&self) -> usize;

    /// The ids of all live pages, in ascending order. This is the scrub
    /// walk's enumeration: `live_page_ids().len() == live_pages()` and
    /// every returned id must be readable.
    fn live_page_ids(&self) -> Vec<PageId>;

    /// Flush any buffered writes to durable storage (no-op for memory).
    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

/// An in-memory page store.
///
/// This is what the experiments use: the paper's metrics are page *counts*
/// observed at the buffer pool, not wall-clock disk time, so an in-memory
/// backing keeps runs fast and deterministic.
pub struct MemStore {
    page_size: usize,
    pages: Vec<Option<Box<[u8]>>>,
    free_list: Vec<u32>,
    live: usize,
}

impl MemStore {
    /// Create an empty store with the given page size.
    ///
    /// # Panics
    /// Panics if `page_size < PAGE_SIZE_MIN`.
    pub fn new(page_size: usize) -> Self {
        assert!(
            page_size >= PAGE_SIZE_MIN,
            "page size {page_size} below minimum {PAGE_SIZE_MIN}"
        );
        MemStore {
            page_size,
            pages: Vec::new(),
            free_list: Vec::new(),
            live: 0,
        }
    }

    fn slot(&self, id: PageId) -> Result<&[u8]> {
        self.pages
            .get(id.index())
            .and_then(|p| p.as_deref())
            .ok_or(Error::PageNotFound(id))
    }
}

impl PageStore for MemStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&mut self) -> Result<PageId> {
        self.live += 1;
        if let Some(idx) = self.free_list.pop() {
            self.pages[idx as usize] = Some(vec![0u8; self.page_size].into_boxed_slice());
            return Ok(PageId(idx));
        }
        let idx = self.pages.len();
        if idx >= u32::MAX as usize {
            return Err(Error::InvalidPageId(PageId::NULL));
        }
        self.pages
            .push(Some(vec![0u8; self.page_size].into_boxed_slice()));
        Ok(PageId(idx as u32))
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        match self.pages.get_mut(id.index()) {
            Some(slot @ Some(_)) => {
                *slot = None;
                self.free_list.push(id.0);
                self.live -= 1;
                Ok(())
            }
            _ => Err(Error::PageNotFound(id)),
        }
    }

    fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.page_size {
            return Err(Error::BadPageSize {
                expected: self.page_size,
                got: buf.len(),
            });
        }
        let page = self.slot(id)?;
        buf.copy_from_slice(page);
        Ok(())
    }

    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        if buf.len() != self.page_size {
            return Err(Error::BadPageSize {
                expected: self.page_size,
                got: buf.len(),
            });
        }
        match self.pages.get_mut(id.index()).and_then(|p| p.as_mut()) {
            Some(page) => {
                page.copy_from_slice(buf);
                Ok(())
            }
            None => Err(Error::PageNotFound(id)),
        }
    }

    fn live_pages(&self) -> usize {
        self.live
    }

    fn live_page_ids(&self) -> Vec<PageId> {
        self.pages
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_some())
            .map(|(i, _)| PageId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut s = MemStore::new(128);
        let a = s.allocate().unwrap();
        let b = s.allocate().unwrap();
        assert_ne!(a, b);
        assert_eq!(s.live_pages(), 2);

        let mut buf = vec![0u8; 128];
        buf[0] = 0xAB;
        buf[127] = 0xCD;
        s.write(a, &buf).unwrap();

        let mut out = vec![0u8; 128];
        s.read(a, &mut out).unwrap();
        assert_eq!(out, buf);

        // b is still zeroed
        s.read(b, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));
    }

    #[test]
    fn free_and_reuse() {
        let mut s = MemStore::new(128);
        let a = s.allocate().unwrap();
        let _b = s.allocate().unwrap();
        s.free(a).unwrap();
        assert_eq!(s.live_pages(), 1);
        assert_eq!(s.live_page_ids(), vec![PageId(1)]);
        let c = s.allocate().unwrap();
        assert_eq!(c, a, "freed id is reused");
        // Reused page must be zeroed.
        let mut out = vec![0u8; 128];
        s.read(c, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));
    }

    #[test]
    fn errors() {
        let mut s = MemStore::new(128);
        let mut buf = vec![0u8; 128];
        assert!(matches!(
            s.read(PageId(0), &mut buf),
            Err(Error::PageNotFound(_))
        ));
        let a = s.allocate().unwrap();
        let mut small = vec![0u8; 64];
        assert!(matches!(
            s.read(a, &mut small),
            Err(Error::BadPageSize { .. })
        ));
        s.free(a).unwrap();
        assert!(matches!(s.free(a), Err(Error::PageNotFound(_))));
        assert!(matches!(s.read(a, &mut buf), Err(Error::PageNotFound(_))));
    }

    #[test]
    #[should_panic]
    fn too_small_page_size_panics() {
        let _ = MemStore::new(16);
    }
}
