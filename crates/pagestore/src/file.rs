use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::error::{Error, Result};
use crate::page::{PageId, PAGE_SIZE_MIN};
use crate::store::PageStore;

/// A file-backed page store.
///
/// Layout: a 16-byte header (`magic`, page size) followed by pages at offset
/// `HEADER_LEN + id * page_size`. The free list is kept in memory only;
/// reopening a file conservatively treats every slot as live. This is enough
/// for the durability demos — the experiments all run on [`crate::MemStore`].
pub struct FileStore {
    file: File,
    page_size: usize,
    num_slots: u32,
    free_list: Vec<u32>,
    live: usize,
}

const MAGIC: &[u8; 8] = b"UIDXPGS1";
const HEADER_LEN: u64 = 16;

impl FileStore {
    /// Create a new store file, truncating any existing file at `path`.
    pub fn create(path: &Path, page_size: usize) -> Result<Self> {
        assert!(
            page_size >= PAGE_SIZE_MIN,
            "page size {page_size} below minimum {PAGE_SIZE_MIN}"
        );
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut header = [0u8; HEADER_LEN as usize];
        header[..8].copy_from_slice(MAGIC);
        header[8..12].copy_from_slice(&(page_size as u32).to_le_bytes());
        file.write_all(&header)?;
        Ok(FileStore {
            file,
            page_size,
            num_slots: 0,
            free_list: Vec::new(),
            live: 0,
        })
    }

    /// Open an existing store file created by [`FileStore::create`].
    ///
    /// Pages freed in a previous session that were not followed by a `sync`
    /// are considered live again (conservative recovery).
    pub fn open(path: &Path) -> Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut header)?;
        if &header[..8] != MAGIC {
            return Err(Error::Corrupt("bad magic in store header".into()));
        }
        let page_size = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
        if page_size < PAGE_SIZE_MIN {
            return Err(Error::Corrupt(format!("bad page size {page_size}")));
        }
        let file_len = file.metadata()?.len();
        let data_len = file_len.saturating_sub(HEADER_LEN);
        let num_slots = (data_len / page_size as u64) as u32;
        Ok(FileStore {
            file,
            page_size,
            num_slots,
            free_list: Vec::new(),
            live: num_slots as usize,
        })
    }

    fn offset(&self, id: PageId) -> u64 {
        HEADER_LEN + id.0 as u64 * self.page_size as u64
    }

    fn check(&self, id: PageId) -> Result<()> {
        if id.is_null() || id.0 >= self.num_slots || self.free_list.contains(&id.0) {
            return Err(Error::PageNotFound(id));
        }
        Ok(())
    }
}

impl PageStore for FileStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&mut self) -> Result<PageId> {
        self.live += 1;
        if let Some(idx) = self.free_list.pop() {
            let zeros = vec![0u8; self.page_size];
            self.file.seek(SeekFrom::Start(self.offset(PageId(idx))))?;
            self.file.write_all(&zeros)?;
            return Ok(PageId(idx));
        }
        let idx = self.num_slots;
        self.num_slots += 1;
        let zeros = vec![0u8; self.page_size];
        self.file.seek(SeekFrom::Start(self.offset(PageId(idx))))?;
        self.file.write_all(&zeros)?;
        Ok(PageId(idx))
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        self.check(id)?;
        self.free_list.push(id.0);
        self.live -= 1;
        Ok(())
    }

    fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.page_size {
            return Err(Error::BadPageSize {
                expected: self.page_size,
                got: buf.len(),
            });
        }
        self.check(id)?;
        self.file.seek(SeekFrom::Start(self.offset(id)))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        if buf.len() != self.page_size {
            return Err(Error::BadPageSize {
                expected: self.page_size,
                got: buf.len(),
            });
        }
        self.check(id)?;
        self.file.seek(SeekFrom::Start(self.offset(id)))?;
        self.file.write_all(buf)?;
        Ok(())
    }

    fn live_pages(&self) -> usize {
        self.live
    }

    fn live_page_ids(&self) -> Vec<PageId> {
        (0..self.num_slots)
            .filter(|i| !self.free_list.contains(i))
            .map(PageId)
            .collect()
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pagestore_test_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn create_write_reopen() {
        let path = tmp("roundtrip");
        {
            let mut s = FileStore::create(&path, 128).unwrap();
            let a = s.allocate().unwrap();
            let mut buf = vec![7u8; 128];
            buf[0] = 1;
            s.write(a, &buf).unwrap();
            s.sync().unwrap();
        }
        {
            let mut s = FileStore::open(&path).unwrap();
            assert_eq!(s.page_size(), 128);
            assert_eq!(s.live_pages(), 1);
            let mut out = vec![0u8; 128];
            s.read(PageId(0), &mut out).unwrap();
            assert_eq!(out[0], 1);
            assert_eq!(out[1], 7);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn free_reuse_zeroes() {
        let path = tmp("reuse");
        let mut s = FileStore::create(&path, 128).unwrap();
        let a = s.allocate().unwrap();
        s.write(a, &[9u8; 128]).unwrap();
        s.free(a).unwrap();
        let b = s.allocate().unwrap();
        assert_eq!(a, b);
        let mut out = vec![1u8; 128];
        s.read(b, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a store file at all").unwrap();
        assert!(FileStore::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
