use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::error::{Error, Result};
use crate::page::{PageId, PAGE_SIZE_MIN};
use crate::store::PageStore;

/// A file-backed page store.
///
/// Layout: a 32-byte header (magic, page size, slot count, sync epoch,
/// CRC) followed by pages at offset `HEADER_LEN + id * page_size`. The
/// free list and slot count are persisted in a sidecar *manifest*
/// (`<path>.free`, atomically replaced on every [`FileStore::sync`]) so a
/// reopen after a clean sync restores the exact allocation state —
/// including LIFO reuse order. Slots allocated after the last sync are
/// not durable yet; [`FileStore::open`] truncates them away, which is
/// exactly what a WAL layer above expects (its replay re-allocates them).
///
/// When the manifest is missing or damaged, `open` falls back to the old
/// conservative recovery: every slot implied by the file length is
/// treated as live and the free list starts empty.
pub struct FileStore {
    file: File,
    path: PathBuf,
    page_size: usize,
    num_slots: u32,
    /// Free ids in LIFO order ([`FileStore::allocate`] pops the back).
    free_list: Vec<u32>,
    /// Same ids as `free_list`, for O(1) liveness probes — `check` runs on
    /// every read/write, so a `Vec::contains` scan here made
    /// `live_page_ids` O(n²) at millions of pages.
    free_set: HashSet<u32>,
    live: usize,
    sync_epoch: u64,
    /// Test hook: number of upcoming page-region writes to fail.
    fail_writes: u32,
}

const MAGIC: &[u8; 8] = b"UIDXPGS2";
const HEADER_LEN: u64 = 32;
const MANIFEST_MAGIC: &[u8; 8] = b"UIDXFREE";

/// The free-list manifest sitting next to a store file.
fn manifest_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".free");
    PathBuf::from(os)
}

/// Best-effort fsync of the directory containing `path`, so a freshly
/// created or renamed file survives a crash of the directory itself.
/// Errors are ignored: not every filesystem supports directory fsync.
fn sync_parent_dir(path: &Path) {
    if let Some(dir) = path.parent() {
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

fn encode_header(page_size: usize, num_slots: u32, sync_epoch: u64) -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[..8].copy_from_slice(MAGIC);
    h[8..12].copy_from_slice(&(page_size as u32).to_le_bytes());
    h[12..16].copy_from_slice(&num_slots.to_le_bytes());
    h[16..24].copy_from_slice(&sync_epoch.to_le_bytes());
    let crc = crc32(&h[..24]);
    h[24..28].copy_from_slice(&crc.to_le_bytes());
    h
}

struct Manifest {
    sync_epoch: u64,
    num_slots: u32,
    free: Vec<u32>,
}

fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut buf = Vec::with_capacity(28 + 4 * m.free.len());
    buf.extend_from_slice(MANIFEST_MAGIC);
    buf.extend_from_slice(&m.sync_epoch.to_le_bytes());
    buf.extend_from_slice(&m.num_slots.to_le_bytes());
    buf.extend_from_slice(&(m.free.len() as u32).to_le_bytes());
    for id in &m.free {
        buf.extend_from_slice(&id.to_le_bytes());
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

fn decode_manifest(buf: &[u8]) -> Option<Manifest> {
    if buf.len() < 28 || &buf[..8] != MANIFEST_MAGIC {
        return None;
    }
    let (body, crc_bytes) = buf.split_at(buf.len() - 4);
    if crc32(body) != u32::from_le_bytes(crc_bytes.try_into().ok()?) {
        return None;
    }
    let sync_epoch = u64::from_le_bytes(body[8..16].try_into().ok()?);
    let num_slots = u32::from_le_bytes(body[16..20].try_into().ok()?);
    let count = u32::from_le_bytes(body[20..24].try_into().ok()?) as usize;
    if body.len() != 24 + 4 * count {
        return None;
    }
    let free = body[24..]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    Some(Manifest {
        sync_epoch,
        num_slots,
        free,
    })
}

impl FileStore {
    /// Create a new store file, truncating any existing file at `path`.
    ///
    /// The header and the (empty) free-list manifest are fsynced before
    /// this returns — a crash immediately after `create` still leaves an
    /// openable store.
    pub fn create(path: &Path, page_size: usize) -> Result<Self> {
        assert!(
            page_size >= PAGE_SIZE_MIN,
            "page size {page_size} below minimum {PAGE_SIZE_MIN}"
        );
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut store = FileStore {
            file,
            path: path.to_path_buf(),
            page_size,
            num_slots: 0,
            free_list: Vec::new(),
            free_set: HashSet::new(),
            live: 0,
            sync_epoch: 0,
            fail_writes: 0,
        };
        store.write_manifest(1)?;
        store.file.seek(SeekFrom::Start(0))?;
        store.file.write_all(&encode_header(page_size, 0, 1))?;
        store.file.sync_all()?;
        sync_parent_dir(path);
        store.sync_epoch = 1;
        Ok(store)
    }

    /// Open an existing store file created by [`FileStore::create`].
    ///
    /// A valid manifest makes the reopen *exact*: slot count and free
    /// list (in reuse order) come back as of the last sync, and any
    /// unsynced tail slots are truncated away. Without a manifest the
    /// recovery is conservative: every slot implied by the file length
    /// is live. A truncated or corrupt header is rejected with a typed
    /// [`Error::Corrupt`], never a panic.
    pub fn open(path: &Path) -> Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut header = [0u8; HEADER_LEN as usize];
        let mut got = 0;
        while got < header.len() {
            match file.read(&mut header[got..])? {
                0 => {
                    return Err(Error::Corrupt(format!(
                        "truncated store header: {got} of {HEADER_LEN} bytes"
                    )))
                }
                n => got += n,
            }
        }
        if &header[..8] != MAGIC {
            return Err(Error::Corrupt("bad magic in store header".into()));
        }
        let stored_crc = u32::from_le_bytes(header[24..28].try_into().unwrap());
        if crc32(&header[..24]) != stored_crc {
            return Err(Error::Corrupt(
                "store header failed its CRC (partially written?)".into(),
            ));
        }
        let page_size = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
        if page_size < PAGE_SIZE_MIN {
            return Err(Error::Corrupt(format!("bad page size {page_size}")));
        }
        let header_epoch = u64::from_le_bytes(header[16..24].try_into().unwrap());
        let file_len = file.metadata()?.len();
        let file_slots = (file_len.saturating_sub(HEADER_LEN) / page_size as u64) as u32;

        let manifest = std::fs::read(manifest_path(path))
            .ok()
            .as_deref()
            .and_then(decode_manifest)
            // A stale manifest (older than the header says) or one that
            // promises more slots than the file holds cannot be trusted.
            .filter(|m| m.sync_epoch >= header_epoch && m.num_slots <= file_slots)
            .filter(|m| m.free.iter().all(|&id| id < m.num_slots));

        let mut store = match manifest {
            Some(m) => {
                // Exact recovery: discard slots allocated after the last
                // sync (they are not durable; a WAL replay re-creates
                // them) and restore the free list verbatim.
                file.set_len(HEADER_LEN + m.num_slots as u64 * page_size as u64)?;
                let free_set: HashSet<u32> = m.free.iter().copied().collect();
                let live = m.num_slots as usize - free_set.len();
                FileStore {
                    file,
                    path: path.to_path_buf(),
                    page_size,
                    num_slots: m.num_slots,
                    free_list: m.free,
                    free_set,
                    live,
                    sync_epoch: m.sync_epoch.max(header_epoch),
                    fail_writes: 0,
                }
            }
            None => FileStore {
                file,
                path: path.to_path_buf(),
                page_size,
                num_slots: file_slots,
                free_list: Vec::new(),
                free_set: HashSet::new(),
                live: file_slots as usize,
                sync_epoch: header_epoch,
                fail_writes: 0,
            },
        };
        store.file.seek(SeekFrom::Start(0))?;
        Ok(store)
    }

    /// The store file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Epoch of the last durable sync (bumped by [`FileStore::sync`]).
    pub fn sync_epoch(&self) -> u64 {
        self.sync_epoch
    }

    /// Total slots in the file, free ones included.
    pub fn num_slots(&self) -> u32 {
        self.num_slots
    }

    /// Test hook: make the next `n` page-region writes fail with an
    /// injected I/O error. Exercises the failure paths inside `allocate`
    /// and `write` that a wrapping [`crate::FaultStore`] cannot reach
    /// (it sits above this store, not inside it).
    #[doc(hidden)]
    pub fn inject_write_failures(&mut self, n: u32) {
        self.fail_writes = n;
    }

    fn offset(&self, id: PageId) -> u64 {
        HEADER_LEN + id.0 as u64 * self.page_size as u64
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> Result<()> {
        if self.fail_writes > 0 {
            self.fail_writes -= 1;
            return Err(Error::Io(std::io::Error::other("injected write failure")));
        }
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(buf)?;
        Ok(())
    }

    fn check(&self, id: PageId) -> Result<()> {
        if id.is_null() || id.0 >= self.num_slots || self.free_set.contains(&id.0) {
            return Err(Error::PageNotFound(id));
        }
        Ok(())
    }

    /// Atomically replace the manifest (write-to-temp, fsync, rename).
    fn write_manifest(&mut self, epoch: u64) -> Result<()> {
        let target = manifest_path(&self.path);
        let mut tmp_os = target.as_os_str().to_os_string();
        tmp_os.push(".tmp");
        let tmp = PathBuf::from(tmp_os);
        let bytes = encode_manifest(&Manifest {
            sync_epoch: epoch,
            num_slots: self.num_slots,
            free: self.free_list.clone(),
        });
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &target)?;
        sync_parent_dir(&target);
        Ok(())
    }
}

impl PageStore for FileStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&mut self) -> Result<PageId> {
        // The zero-write is fallible, so all bookkeeping (`live`,
        // `num_slots`, `free_list`) happens strictly *after* it succeeds —
        // a failed allocation must leave the store exactly as it was.
        let zeros = vec![0u8; self.page_size];
        if let Some(&idx) = self.free_list.last() {
            self.write_at(self.offset(PageId(idx)), &zeros)?;
            self.free_list.pop();
            self.free_set.remove(&idx);
            self.live += 1;
            return Ok(PageId(idx));
        }
        let idx = self.num_slots;
        self.write_at(self.offset(PageId(idx)), &zeros)?;
        self.num_slots += 1;
        self.live += 1;
        Ok(PageId(idx))
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        self.check(id)?;
        self.free_list.push(id.0);
        self.free_set.insert(id.0);
        self.live -= 1;
        Ok(())
    }

    fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.page_size {
            return Err(Error::BadPageSize {
                expected: self.page_size,
                got: buf.len(),
            });
        }
        self.check(id)?;
        self.file.seek(SeekFrom::Start(self.offset(id)))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        if buf.len() != self.page_size {
            return Err(Error::BadPageSize {
                expected: self.page_size,
                got: buf.len(),
            });
        }
        self.check(id)?;
        self.write_at(self.offset(id), buf)
    }

    fn live_pages(&self) -> usize {
        self.live
    }

    fn live_page_ids(&self) -> Vec<PageId> {
        (0..self.num_slots)
            .filter(|i| !self.free_set.contains(i))
            .map(PageId)
            .collect()
    }

    fn sync(&mut self) -> Result<()> {
        // Order matters: page data first, then the manifest naming the
        // durable slot frontier, then the header stamp. A crash between
        // any two steps leaves either the previous consistent snapshot
        // (manifest epoch == header epoch) or a newer complete manifest
        // (epoch == header epoch + 1) — `open` accepts both.
        self.file.sync_data()?;
        let next = self.sync_epoch + 1;
        self.write_manifest(next)?;
        let header = encode_header(self.page_size, self.num_slots, next);
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&header)?;
        self.file.sync_data()?;
        self.sync_epoch = next;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pagestore_test_{}_{}", std::process::id(), name));
        p
    }

    fn cleanup(path: &Path) {
        std::fs::remove_file(path).ok();
        std::fs::remove_file(manifest_path(path)).ok();
    }

    #[test]
    fn create_write_reopen() {
        let path = tmp("roundtrip");
        {
            let mut s = FileStore::create(&path, 128).unwrap();
            let a = s.allocate().unwrap();
            let mut buf = vec![7u8; 128];
            buf[0] = 1;
            s.write(a, &buf).unwrap();
            s.sync().unwrap();
        }
        {
            let mut s = FileStore::open(&path).unwrap();
            assert_eq!(s.page_size(), 128);
            assert_eq!(s.live_pages(), 1);
            let mut out = vec![0u8; 128];
            s.read(PageId(0), &mut out).unwrap();
            assert_eq!(out[0], 1);
            assert_eq!(out[1], 7);
        }
        cleanup(&path);
    }

    #[test]
    fn free_reuse_zeroes() {
        let path = tmp("reuse");
        let mut s = FileStore::create(&path, 128).unwrap();
        let a = s.allocate().unwrap();
        s.write(a, &[9u8; 128]).unwrap();
        s.free(a).unwrap();
        let b = s.allocate().unwrap();
        assert_eq!(a, b);
        let mut out = vec![1u8; 128];
        s.read(b, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));
        cleanup(&path);
    }

    #[test]
    fn open_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a store file at all, padded to header length!").unwrap();
        assert!(matches!(
            FileStore::open(&path),
            Err(Error::Corrupt(msg)) if msg.contains("magic")
        ));
        cleanup(&path);
    }

    #[test]
    fn open_rejects_truncated_header_with_typed_error() {
        let path = tmp("shortheader");
        std::fs::write(&path, &MAGIC[..6]).unwrap();
        assert!(matches!(
            FileStore::open(&path),
            Err(Error::Corrupt(msg)) if msg.contains("truncated")
        ));
        cleanup(&path);
    }

    #[test]
    fn open_rejects_header_with_bad_crc() {
        let path = tmp("badcrc");
        let mut h = encode_header(128, 0, 1).to_vec();
        h[20] ^= 0xFF; // damage the epoch without fixing the CRC
        std::fs::write(&path, &h).unwrap();
        assert!(matches!(
            FileStore::open(&path),
            Err(Error::Corrupt(msg)) if msg.contains("CRC")
        ));
        cleanup(&path);
    }

    #[test]
    fn crash_right_after_create_is_openable() {
        let path = tmp("createcrash");
        {
            let _s = FileStore::create(&path, 128).unwrap();
            // "Crash": drop without any sync.
        }
        let s = FileStore::open(&path).unwrap();
        assert_eq!(s.live_pages(), 0);
        assert_eq!(s.page_size(), 128);
        cleanup(&path);
    }

    #[test]
    fn failed_allocate_leaves_counters_untouched() {
        let path = tmp("allocfail");
        let mut s = FileStore::create(&path, 128).unwrap();
        let a = s.allocate().unwrap();
        assert_eq!(s.live_pages(), 1);
        // New-slot path: the zero-write fails; live/num_slots must not move.
        s.inject_write_failures(1);
        assert!(matches!(s.allocate(), Err(Error::Io(_))));
        assert_eq!(s.live_pages(), 1);
        assert_eq!(s.num_slots(), 1);
        assert_eq!(s.live_page_ids(), vec![a]);
        // Recovery: the next allocate succeeds and ids stay dense.
        let b = s.allocate().unwrap();
        assert_eq!(b, PageId(1));
        assert_eq!(s.live_pages(), 2);
        // Reuse path: free `a`, fail the zero-write — the id must stay on
        // the free list (and still be reported free).
        s.free(a).unwrap();
        assert_eq!(s.live_pages(), 1);
        s.inject_write_failures(1);
        assert!(matches!(s.allocate(), Err(Error::Io(_))));
        assert_eq!(s.live_pages(), 1);
        assert_eq!(s.live_page_ids(), vec![b]);
        // After the fault clears, the freed id is reused (LIFO) and zeroed.
        let c = s.allocate().unwrap();
        assert_eq!(c, a);
        let mut out = vec![1u8; 128];
        s.read(c, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));
        cleanup(&path);
    }

    #[test]
    fn reopen_restores_exact_free_list_and_lifo_order() {
        let path = tmp("manifest");
        {
            let mut s = FileStore::create(&path, 128).unwrap();
            let ids: Vec<PageId> = (0..4).map(|_| s.allocate().unwrap()).collect();
            for id in &ids {
                s.write(*id, &[id.0 as u8 + 1; 128]).unwrap();
            }
            s.free(ids[1]).unwrap();
            s.free(ids[3]).unwrap();
            s.sync().unwrap();
        }
        let mut s = FileStore::open(&path).unwrap();
        assert_eq!(s.live_pages(), 2, "exact free list survives reopen");
        assert_eq!(s.num_slots(), 4);
        assert_eq!(s.live_page_ids(), vec![PageId(0), PageId(2)]);
        let mut out = vec![0u8; 128];
        assert!(matches!(
            s.read(PageId(1), &mut out),
            Err(Error::PageNotFound(_))
        ));
        // LIFO order survives too: 3 was freed last, so it comes back
        // first.
        assert_eq!(s.allocate().unwrap(), PageId(3));
        assert_eq!(s.allocate().unwrap(), PageId(1));
        cleanup(&path);
    }

    #[test]
    fn unsynced_tail_slots_are_discarded_on_open() {
        let path = tmp("tailslots");
        {
            let mut s = FileStore::create(&path, 128).unwrap();
            let a = s.allocate().unwrap();
            s.write(a, &[5u8; 128]).unwrap();
            s.sync().unwrap();
            // Two more slots after the sync — not durable.
            s.allocate().unwrap();
            s.allocate().unwrap();
        }
        let s = FileStore::open(&path).unwrap();
        assert_eq!(s.num_slots(), 1, "unsynced tail truncated");
        assert_eq!(s.live_pages(), 1);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            HEADER_LEN + 128,
            "file shrunk back to the durable frontier"
        );
        cleanup(&path);
    }

    #[test]
    fn missing_manifest_falls_back_to_conservative() {
        let path = tmp("nomanifest");
        {
            let mut s = FileStore::create(&path, 128).unwrap();
            let a = s.allocate().unwrap();
            let b = s.allocate().unwrap();
            s.free(a).unwrap();
            let _ = b;
            s.sync().unwrap();
        }
        std::fs::remove_file(manifest_path(&path)).unwrap();
        let s = FileStore::open(&path).unwrap();
        // Conservative: the freed page is considered live again.
        assert_eq!(s.live_pages(), 2);
        assert_eq!(s.live_page_ids().len(), 2);
        cleanup(&path);
    }

    #[test]
    fn corrupt_manifest_falls_back_to_conservative() {
        let path = tmp("badmanifest");
        {
            let mut s = FileStore::create(&path, 128).unwrap();
            let a = s.allocate().unwrap();
            s.free(a).unwrap();
            s.sync().unwrap();
        }
        let mpath = manifest_path(&path);
        let mut bytes = std::fs::read(&mpath).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&mpath, &bytes).unwrap();
        let s = FileStore::open(&path).unwrap();
        assert_eq!(s.live_pages(), 1, "corrupt manifest ignored");
        cleanup(&path);
    }

    #[test]
    fn live_page_ids_is_not_quadratic_shape() {
        // Smoke the HashSet path: many pages with a large free list; the
        // old Vec::contains probe made this O(n²).
        let path = tmp("bigfree");
        let mut s = FileStore::create(&path, 128).unwrap();
        let ids: Vec<PageId> = (0..512).map(|_| s.allocate().unwrap()).collect();
        for id in ids.iter().step_by(2) {
            s.free(*id).unwrap();
        }
        assert_eq!(s.live_pages(), 256);
        assert_eq!(s.live_page_ids().len(), 256);
        let mut buf = vec![0u8; 128];
        assert!(s.read(PageId(1), &mut buf).is_ok());
        assert!(matches!(
            s.read(PageId(0), &mut buf),
            Err(Error::PageNotFound(_))
        ));
        cleanup(&path);
    }
}
