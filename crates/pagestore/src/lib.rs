//! Paged storage substrate for the U-index reproduction.
//!
//! Every index structure in this workspace (the U-index itself and all the
//! baseline structures) stores its nodes in fixed-size *pages* managed by a
//! [`BufferPool`]. The paper's experiments report *pages read* and *nodes
//! visited* per query, so the buffer pool is also the instrumentation point:
//! it counts physical reads/writes globally and, per query, the number of
//! **distinct** pages touched (a page already fetched earlier in the same
//! query is free, matching the paper's "utilizing any page which is already
//! in memory").
//!
//! Two page stores are provided:
//!
//! * [`MemStore`] — an in-memory store used by the experiments (the paper's
//!   metric is page *counts*, not wall-clock I/O);
//! * [`FileStore`] — a real file-backed store for durability demos.
//!
//! # Example
//!
//! ```
//! use pagestore::{BufferPool, MemStore, PAGE_SIZE_DEFAULT};
//!
//! let store = MemStore::new(PAGE_SIZE_DEFAULT);
//! let mut pool = BufferPool::new(store, 64);
//! let (id, page) = pool.allocate().unwrap();
//! page.write()[0] = 42;
//! drop(page);
//! pool.begin_query();
//! let page = pool.fetch(id).unwrap();
//! assert_eq!(page.read()[0], 42);
//! assert_eq!(pool.query_stats().distinct_pages, 1);
//! ```

mod buffer;
mod checksum;
mod crc;
pub mod disk;
mod error;
mod fault;
mod file;
mod page;
mod store;
mod wal;

pub use buffer::{
    BufferPool, PageReadGuard, PageRef, PageWriteGuard, PoolStats, QueryStats, RetryPolicy,
};
pub use checksum::{ChecksumStore, ScrubReport, Scrubbable, TRAILER_LEN};
pub use crc::crc32;
pub use error::{Error, Result};
pub use fault::{Fault, FaultHandle, FaultStore};
pub use page::{PageId, PAGE_SIZE_DEFAULT, PAGE_SIZE_MIN};
pub use store::{MemStore, PageStore};

pub use file::FileStore;
pub use wal::{RecoveryReport, WalStore};
