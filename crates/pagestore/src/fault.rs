//! Deterministic fault injection for page stores.
//!
//! [`FaultStore`] wraps any [`PageStore`] and fails scheduled operations:
//! clean I/O errors, torn writes that persist only a prefix of the page,
//! and crash points after which every operation fails. Operations are
//! numbered from zero in the order the wrapper sees them, so a test can
//! sweep a fault across *every* point of a workload and assert that the
//! layers above (WAL, buffer pool, B-tree) either fail cleanly or recover.

use std::collections::BTreeMap;

use crate::error::{Error, Result};
use crate::page::PageId;
use crate::store::PageStore;

/// A single injected fault, fired when the wrapped store reaches the
/// operation it is scheduled at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The operation fails with an I/O error and has no effect.
    IoError,
    /// A write persists only its first `bytes` bytes (a torn page), then
    /// reports an I/O error. On non-write operations this degrades to
    /// [`Fault::IoError`].
    TornWrite {
        /// How much of the page reaches the backing store.
        bytes: usize,
    },
    /// The store loses power: this operation and every later one fail,
    /// and nothing more reaches the backing store.
    Crash,
}

/// A [`PageStore`] wrapper that injects faults from a deterministic
/// schedule. Counted operations are `allocate`, `free`, `read`, `write`
/// and `sync`; `page_size` and `live_pages` are free.
pub struct FaultStore<S: PageStore> {
    inner: S,
    schedule: BTreeMap<u64, Fault>,
    ops: u64,
    crashed: bool,
}

impl<S: PageStore> FaultStore<S> {
    /// Wrap `inner` with an empty schedule (fully transparent).
    pub fn new(inner: S) -> Self {
        FaultStore {
            inner,
            schedule: BTreeMap::new(),
            ops: 0,
            crashed: false,
        }
    }

    /// Wrap `inner` with a pseudo-random schedule of `faults` faults over
    /// operations `[0, horizon)`, derived from `seed` (SplitMix64).
    pub fn seeded(inner: S, seed: u64, faults: usize, horizon: u64) -> Self {
        let mut s = Self::new(inner);
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _ in 0..faults {
            let at = next() % horizon.max(1);
            let fault = match next() % 3 {
                0 => Fault::IoError,
                1 => Fault::TornWrite {
                    bytes: (next() % 64) as usize,
                },
                _ => Fault::Crash,
            };
            s.schedule.insert(at, fault);
        }
        s
    }

    /// Schedule `fault` to fire at counted operation number `at`.
    pub fn inject(&mut self, at: u64, fault: Fault) {
        self.schedule.insert(at, fault);
    }

    /// Operations counted so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Scheduled faults that have not fired yet.
    pub fn pending_faults(&self) -> usize {
        self.schedule.len()
    }

    /// Whether a [`Fault::Crash`] has fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Drop all pending faults and clear the crashed flag ("repair the
    /// disk"), e.g. before a recovery attempt.
    pub fn clear_faults(&mut self) {
        self.schedule.clear();
        self.crashed = false;
    }

    /// The wrapped store, read-only.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwrap, discarding the schedule.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn fault_error(what: &str) -> Error {
        Error::Io(std::io::Error::other(format!("injected fault: {what}")))
    }

    /// Count one operation; return the fault to apply to it, if any.
    /// Fired faults leave the schedule, so tests can tell whether a
    /// scheduled fault was ever reached.
    fn begin_op(&mut self) -> Result<Option<Fault>> {
        if self.crashed {
            return Err(Self::fault_error("store crashed"));
        }
        let n = self.ops;
        self.ops += 1;
        match self.schedule.remove(&n) {
            Some(Fault::Crash) => {
                self.crashed = true;
                telemetry::counter("pagestore.fault.trips").inc();
                Err(Self::fault_error("crash"))
            }
            Some(fault) => {
                telemetry::counter("pagestore.fault.trips").inc();
                Ok(Some(fault))
            }
            None => Ok(None),
        }
    }
}

impl<S: PageStore> PageStore for FaultStore<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn allocate(&mut self) -> Result<PageId> {
        match self.begin_op()? {
            None => self.inner.allocate(),
            Some(_) => Err(Self::fault_error("allocate failed")),
        }
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        match self.begin_op()? {
            None => self.inner.free(id),
            Some(_) => Err(Self::fault_error("free failed")),
        }
    }

    fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        match self.begin_op()? {
            None => self.inner.read(id, buf),
            Some(_) => Err(Self::fault_error("read failed")),
        }
    }

    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        match self.begin_op()? {
            None => self.inner.write(id, buf),
            Some(Fault::TornWrite { bytes }) => {
                // Persist the torn prefix over the page's current content,
                // then report failure — like a power cut mid-sector.
                let n = bytes.min(buf.len());
                let mut cur = vec![0u8; self.inner.page_size()];
                self.inner.read(id, &mut cur)?;
                cur[..n].copy_from_slice(&buf[..n]);
                self.inner.write(id, &cur)?;
                Err(Self::fault_error("torn write"))
            }
            Some(_) => Err(Self::fault_error("write failed")),
        }
    }

    fn live_pages(&self) -> usize {
        self.inner.live_pages()
    }

    fn sync(&mut self) -> Result<()> {
        match self.begin_op()? {
            None => self.inner.sync(),
            Some(_) => Err(Self::fault_error("sync failed")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    #[test]
    fn transparent_without_faults() {
        let mut s = FaultStore::new(MemStore::new(128));
        let a = s.allocate().unwrap();
        s.write(a, &[7u8; 128]).unwrap();
        let mut out = vec![0u8; 128];
        s.read(a, &mut out).unwrap();
        assert_eq!(out[0], 7);
        assert_eq!(s.ops(), 3);
        assert_eq!(s.live_pages(), 1);
        s.free(a).unwrap();
        assert_eq!(s.live_pages(), 0);
    }

    #[test]
    fn io_error_has_no_effect() {
        let mut s = FaultStore::new(MemStore::new(128));
        let a = s.allocate().unwrap();
        s.write(a, &[1u8; 128]).unwrap();
        s.inject(s.ops(), Fault::IoError);
        assert!(s.write(a, &[2u8; 128]).is_err());
        let mut out = vec![0u8; 128];
        s.read(a, &mut out).unwrap();
        assert_eq!(out[0], 1, "failed write must leave the page untouched");
        assert_eq!(s.pending_faults(), 0, "fault fired and left the schedule");
    }

    #[test]
    fn torn_write_persists_prefix() {
        let mut s = FaultStore::new(MemStore::new(128));
        let a = s.allocate().unwrap();
        s.write(a, &[1u8; 128]).unwrap();
        s.inject(s.ops(), Fault::TornWrite { bytes: 10 });
        assert!(s.write(a, &[2u8; 128]).is_err());
        let mut out = vec![0u8; 128];
        s.read(a, &mut out).unwrap();
        assert_eq!(&out[..10], &[2u8; 10], "torn prefix persisted");
        assert_eq!(&out[10..], &[1u8; 118], "rest of the page untouched");
    }

    #[test]
    fn crash_latches() {
        let mut s = FaultStore::new(MemStore::new(128));
        let a = s.allocate().unwrap();
        s.write(a, &[3u8; 128]).unwrap();
        s.inject(s.ops(), Fault::Crash);
        let mut out = vec![0u8; 128];
        assert!(s.read(a, &mut out).is_err());
        assert!(s.crashed());
        assert!(
            s.write(a, &[4u8; 128]).is_err(),
            "everything fails after a crash"
        );
        assert!(s.allocate().is_err());
        // The data written before the crash is still in the backing store.
        let mut inner = s.into_inner();
        inner.read(a, &mut out).unwrap();
        assert_eq!(out[0], 3);
    }

    #[test]
    fn clear_faults_repairs() {
        let mut s = FaultStore::new(MemStore::new(128));
        let a = s.allocate().unwrap();
        s.inject(s.ops(), Fault::Crash);
        assert!(s.write(a, &[5u8; 128]).is_err());
        s.clear_faults();
        s.write(a, &[5u8; 128]).unwrap();
        let mut out = vec![0u8; 128];
        s.read(a, &mut out).unwrap();
        assert_eq!(out[0], 5);
    }

    #[test]
    fn seeded_schedules_are_deterministic() {
        let a = FaultStore::seeded(MemStore::new(128), 42, 5, 100);
        let b = FaultStore::seeded(MemStore::new(128), 42, 5, 100);
        assert_eq!(a.schedule, b.schedule);
        assert!(!a.schedule.is_empty());
        let c = FaultStore::seeded(MemStore::new(128), 43, 5, 100);
        assert_ne!(a.schedule, c.schedule);
        assert!(a.schedule.keys().all(|&k| k < 100));
    }
}
