//! Deterministic fault injection for page stores.
//!
//! [`FaultStore`] wraps any [`PageStore`] and fails scheduled operations:
//! clean I/O errors, torn writes that persist only a prefix of the page,
//! and crash points after which every operation fails. Operations are
//! numbered from zero in the order the wrapper sees them, so a test can
//! sweep a fault across *every* point of a workload and assert that the
//! layers above (WAL, buffer pool, B-tree) either fail cleanly or recover.
//!
//! Beyond those fail-stop faults the store injects *silent* damage — the
//! kind only a checksum layer can catch: [`Fault::BitFlip`] (bit rot),
//! [`Fault::MisdirectedWrite`] (firmware writes the right data to the
//! wrong sector) and [`Fault::StaleRead`] (a lost write: the read returns
//! the page's pre-image). These report success; the corruption sweep
//! asserts [`crate::ChecksumStore`] turns every one of them into a typed
//! [`Error::Corruption`] instead of a wrong answer. For page-targeted
//! sweeps, [`FaultStore::damage_now`] applies the same damage immediately
//! to a chosen page instead of scheduling by operation number.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::error::{Error, Result};
use crate::page::PageId;
use crate::store::PageStore;

/// A single injected fault, fired when the wrapped store reaches the
/// operation it is scheduled at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The operation fails with an I/O error and has no effect.
    IoError,
    /// A write persists only its first `bytes` bytes (a torn page), then
    /// reports an I/O error. On non-write operations this degrades to
    /// [`Fault::IoError`].
    TornWrite {
        /// How much of the page reaches the backing store.
        bytes: usize,
    },
    /// The store loses power: this operation and every later one fail,
    /// and nothing more reaches the backing store.
    Crash,
    /// Silent single-bit damage. On a read, bit `bit` (mod page bits) of
    /// the *returned* data is flipped; on a write, the flipped page is
    /// persisted. Either way the operation reports success. Degrades to
    /// [`Fault::IoError`] on allocate/free/sync.
    BitFlip {
        /// Which bit to flip, counted from byte 0's LSB; reduced modulo
        /// the page size in bits.
        bit: usize,
    },
    /// A write lands on `victim` instead of its target and reports
    /// success; the target keeps its old content. Degrades to
    /// [`Fault::IoError`] on non-write operations.
    MisdirectedWrite {
        /// The page that receives the bytes instead.
        victim: PageId,
    },
    /// A read silently returns the page's pre-image (its content before
    /// the last write through this wrapper) — a lost write made visible.
    /// Requires [`FaultStore::track_preimages`]; degrades to
    /// [`Fault::IoError`] when no pre-image is known or on non-read
    /// operations.
    StaleRead,
}

/// The mutable half of a [`FaultStore`]: the schedule and its bookkeeping,
/// shared between the store (which consumes faults on every counted
/// operation) and any number of [`FaultHandle`]s (which inject them —
/// possibly from another thread while the store is serving traffic).
struct FaultState {
    schedule: BTreeMap<u64, Fault>,
    ops: u64,
    crashed: bool,
    /// Per-page content before its most recent write through this wrapper;
    /// populated only while pre-image tracking is on (it costs a read and
    /// a copy per write, so the transparent configuration skips it).
    preimages: Option<HashMap<PageId, Vec<u8>>>,
}

impl FaultState {
    fn new() -> Self {
        FaultState {
            schedule: BTreeMap::new(),
            ops: 0,
            crashed: false,
            preimages: None,
        }
    }
}

fn lock_state(state: &Mutex<FaultState>) -> MutexGuard<'_, FaultState> {
    state.lock().unwrap_or_else(|e| e.into_inner())
}

/// A clonable, thread-safe handle onto a [`FaultStore`]'s schedule: the
/// live-injection channel chaos harnesses use to schedule faults against a
/// store that is buried under a buffer pool inside a serving database.
/// Injecting while the store is mid-operation is safe — the schedule lock
/// is taken per counted operation.
#[derive(Clone)]
pub struct FaultHandle {
    state: Arc<Mutex<FaultState>>,
}

impl FaultHandle {
    /// Schedule `fault` to fire at counted operation number `at`.
    pub fn inject(&self, at: u64, fault: Fault) {
        lock_state(&self.state).schedule.insert(at, fault);
    }

    /// Schedule `fault` at `count` consecutive operations starting at
    /// `at` — a burst that outlasts bounded retry.
    pub fn inject_burst(&self, at: u64, count: u64, fault: Fault) {
        let mut s = lock_state(&self.state);
        for i in 0..count {
            s.schedule.insert(at + i, fault);
        }
    }

    /// Operations counted so far.
    pub fn ops(&self) -> u64 {
        lock_state(&self.state).ops
    }

    /// Scheduled faults that have not fired yet.
    pub fn pending_faults(&self) -> usize {
        lock_state(&self.state).schedule.len()
    }

    /// Whether a [`Fault::Crash`] has fired.
    pub fn crashed(&self) -> bool {
        lock_state(&self.state).crashed
    }

    /// Drop all pending faults and clear the crashed flag ("repair the
    /// disk"), e.g. before a recovery attempt.
    pub fn clear_faults(&self) {
        let mut s = lock_state(&self.state);
        s.schedule.clear();
        s.crashed = false;
    }

    /// A copy of the pending schedule, for determinism assertions.
    pub fn schedule(&self) -> BTreeMap<u64, Fault> {
        lock_state(&self.state).schedule.clone()
    }
}

/// A [`PageStore`] wrapper that injects faults from a deterministic
/// schedule. Counted operations are `allocate`, `free`, `read`, `write`
/// and `sync`; `page_size` and `live_pages` are free.
pub struct FaultStore<S: PageStore> {
    inner: S,
    state: Arc<Mutex<FaultState>>,
}

impl<S: PageStore> FaultStore<S> {
    /// Wrap `inner` with an empty schedule (fully transparent).
    pub fn new(inner: S) -> Self {
        FaultStore {
            inner,
            state: Arc::new(Mutex::new(FaultState::new())),
        }
    }

    /// Wrap `inner` with a pseudo-random schedule of `faults` faults over
    /// operations `[0, horizon)`, derived from `seed` (SplitMix64).
    pub fn seeded(inner: S, seed: u64, faults: usize, horizon: u64) -> Self {
        let s = Self::new(inner);
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        {
            let mut st = lock_state(&s.state);
            for _ in 0..faults {
                let at = next() % horizon.max(1);
                let fault = match next() % 3 {
                    0 => Fault::IoError,
                    1 => Fault::TornWrite {
                        bytes: (next() % 64) as usize,
                    },
                    _ => Fault::Crash,
                };
                st.schedule.insert(at, fault);
            }
        }
        s
    }

    /// A clonable handle onto this store's schedule, usable from other
    /// threads while the store itself is behind a pool mutex.
    pub fn handle(&self) -> FaultHandle {
        FaultHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Schedule `fault` to fire at counted operation number `at`.
    pub fn inject(&mut self, at: u64, fault: Fault) {
        self.handle().inject(at, fault);
    }

    /// Operations counted so far.
    pub fn ops(&self) -> u64 {
        self.handle().ops()
    }

    /// Scheduled faults that have not fired yet.
    pub fn pending_faults(&self) -> usize {
        self.handle().pending_faults()
    }

    /// Whether a [`Fault::Crash`] has fired.
    pub fn crashed(&self) -> bool {
        self.handle().crashed()
    }

    /// Drop all pending faults and clear the crashed flag ("repair the
    /// disk"), e.g. before a recovery attempt.
    pub fn clear_faults(&mut self) {
        self.handle().clear_faults();
    }

    /// The wrapped store, read-only.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped store, bypassing the schedule — e.g.
    /// to snapshot or restore raw page bytes around an injected damage.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwrap, discarding the schedule.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Start (or stop) recording each page's pre-image on write, which
    /// [`Fault::StaleRead`] needs. Off by default: tracking costs one read
    /// and one copy per write.
    pub fn track_preimages(&mut self, on: bool) {
        lock_state(&self.state).preimages = if on { Some(HashMap::new()) } else { None };
    }

    fn record_preimage(&mut self, id: PageId) {
        if lock_state(&self.state).preimages.is_none() {
            return;
        }
        let mut cur = vec![0u8; self.inner.page_size()];
        if self.inner.read(id, &mut cur).is_ok() {
            lock_state(&self.state)
                .preimages
                .as_mut()
                .expect("checked above")
                .insert(id, cur);
        }
    }

    /// Apply `fault`'s damage to `page` *immediately*, bypassing the
    /// operation schedule — the page-targeted hammer the corruption sweep
    /// uses ("corrupt exactly this page, then prove it is detected").
    /// Supports the content faults; [`Fault::IoError`] and
    /// [`Fault::Crash`] have no content effect and are rejected.
    pub fn damage_now(&mut self, page: PageId, fault: Fault) -> Result<()> {
        let ps = self.inner.page_size();
        let mut cur = vec![0u8; ps];
        let res = match fault {
            Fault::BitFlip { bit } => {
                self.inner.read(page, &mut cur)?;
                let b = bit % (ps * 8);
                cur[b / 8] ^= 1 << (b % 8);
                self.inner.write(page, &cur)
            }
            Fault::TornWrite { bytes } => {
                // Keep the first `bytes`, clobber the tail — a power cut
                // midway through rewriting the page's sectors.
                self.inner.read(page, &mut cur)?;
                let n = bytes.min(ps);
                for b in &mut cur[n..] {
                    *b = !*b;
                }
                self.inner.write(page, &cur)
            }
            Fault::MisdirectedWrite { victim } => {
                // A write meant for `victim` landed here instead.
                self.inner.read(victim, &mut cur)?;
                self.inner.write(page, &cur)
            }
            Fault::StaleRead => {
                // Roll the page back to its tracked pre-image (lost write).
                let pre = lock_state(&self.state)
                    .preimages
                    .as_ref()
                    .and_then(|m| m.get(&page))
                    .cloned()
                    .ok_or_else(|| {
                        Error::Corrupt(format!("no pre-image tracked for page {page}"))
                    })?;
                self.inner.write(page, &pre)
            }
            Fault::IoError | Fault::Crash => Err(Error::Corrupt(
                "damage_now only applies content faults".into(),
            )),
        };
        if res.is_ok() {
            telemetry::counter("pagestore.fault.damage").inc();
        }
        res
    }

    fn fault_error(what: &str) -> Error {
        Error::Io(std::io::Error::other(format!("injected fault: {what}")))
    }

    /// Count one operation; return the fault to apply to it, if any.
    /// Fired faults leave the schedule, so tests can tell whether a
    /// scheduled fault was ever reached.
    fn begin_op(&mut self) -> Result<Option<Fault>> {
        let mut s = lock_state(&self.state);
        if s.crashed {
            return Err(Self::fault_error("store crashed"));
        }
        let n = s.ops;
        s.ops += 1;
        match s.schedule.remove(&n) {
            Some(Fault::Crash) => {
                s.crashed = true;
                telemetry::counter("pagestore.fault.trips").inc();
                Err(Self::fault_error("crash"))
            }
            Some(fault) => {
                telemetry::counter("pagestore.fault.trips").inc();
                Ok(Some(fault))
            }
            None => Ok(None),
        }
    }
}

impl<S: PageStore> PageStore for FaultStore<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn allocate(&mut self) -> Result<PageId> {
        match self.begin_op()? {
            None => self.inner.allocate(),
            Some(_) => Err(Self::fault_error("allocate failed")),
        }
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        match self.begin_op()? {
            None => self.inner.free(id),
            Some(_) => Err(Self::fault_error("free failed")),
        }
    }

    fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        match self.begin_op()? {
            None => self.inner.read(id, buf),
            Some(Fault::BitFlip { bit }) => {
                // Silent bit rot on the wire: the backing page is intact,
                // the caller's copy is not.
                self.inner.read(id, buf)?;
                let b = bit % (buf.len() * 8).max(1);
                buf[b / 8] ^= 1 << (b % 8);
                Ok(())
            }
            Some(Fault::StaleRead) => {
                // A lost write: hand back the page's pre-image as if the
                // most recent write never reached the platter.
                match lock_state(&self.state)
                    .preimages
                    .as_ref()
                    .and_then(|m| m.get(&id))
                {
                    Some(pre) if pre.len() == buf.len() => {
                        buf.copy_from_slice(pre);
                        Ok(())
                    }
                    _ => Err(Self::fault_error("read failed")),
                }
            }
            Some(_) => Err(Self::fault_error("read failed")),
        }
    }

    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        match self.begin_op()? {
            None => {
                self.record_preimage(id);
                self.inner.write(id, buf)
            }
            Some(Fault::TornWrite { bytes }) => {
                // Persist the torn prefix over the page's current content,
                // then report failure — like a power cut mid-sector.
                let n = bytes.min(buf.len());
                let mut cur = vec![0u8; self.inner.page_size()];
                self.inner.read(id, &mut cur)?;
                cur[..n].copy_from_slice(&buf[..n]);
                self.record_preimage(id);
                self.inner.write(id, &cur)?;
                Err(Self::fault_error("torn write"))
            }
            Some(Fault::BitFlip { bit }) => {
                // The flipped page is what lands on disk; success reported.
                let mut damaged = buf.to_vec();
                let b = bit % (damaged.len() * 8).max(1);
                damaged[b / 8] ^= 1 << (b % 8);
                self.record_preimage(id);
                self.inner.write(id, &damaged)
            }
            Some(Fault::MisdirectedWrite { victim }) => {
                // The bytes land on `victim`; the target keeps its old
                // content and the caller is told everything went fine.
                self.record_preimage(victim);
                let _ = self.inner.write(victim, buf);
                Ok(())
            }
            Some(_) => Err(Self::fault_error("write failed")),
        }
    }

    fn live_pages(&self) -> usize {
        self.inner.live_pages()
    }

    fn live_page_ids(&self) -> Vec<PageId> {
        self.inner.live_page_ids()
    }

    fn sync(&mut self) -> Result<()> {
        match self.begin_op()? {
            None => self.inner.sync(),
            Some(_) => Err(Self::fault_error("sync failed")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    #[test]
    fn transparent_without_faults() {
        let mut s = FaultStore::new(MemStore::new(128));
        let a = s.allocate().unwrap();
        s.write(a, &[7u8; 128]).unwrap();
        let mut out = vec![0u8; 128];
        s.read(a, &mut out).unwrap();
        assert_eq!(out[0], 7);
        assert_eq!(s.ops(), 3);
        assert_eq!(s.live_pages(), 1);
        s.free(a).unwrap();
        assert_eq!(s.live_pages(), 0);
    }

    #[test]
    fn io_error_has_no_effect() {
        let mut s = FaultStore::new(MemStore::new(128));
        let a = s.allocate().unwrap();
        s.write(a, &[1u8; 128]).unwrap();
        s.inject(s.ops(), Fault::IoError);
        assert!(s.write(a, &[2u8; 128]).is_err());
        let mut out = vec![0u8; 128];
        s.read(a, &mut out).unwrap();
        assert_eq!(out[0], 1, "failed write must leave the page untouched");
        assert_eq!(s.pending_faults(), 0, "fault fired and left the schedule");
    }

    #[test]
    fn torn_write_persists_prefix() {
        let mut s = FaultStore::new(MemStore::new(128));
        let a = s.allocate().unwrap();
        s.write(a, &[1u8; 128]).unwrap();
        s.inject(s.ops(), Fault::TornWrite { bytes: 10 });
        assert!(s.write(a, &[2u8; 128]).is_err());
        let mut out = vec![0u8; 128];
        s.read(a, &mut out).unwrap();
        assert_eq!(&out[..10], &[2u8; 10], "torn prefix persisted");
        assert_eq!(&out[10..], &[1u8; 118], "rest of the page untouched");
    }

    #[test]
    fn crash_latches() {
        let mut s = FaultStore::new(MemStore::new(128));
        let a = s.allocate().unwrap();
        s.write(a, &[3u8; 128]).unwrap();
        s.inject(s.ops(), Fault::Crash);
        let mut out = vec![0u8; 128];
        assert!(s.read(a, &mut out).is_err());
        assert!(s.crashed());
        assert!(
            s.write(a, &[4u8; 128]).is_err(),
            "everything fails after a crash"
        );
        assert!(s.allocate().is_err());
        // The data written before the crash is still in the backing store.
        let mut inner = s.into_inner();
        inner.read(a, &mut out).unwrap();
        assert_eq!(out[0], 3);
    }

    #[test]
    fn clear_faults_repairs() {
        let mut s = FaultStore::new(MemStore::new(128));
        let a = s.allocate().unwrap();
        s.inject(s.ops(), Fault::Crash);
        assert!(s.write(a, &[5u8; 128]).is_err());
        s.clear_faults();
        s.write(a, &[5u8; 128]).unwrap();
        let mut out = vec![0u8; 128];
        s.read(a, &mut out).unwrap();
        assert_eq!(out[0], 5);
    }

    #[test]
    fn bitflip_on_read_is_transient_and_silent() {
        let mut s = FaultStore::new(MemStore::new(128));
        let a = s.allocate().unwrap();
        s.write(a, &[0u8; 128]).unwrap();
        s.inject(s.ops(), Fault::BitFlip { bit: 9 });
        let mut out = vec![0u8; 128];
        s.read(a, &mut out).unwrap();
        assert_eq!(out[1], 0b10, "bit 9 of the returned copy flipped");
        // The backing page itself is intact.
        s.read(a, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));
    }

    #[test]
    fn bitflip_on_write_persists_damage() {
        let mut s = FaultStore::new(MemStore::new(128));
        let a = s.allocate().unwrap();
        s.inject(s.ops(), Fault::BitFlip { bit: 0 });
        s.write(a, &[0u8; 128]).unwrap();
        let mut out = vec![0u8; 128];
        s.read(a, &mut out).unwrap();
        assert_eq!(out[0], 1, "flipped page persisted");
    }

    #[test]
    fn misdirected_write_hits_victim_and_spares_target() {
        let mut s = FaultStore::new(MemStore::new(128));
        let a = s.allocate().unwrap();
        let b = s.allocate().unwrap();
        s.write(a, &[1u8; 128]).unwrap();
        s.write(b, &[2u8; 128]).unwrap();
        s.inject(s.ops(), Fault::MisdirectedWrite { victim: b });
        s.write(a, &[9u8; 128]).unwrap();
        let mut out = vec![0u8; 128];
        s.read(a, &mut out).unwrap();
        assert_eq!(out[0], 1, "target kept its old content");
        s.read(b, &mut out).unwrap();
        assert_eq!(out[0], 9, "victim received the bytes");
    }

    #[test]
    fn stale_read_returns_preimage() {
        let mut s = FaultStore::new(MemStore::new(128));
        s.track_preimages(true);
        let a = s.allocate().unwrap();
        s.write(a, &[1u8; 128]).unwrap();
        s.write(a, &[2u8; 128]).unwrap();
        s.inject(s.ops(), Fault::StaleRead);
        let mut out = vec![0u8; 128];
        s.read(a, &mut out).unwrap();
        assert_eq!(out[0], 1, "read returned the pre-image of the last write");
        s.read(a, &mut out).unwrap();
        assert_eq!(out[0], 2, "later reads see the real content");
    }

    #[test]
    fn stale_read_without_tracking_degrades_to_io_error() {
        let mut s = FaultStore::new(MemStore::new(128));
        let a = s.allocate().unwrap();
        s.write(a, &[1u8; 128]).unwrap();
        s.inject(s.ops(), Fault::StaleRead);
        let mut out = vec![0u8; 128];
        assert!(matches!(s.read(a, &mut out), Err(Error::Io(_))));
    }

    #[test]
    fn damage_now_variants() {
        let mut s = FaultStore::new(MemStore::new(128));
        s.track_preimages(true);
        let a = s.allocate().unwrap();
        let b = s.allocate().unwrap();
        s.write(a, &[1u8; 128]).unwrap();
        s.write(b, &[2u8; 128]).unwrap();
        let mut out = vec![0u8; 128];

        s.damage_now(a, Fault::BitFlip { bit: 0 }).unwrap();
        s.read(a, &mut out).unwrap();
        assert_eq!(out[0], 0, "bit 0 flipped in place");

        s.damage_now(a, Fault::TornWrite { bytes: 64 }).unwrap();
        s.read(a, &mut out).unwrap();
        assert_eq!(out[64], !1u8, "tail clobbered");

        s.damage_now(a, Fault::MisdirectedWrite { victim: b })
            .unwrap();
        s.read(a, &mut out).unwrap();
        assert_eq!(out[0], 2, "page now holds victim's content");

        // Overwrite b, then roll it back to its pre-image.
        s.write(b, &[3u8; 128]).unwrap();
        s.damage_now(b, Fault::StaleRead).unwrap();
        s.read(b, &mut out).unwrap();
        assert_eq!(out[0], 2, "page rolled back to pre-image");

        assert!(s.damage_now(a, Fault::IoError).is_err());
        assert!(s.damage_now(a, Fault::Crash).is_err());
        assert_eq!(s.pending_faults(), 0, "damage_now bypasses the schedule");
    }

    #[test]
    fn seeded_schedules_are_deterministic() {
        let a = FaultStore::seeded(MemStore::new(128), 42, 5, 100);
        let b = FaultStore::seeded(MemStore::new(128), 42, 5, 100);
        assert_eq!(a.handle().schedule(), b.handle().schedule());
        assert!(!a.handle().schedule().is_empty());
        let c = FaultStore::seeded(MemStore::new(128), 43, 5, 100);
        assert_ne!(a.handle().schedule(), c.handle().schedule());
        assert!(a.handle().schedule().keys().all(|&k| k < 100));
    }

    #[test]
    fn handle_injects_live_and_sees_state() {
        let mut s = FaultStore::new(MemStore::new(128));
        let h = s.handle();
        let a = s.allocate().unwrap();
        s.write(a, &[1u8; 128]).unwrap();
        assert_eq!(h.ops(), 2);
        h.inject(h.ops(), Fault::IoError);
        assert_eq!(h.pending_faults(), 1);
        let mut out = vec![0u8; 128];
        assert!(s.read(a, &mut out).is_err());
        assert_eq!(h.pending_faults(), 0);
        // A burst of faults fires on consecutive operations.
        h.inject_burst(h.ops(), 2, Fault::IoError);
        assert!(s.read(a, &mut out).is_err());
        assert!(s.read(a, &mut out).is_err());
        s.read(a, &mut out).unwrap();
        assert_eq!(out[0], 1);
        // Crash state is visible through the handle and clearable from it.
        h.inject(h.ops(), Fault::Crash);
        assert!(s.read(a, &mut out).is_err());
        assert!(h.crashed());
        h.clear_faults();
        assert!(!h.crashed());
        s.read(a, &mut out).unwrap();
    }
}
