//! Assembly of the production on-disk store stack.
//!
//! The durable tier layers, top to bottom:
//!
//! ```text
//! WalStore          crash safety: committed batches replay on reopen
//!   ChecksumStore   silent-damage detection: per-page CRC trailers
//!     FaultStore    deterministic fault injection (pass-through in prod)
//!       FileStore   pages + free-list manifest on disk
//! ```
//!
//! The WAL sits *above* the checksum layer so every page that reaches the
//! file — at checkpoint time — carries a freshly stamped trailer, and the
//! fault layer sits *below* the checksums so injected silent damage is
//! caught exactly like real bit rot (same reasoning as the in-memory
//! stack, see `uindex::DbStore`).
//!
//! [`create`] and [`open`] build the whole stack over a directory holding
//! [`PAGES_FILE`] (plus its `.free` manifest sidecar) and [`WAL_FILE`].
//! The `page_size` given to [`create`] is the *exposed* size — the one
//! the B-tree sees and the experiments' page counts are measured in; the
//! file's physical pages are [`TRAILER_LEN`] bytes larger.

use std::path::Path;

use crate::checksum::{ChecksumStore, TRAILER_LEN};
use crate::error::Result;
use crate::fault::FaultStore;
use crate::file::FileStore;
use crate::wal::WalStore;

/// The production on-disk page store stack.
pub type DiskStack = WalStore<ChecksumStore<FaultStore<FileStore>>>;

/// Page file name inside a disk-store directory.
pub const PAGES_FILE: &str = "pages.db";

/// Write-ahead log name inside a disk-store directory.
pub const WAL_FILE: &str = "wal.log";

/// Create a fresh disk stack in `dir` (created if missing), truncating
/// any existing store there. `page_size` is the exposed page size.
pub fn create(dir: &Path, page_size: usize) -> Result<DiskStack> {
    std::fs::create_dir_all(dir)?;
    let file = FileStore::create(&dir.join(PAGES_FILE), page_size + TRAILER_LEN)?;
    let stack = ChecksumStore::new(FaultStore::new(file));
    WalStore::create(stack, &dir.join(WAL_FILE))
}

/// Reopen a disk stack from `dir`, replaying the WAL's committed batches
/// (inspect [`WalStore::recovery`] for what replay found and truncated).
pub fn open(dir: &Path) -> Result<DiskStack> {
    let file = FileStore::open(&dir.join(PAGES_FILE))?;
    let stack = ChecksumStore::new(FaultStore::new(file));
    WalStore::open(stack, &dir.join(WAL_FILE))
}

/// Whether `dir` looks like a disk-stack directory (has a page file).
pub fn exists(dir: &Path) -> bool {
    dir.join(PAGES_FILE).is_file()
}

/// The [`FileStore`] at the bottom of a stack, read-only.
pub fn file_store(stack: &DiskStack) -> &FileStore {
    stack.inner().inner().inner()
}

/// Mutable access to the stack's [`ChecksumStore`] layer (scrubbing).
pub fn checksum_layer(stack: &mut DiskStack) -> &mut ChecksumStore<FaultStore<FileStore>> {
    stack.inner_mut()
}

/// A clonable handle onto the stack's [`FaultStore`] schedule — the live
/// chaos-injection channel. Faults scheduled through it land *below* the
/// checksum layer, so silent damage is detected like real bit rot.
pub fn fault_handle(stack: &DiskStack) -> crate::fault::FaultHandle {
    stack.inner().inner().handle()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageId;
    use crate::store::PageStore;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pagestore_disk_{}_{}", std::process::id(), name));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    #[test]
    fn create_commit_reopen_roundtrip() {
        let dir = tmpdir("roundtrip");
        {
            let mut s = create(&dir, 128).unwrap();
            assert_eq!(s.page_size(), 128, "exposed size excludes the trailer");
            let a = s.allocate().unwrap();
            s.write(a, &[7u8; 128]).unwrap();
            s.commit().unwrap();
            // Crash: never checkpointed, overlay dropped.
        }
        {
            let mut s = open(&dir).unwrap();
            assert!(s.recovery().is_some());
            let mut out = vec![0u8; 128];
            s.read(PageId(0), &mut out).unwrap();
            assert_eq!(out[0], 7, "committed write replayed from the log");
            // Checkpoint pushes it to the file through the checksum layer.
            s.checkpoint().unwrap();
            let report = checksum_layer(&mut s).scrub();
            assert!(report.clean(), "checkpointed pages carry valid trailers");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpointed_state_survives_without_log() {
        let dir = tmpdir("ckpt");
        {
            let mut s = create(&dir, 128).unwrap();
            let a = s.allocate().unwrap();
            s.write(a, &[9u8; 128]).unwrap();
            s.checkpoint().unwrap();
        }
        let mut s = open(&dir).unwrap();
        assert_eq!(s.live_pages(), 1);
        let mut out = vec![0u8; 128];
        s.read(PageId(0), &mut out).unwrap();
        assert_eq!(out[0], 9);
        std::fs::remove_dir_all(&dir).ok();
    }
}
