//! CRC-32 (IEEE 802.3), slice-by-8.
//!
//! The checksum sits on the per-fetch hot path ([`crate::ChecksumStore`]
//! verifies every page read) and under every WAL record, so the classic
//! bit-at-a-time loop is too slow. Slice-by-8 processes eight input bytes
//! per step through eight 256-entry tables, all computed at compile time —
//! same polynomial (0xEDB88320, reflected), same known-answer vectors,
//! no dependencies.

/// Eight lookup tables: `TABLES[0]` is the classic byte-at-a-time table,
/// `TABLES[k][b]` is the CRC of byte `b` followed by `k` zero bytes.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            j += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The original bit-at-a-time implementation, kept as the reference.
    fn crc32_bitwise(data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
        !crc
    }

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn matches_bitwise_reference_at_every_length() {
        // Lengths 0..64 cover every chunk/remainder split; pseudo-random
        // bytes catch table-index mistakes a constant fill would miss.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut data = Vec::new();
        for len in 0..64 {
            while data.len() < len {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                data.push((state >> 33) as u8);
            }
            assert_eq!(
                crc32(&data[..len]),
                crc32_bitwise(&data[..len]),
                "length {len}"
            );
        }
    }
}
